"""Frontier-quality metrics: hypervolume and coverage.

The paper judges approximate frontiers visually (Figure 4) and through
the final weighted cost. This module adds the standard quantitative
multi-objective metrics so frontier quality can be compared across
precisions and algorithms:

* **hypervolume** — volume of the cost space dominated by a frontier,
  measured against a reference point (larger is better for
  minimization frontiers measured toward the reference);
* **coverage factor** — the smallest alpha for which one frontier
  alpha-covers another (re-exported from :mod:`repro.core.pareto`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pareto import coverage_factor, pareto_filter
from repro.exceptions import ReproError

__all__ = ["hypervolume", "normalized_hypervolume", "coverage_factor"]


class MetricError(ReproError):
    """Raised for invalid metric inputs."""


def hypervolume(
    frontier: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Hypervolume dominated by ``frontier`` up to ``reference``.

    All frontier vectors must be component-wise <= the reference point
    (vectors beyond it are clipped out). Supports any dimension via
    recursive slicing (practical for the 2-6 objectives used here).
    """
    if not frontier:
        return 0.0
    dims = len(reference)
    points = []
    for vector in frontier:
        if len(vector) != dims:
            raise MetricError(
                f"vector of dimension {len(vector)} vs reference {dims}"
            )
        if all(v <= r for v, r in zip(vector, reference)):
            points.append(tuple(float(v) for v in vector))
    points = pareto_filter(points)
    if not points:
        return 0.0
    return _hypervolume_recursive(points, tuple(map(float, reference)))


def _hypervolume_recursive(
    points: list[tuple[float, ...]], reference: tuple[float, ...]
) -> float:
    """Slab decomposition along the first dimension.

    The dominated region is sliced at every distinct first coordinate;
    within the slab ``[x_i, x_{i+1})`` exactly the points with first
    coordinate <= ``x_i`` contribute, by the hypervolume of their
    projections onto the remaining dimensions.
    """
    if len(reference) == 1:
        return reference[0] - min(p[0] for p in points)
    slice_positions = sorted({p[0] for p in points})
    total = 0.0
    for index, x in enumerate(slice_positions):
        next_x = (
            slice_positions[index + 1]
            if index + 1 < len(slice_positions)
            else reference[0]
        )
        width = next_x - x
        if width <= 0:
            continue
        active = [p[1:] for p in points if p[0] <= x]
        total += width * _hypervolume_recursive(
            pareto_filter(active), reference[1:]
        )
    return total


def normalized_hypervolume(
    frontier: Sequence[Sequence[float]],
    reference: Sequence[float],
    ideal: Sequence[float] | None = None,
) -> float:
    """Hypervolume scaled into [0, 1] against an ideal point.

    ``ideal`` defaults to the component-wise minimum of the frontier.
    1.0 means the frontier dominates the whole (ideal, reference) box —
    only possible for a single point at the ideal.
    """
    if not frontier:
        return 0.0
    dims = len(reference)
    if ideal is None:
        ideal = tuple(
            min(vector[d] for vector in frontier) for d in range(dims)
        )
    box = 1.0
    for i, r in zip(ideal, reference):
        if r < i:
            raise MetricError("reference must dominate the ideal point")
        box *= max(r - i, 0.0)
    if box == 0.0:
        return 0.0
    return hypervolume(frontier, reference) / box
