"""Batch optimizer service: plan cache, thread-pool fan-out, metrics.

The paper motivates many-objective query optimization with server
scenarios — a multi-tenant server rationing resources across concurrent
user queries. :class:`OptimizerService` is the request/response front
end for that setting:

* :meth:`OptimizerService.submit` executes one
  :class:`~repro.core.request.OptimizationRequest`, consulting a
  memoizing plan cache keyed by the request's canonical fingerprint
  (query structure, canonicalized preferences, algorithm, precision,
  effective configuration — never tags);
* :meth:`OptimizerService.optimize_many` fans a batch of requests out
  over a thread pool, preserving input order in the returned results;
* per-request metrics hooks receive one
  :class:`~repro.core.instrumentation.RequestMetrics` record per
  completed request, and aggregate counters (cache hits/misses,
  per-algorithm request counts) accumulate in a
  :class:`~repro.core.instrumentation.ServiceMetrics`.

Timed-out results are never cached: a rerun with more budget (or on a
faster machine) could do better, so serving them from cache would pin
the degraded plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.instrumentation import RequestMetrics, ServiceMetrics
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams

#: Callable invoked with one record per completed request.
MetricsHook = Callable[[RequestMetrics], None]


class PlanCache:
    """Thread-safe LRU cache from request fingerprints to results.

    ``max_size <= 0`` disables caching (every lookup misses, nothing is
    stored) without callers needing a separate code path.
    """

    def __init__(self, max_size: int = 256) -> None:
        self.max_size = max_size
        self._entries: OrderedDict[str, OptimizationResult] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, key: str) -> OptimizationResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: str, result: OptimizationResult) -> None:
        if self.max_size <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class OptimizerService:
    """Request/response front end over :class:`MultiObjectiveOptimizer`.

    One service owns one schema (catalog + statistics), one default
    configuration, one plan cache and one metrics aggregate; per-request
    deviations travel inside the request (config override, deadline).
    """

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        *,
        cache_size: int = 256,
        metrics: ServiceMetrics | None = None,
        hooks: Iterable[MetricsHook] = (),
    ) -> None:
        self._optimizer = MultiObjectiveOptimizer(schema, config, params)
        self.cache = PlanCache(cache_size)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._hooks: list[MetricsHook] = list(hooks)

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._optimizer.schema

    @property
    def config(self) -> OptimizerConfig:
        return self._optimizer.config

    @property
    def optimizer(self) -> MultiObjectiveOptimizer:
        """The underlying facade (for callers needing direct access)."""
        return self._optimizer

    def add_hook(self, hook: MetricsHook) -> None:
        """Register a per-request metrics hook."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    def submit(self, request: OptimizationRequest) -> OptimizationResult:
        """Execute one request, serving identical repeats from the cache."""
        key = request.fingerprint(self.config)
        cached = self.cache.get(key)
        if cached is not None:
            self._report(request, key, cached, cache_hit=True)
            return cached
        result = self._optimizer.execute(request)
        if not result.timed_out:
            self.cache.put(key, result)
        self._report(request, key, result, cache_hit=False)
        return result

    def optimize_many(
        self,
        requests: Sequence[OptimizationRequest],
        max_workers: int | None = None,
    ) -> list[OptimizationResult]:
        """Execute a batch of requests; results keep the input order.

        ``max_workers`` caps the thread-pool fan-out; the default scales
        with the batch (at most 8 threads). ``max_workers=1`` degrades
        to sequential execution in the calling thread, which is also the
        fallback for empty batches.
        """
        requests = list(requests)
        if not requests:
            return []
        if max_workers is None:
            max_workers = min(8, len(requests))
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers == 1 or len(requests) == 1:
            return [self.submit(request) for request in requests]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.submit, requests))

    # ------------------------------------------------------------------
    def _report(
        self,
        request: OptimizationRequest,
        fingerprint: str,
        result: OptimizationResult,
        *,
        cache_hit: bool,
    ) -> None:
        record = RequestMetrics(
            fingerprint=fingerprint,
            query_name=request.query_name,
            algorithm=request.algorithm,
            tags=request.tags,
            cache_hit=cache_hit,
            elapsed_ms=0.0 if cache_hit else result.optimization_time_ms,
            timed_out=result.timed_out,
        )
        self.metrics.record(record)
        for hook in self._hooks:
            hook(record)
