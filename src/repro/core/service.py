"""Batch optimizer service: plan cache, pluggable backends, metrics.

The paper motivates many-objective query optimization with server
scenarios — a multi-tenant server rationing resources across concurrent
user queries. :class:`OptimizerService` is the request/response front
end for that setting:

* :meth:`OptimizerService.submit` executes one
  :class:`~repro.core.request.OptimizationRequest`, consulting a
  memoizing plan cache keyed by the request's canonical fingerprint
  (query structure, canonicalized preferences, algorithm, precision,
  effective configuration — never tags);
* :meth:`OptimizerService.optimize_many` fans a batch of requests out
  over a pluggable backend, preserving input order in the returned
  results:

  - ``"inline"`` — sequential execution in the calling thread;
  - ``"threads"`` — a thread pool; cheap, but the GIL serializes the
    CPU-bound optimization work, so it only overlaps bookkeeping;
  - ``"processes"`` — a warm :class:`~repro.parallel.pool.WorkerPool`
    of spawn-safe worker processes, each with its own registry, cost
    model and plan cache (see :mod:`repro.parallel`);

* per-request metrics hooks receive one
  :class:`~repro.core.instrumentation.RequestMetrics` record per
  completed request — from worker processes the records ship back
  pickled — and aggregate counters accumulate in a
  :class:`~repro.core.instrumentation.ServiceMetrics`;
* an optional :class:`~repro.parallel.deadline.DeadlineScheduler`
  enforces per-request deadlines end to end: the clock starts at batch
  admission (queueing counts), near-deadline requests reroute to the
  anytime IRA, and misses surface as ``deadline_hit`` on the result.

Timed-out and deadline-missed results are never cached: a rerun with
more budget (or on a faster machine) could do better, so serving them
from cache would pin the degraded plan.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterable, Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.instrumentation import RequestMetrics, ServiceMetrics
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.model import CostModel
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import OptimizerError, WorkerCrashError
from repro.obs.trace import active_tracer, current_context
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import ChaosInjector, chaos_from_env
from repro.resilience.policy import DEFAULT_RETRY_POLICY, RetryPolicy

#: Callable invoked with one record per completed request.
MetricsHook = Callable[[RequestMetrics], None]

#: Execution backends optimize_many() can fan a batch out over.
BACKENDS = ("inline", "threads", "processes")


class PlanCache:
    """Thread-safe LRU cache from request fingerprints to results.

    ``max_size <= 0`` disables caching (every lookup misses, nothing is
    stored) without callers needing a separate code path.
    """

    def __init__(self, max_size: int = 256) -> None:
        self.max_size = max_size
        self._entries: OrderedDict[str, OptimizationResult] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.evictions = 0  # guarded-by: _lock

    def get(self, key: str) -> OptimizationResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: str, result: OptimizationResult) -> None:
        if self.max_size <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class OptimizerService:
    """Request/response front end over :class:`MultiObjectiveOptimizer`.

    One service owns one schema (catalog + statistics), one default
    configuration, one plan cache, one metrics aggregate and (lazily,
    for the process backend) one warm worker pool; per-request
    deviations travel inside the request (config override, deadline).

    Services with a process backend hold OS resources — use the service
    as a context manager or call :meth:`close` when done; the inline and
    thread backends need no cleanup.
    """

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        *,
        cache_size: int = 256,
        metrics: ServiceMetrics | None = None,
        hooks: Iterable[MetricsHook] = (),
        backend: str = "threads",
        workers: int | None = None,
        scheduler=None,
        breaker: CircuitBreaker | None = None,
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        heartbeat_s: float | None = None,
        chaos: ChaosInjector | None = None,
        degraded_fallback: bool = True,
        cost_model: CostModel | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise OptimizerError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        # An injected cost model (e.g. carrying a calibration overlay
        # from repro.workloads.calibrate) drives the in-process
        # optimizer; the process backend's workers rebuild their own
        # models from (schema, config, params) and ignore it.
        self._optimizer = MultiObjectiveOptimizer(
            schema, config, params, cost_model=cost_model
        )
        self._params = params
        self.cache = PlanCache(cache_size)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._hooks: list[MetricsHook] = list(hooks)
        self.backend = backend
        self.workers = workers
        self.scheduler = scheduler
        # Resilience: the breaker/retry/fallback ladder guards process
        # dispatches (worker crashes); the other backends cannot infra-
        # fail, so services not configured for processes skip it all.
        self.retry_policy = retry_policy
        self.heartbeat_s = heartbeat_s
        self.degraded_fallback = degraded_fallback
        if backend == "processes":
            self.breaker = breaker if breaker is not None else CircuitBreaker()
            self.chaos = chaos if chaos is not None else chaos_from_env()
        else:
            self.breaker = breaker
            self.chaos = chaos
        self._pool = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()
        # _closed is deliberately NOT lock-annotated: writes happen under
        # _pool_lock, but the hot-path reads are benign racy flag checks
        # (a stale False only costs one extra pool round-trip).
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._optimizer.schema

    @property
    def config(self) -> OptimizerConfig:
        return self._optimizer.config

    @property
    def optimizer(self) -> MultiObjectiveOptimizer:
        """The underlying facade (for callers needing direct access)."""
        return self._optimizer

    def add_hook(self, hook: MetricsHook) -> None:
        """Register a per-request metrics hook."""
        self._hooks.append(hook)

    def remove_hook(self, hook: MetricsHook) -> None:
        """Unregister a previously added metrics hook."""
        self._hooks.remove(hook)

    # ------------------------------------------------------------------
    # Lifecycle (process backend owns worker processes)
    # ------------------------------------------------------------------
    def worker_pool(self):
        """The warm worker pool, created on first use."""
        from repro.parallel.pool import WorkerPool

        with self._pool_lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self.schema,
                    self.config,
                    self._params,
                    workers=self.workers,
                    cache_size=self.cache.max_size,
                    scheduler=self.scheduler,
                    heartbeat_s=self.heartbeat_s,
                    chaos=self.chaos,
                    on_event=self.metrics.record_resilience,
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool, if one was started.

        Idempotent by contract: the serving layer may own the service
        lifecycle *and* hand it to a context manager, so double (and
        triple) closes must be no-ops rather than errors. A closed
        service still answers ``submit``/``optimize_many`` — the inline
        and thread backends need no resources — but the process backend
        would lazily restart a worker pool, so :attr:`closed` lets
        owners assert the lifecycle they expect.
        """
        with self._pool_lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called at least once."""
        return self._closed

    def resilience_snapshot(self) -> dict[str, object]:
        """Point-in-time view of the failure-handling machinery.

        Keys: ``breaker`` (state/level/trips, ``None`` without one),
        ``pool`` (supervision counters, ``None`` until the worker pool
        exists), ``chaos`` (injection counters, ``None`` when fault
        injection is off — the production case).
        """
        with self._pool_lock:
            pool = self._pool
        return {
            "breaker": (
                self.breaker.snapshot() if self.breaker is not None else None
            ),
            "pool": pool.stats() if pool is not None else None,
            "chaos": (
                self.chaos.snapshot() if self.chaos is not None else None
            ),
        }

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        request: OptimizationRequest,
        *,
        admitted_epoch: float | None = None,
        deadline_epoch: float | None = None,
    ) -> OptimizationResult:
        """Execute one request, serving identical repeats from the cache.

        ``admitted_epoch`` (wall clock) is when the request entered the
        system; under a deadline scheduler the remaining budget is
        measured from it, so queueing time between admission and this
        call counts against the request's deadline. ``deadline_epoch``
        passes an already-admitted absolute deadline instead (the
        worker-process path, where admission happened in the parent).

        Cache semantics under a scheduler: lookups always key on the
        *original* request's fingerprint, so repeats are served
        instantly regardless of their remaining budget. A freshly
        computed result is cached only if the run completed (neither
        ``timed_out`` nor ``deadline_hit`` — a completed run under a
        shortened timeout is identical to a full-budget run) and the
        scheduler did not reroute it to another algorithm (a rerouted
        result would poison the original algorithm's cache key).

        Under the process backend, cache misses execute on a warm
        worker process (the pool the batch API uses): single served
        requests get real parallelism instead of competing for the
        parent's GIL, and their worker-side trace spans merge back into
        the caller's trace. A closed service falls back to in-process
        execution rather than silently restarting the pool.
        """
        tracer = active_tracer()
        key = request.fingerprint(self.config)
        if tracer is None:
            cached = self.cache.get(key)
        else:
            with tracer.span("cache.lookup", "cache"):
                cached = self.cache.get(key)
        if cached is not None:
            self._report(request, key, cached, cache_hit=True)
            return cached
        if self.backend == "processes" and not self._closed:
            return self._execute_resilient(
                request, key,
                admitted_epoch=admitted_epoch,
                deadline_epoch=deadline_epoch,
            )
        return self._execute_local(
            request, key,
            admitted_epoch=admitted_epoch,
            deadline_epoch=deadline_epoch,
        )

    def _execute_local(
        self,
        request: OptimizationRequest,
        key: str,
        *,
        admitted_epoch: float | None,
        deadline_epoch: float | None,
    ) -> OptimizationResult:
        """Execute one cache-missed request in the calling thread.

        The inline/thread backends' whole story, and the degraded
        ladder's landing spot when the breaker has tripped away from
        the process backend.
        """
        tracer = active_tracer()
        executed = request
        rerouted = False
        if self.scheduler is not None:
            default_timeout = self.config.timeout_seconds
            if deadline_epoch is None:
                if admitted_epoch is None:
                    admitted_epoch = time.time()
                deadline_epoch = self.scheduler.admit(
                    request, admitted_epoch, default_timeout
                )
            if deadline_epoch is not None:
                scheduled = self.scheduler.resolve(
                    request, deadline_epoch, time.time(), default_timeout
                )
                executed = scheduled.request
                rerouted = scheduled.rerouted
        if tracer is None:
            result = self._optimizer.execute(executed)
        else:
            span = tracer.begin(
                f"algorithm.{executed.algorithm}", "algorithm",
                algorithm=executed.algorithm, query=executed.query_name,
            )
            try:
                result = self._optimizer.execute(executed)
                span.set(
                    kernel=result.phase_ms.get("kernel", 0.0),
                    prune=result.phase_ms.get("prune", 0.0),
                    materialize=result.phase_ms.get("materialize", 0.0),
                )
            finally:
                span.finish()
        if not result.timed_out and not result.deadline_hit and not rerouted:
            self.cache.put(key, result)
        self._report(
            executed, key, result, cache_hit=False, rerouted=rerouted
        )
        return result

    def _execute_resilient(
        self,
        request: OptimizationRequest,
        key: str,
        *,
        admitted_epoch: float | None,
        deadline_epoch: float | None,
        prior_failures: int = 0,
    ) -> OptimizationResult:
        """Run one cache-missed request down the degradation ladder.

        The happy path is a single pool dispatch. When that dispatch
        infra-fails (:class:`WorkerCrashError` — the pool already spent
        its own respawn + re-dispatch), this helper:

        1. feeds the failure to the circuit breaker (which may trip the
           backend down the ``processes`` → ``threads`` → ``inline``
           ladder for *subsequent* requests),
        2. retries under :attr:`retry_policy` — jittered exponential
           backoff, clamped so no sleep outlives the request's
           remaining deadline budget,
        3. and when the retry budget is exhausted, answers with the
           paper's heuristic fallback plan flagged ``degraded=True``
           (or re-raises, when ``degraded_fallback`` is off).

        Requests arriving while the breaker is tripped run directly on
        the degraded backend (in-process); half-open probe dispatches
        go back to the pool and their outcome drives recovery.
        ``prior_failures`` pre-charges the retry budget — the batch
        path enters here after a crash it already observed.
        """
        if self.scheduler is not None and deadline_epoch is None:
            if admitted_epoch is None:
                admitted_epoch = time.time()
            deadline_epoch = self.scheduler.admit(
                request, admitted_epoch, self.config.timeout_seconds
            )
        failures = prior_failures
        while True:
            if failures > 0:
                delay = None
                if self.retry_policy is not None:
                    remaining = None
                    if self.scheduler is not None:
                        remaining = self.scheduler.remaining_budget(
                            deadline_epoch
                        )
                    delay = self.retry_policy.next_delay(
                        failures, remaining_s=remaining
                    )
                if delay is None:
                    if not self.degraded_fallback:
                        raise WorkerCrashError(
                            f"request {request.query_name!r} exhausted its "
                            "retry budget and degraded fallback is disabled"
                        )
                    return self._degraded_fallback(request, key)
                self.metrics.record_resilience("retry")
                tracer = active_tracer()
                if tracer is None:
                    time.sleep(delay)
                else:
                    with tracer.span(
                        "retry.backoff", "retry",
                        attempt=failures, delay_s=delay,
                    ):
                        time.sleep(delay)
            decision = (
                self.breaker.decide() if self.breaker is not None else None
            )
            backend = (
                decision.backend if decision is not None else "processes"
            )
            try:
                if backend == "processes" and not self._closed:
                    result = self._submit_to_pool(
                        request, key,
                        admitted_epoch=admitted_epoch,
                        deadline_epoch=deadline_epoch,
                    )
                else:
                    result = self._execute_local(
                        request, key,
                        admitted_epoch=admitted_epoch,
                        deadline_epoch=deadline_epoch,
                    )
            except WorkerCrashError:
                failures += 1
                if decision is not None:
                    if self.breaker.record_failure(decision):
                        self._note_breaker_trip()
                continue
            if decision is not None:
                if self.breaker.record_success(decision):
                    self.metrics.record_resilience("breaker_recovery")
            return result

    def _note_breaker_trip(self) -> None:
        self.metrics.record_resilience("breaker_trip")
        tracer = active_tracer()
        if tracer is not None:
            # Zero-duration event span marking the ladder transition.
            tracer.begin(
                "breaker.trip", "breaker_open",
                backend=self.breaker.backend, level=self.breaker.level,
            ).finish()

    def _degraded_fallback(
        self, request: OptimizationRequest, key: str
    ) -> OptimizationResult:
        """Answer with the paper's heuristic fallback plan, flagged.

        Runs in-process with an effectively expired budget, so the DP
        takes its single-plan fallback mode almost immediately — the
        caller gets a *valid* plan and an explicit ``degraded=True``
        instead of an error. Never cached: a healthy rerun must get the
        chance to do better.
        """
        tiny = (
            self.scheduler.expired_slice_seconds
            if self.scheduler is not None
            else 1e-6
        )
        degraded_request = request.replace(timeout_seconds=tiny)
        tracer = active_tracer()
        if tracer is None:
            result = self._optimizer.execute(degraded_request)
        else:
            with tracer.span(
                "degraded.fallback", "degraded",
                algorithm=request.algorithm, query=request.query_name,
            ):
                result = self._optimizer.execute(degraded_request)
        result = dataclasses.replace(result, degraded=True)
        self._report(request, key, result, cache_hit=False, degraded=True)
        return result

    def _submit_to_pool(
        self,
        request: OptimizationRequest,
        key: str,
        *,
        admitted_epoch: float | None,
        deadline_epoch: float | None,
    ) -> OptimizationResult:
        """Route one cache-missed :meth:`submit` to a worker process.

        Admission (deadline stamping) happens in the parent, like the
        batch path; resolution (reroute/budget decisions) happens in the
        worker at dequeue time, so pool queueing counts against the
        budget. The caller's trace context ships with the request and
        the worker's finished spans come back merged into the caller's
        tracer, parented where the submit happened.
        """
        if self.scheduler is not None and deadline_epoch is None:
            if admitted_epoch is None:
                admitted_epoch = time.time()
            deadline_epoch = self.scheduler.admit(
                request, admitted_epoch, self.config.timeout_seconds
            )
        tracer = active_tracer()
        if tracer is None:
            result, record, spans = self.worker_pool().execute_one(
                request, deadline_epoch
            )
        else:
            # The dispatch span brackets the whole pool round trip; the
            # worker's spans nest under it, so its self time in a trace
            # summary is exactly the IPC overhead (pickling, pool
            # queueing, result shipping).
            dispatch = tracer.begin(
                "pool.dispatch", "dispatch", algorithm=request.algorithm
            )
            try:
                result, record, spans = self.worker_pool().execute_one(
                    request, deadline_epoch, trace_ctx=dispatch.context
                )
            finally:
                dispatch.finish()
            if spans:
                tracer.ingest(spans)
        # Same cache rule as the in-process path; the worker ships its
        # reroute decision back on the record.
        if (
            not result.timed_out
            and not result.deadline_hit
            and not record.rerouted
        ):
            self.cache.put(key, result)
        self._dispatch(record)
        return result

    def submit_sharded(
        self,
        request: OptimizationRequest,
        num_shards: int | None = None,
    ) -> OptimizationResult:
        """Execute one EXA/RTA request with intra-query sharding.

        The request's top-level split space is partitioned into
        ``num_shards`` shard tasks (default: the worker count) and the
        shard frontiers are merged deterministically — the result is
        bit-for-bit what :meth:`submit` would produce. Shards run on the
        worker pool under the process backend and in-process otherwise.
        Only single-block queries and the single-pass algorithms
        (``exa``/``rta``) are shardable; others raise
        :class:`~repro.exceptions.OptimizerError`.
        """
        from repro.parallel.pool import default_worker_count
        from repro.parallel.sharding import (
            SHARDABLE_ALGORITHMS,
            sharded_moqo,
        )

        if request.algorithm not in SHARDABLE_ALGORITHMS:
            raise OptimizerError(
                f"intra-query sharding supports {SHARDABLE_ALGORITHMS}, "
                f"got {request.algorithm!r}"
            )
        if request.query.has_subqueries:
            raise OptimizerError(
                "intra-query sharding supports single-block queries; "
                "optimize multi-block queries per request instead"
            )
        key = request.fingerprint(self.config)
        cached = self.cache.get(key)
        if cached is not None:
            self._report(request, key, cached, cache_hit=True)
            return cached
        if num_shards is None:
            num_shards = (
                self.workers
                if self.workers is not None
                else default_worker_count()
            )
        config = request.effective_config(self.config)
        run_tasks = (
            self.worker_pool().execute_shards
            if self.backend == "processes"
            else None
        )
        result = sharded_moqo(
            request.query.main_block,
            self._optimizer.cost_model,
            request.preferences,
            request.alpha,
            config,
            algorithm=request.algorithm,
            num_shards=num_shards,
            strict=request.strict,
            budget_seconds=config.timeout_seconds,
            run_tasks=run_tasks,
        )
        result = dataclasses.replace(result, query_name=request.query.name)
        if not result.timed_out and not result.deadline_hit:
            self.cache.put(key, result)
        self._report(request, key, result, cache_hit=False)
        return result

    def optimize_many(
        self,
        requests: Sequence[OptimizationRequest],
        max_workers: int | None = None,
        *,
        backend: str | None = None,
        shard_by_fingerprint: bool | None = None,
    ) -> list[OptimizationResult]:
        """Execute a batch of requests; results keep the input order.

        ``backend`` overrides the service default for this batch.
        ``max_workers`` caps the thread-pool fan-out (thread backend
        only; the process pool's size is fixed when it starts). For the
        thread backend the default scales with the batch (at most 8
        threads) and ``max_workers=1`` degrades to sequential execution.
        ``shard_by_fingerprint`` (process backend) routes fingerprint-
        equal requests to the same worker so repeats hit that worker's
        plan cache; the default (``None``) enables it exactly when the
        batch contains repeats.
        """
        requests = list(requests)
        if not requests:
            return []
        backend = backend if backend is not None else self.backend
        if backend not in BACKENDS:
            raise OptimizerError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        admitted_epoch = time.time()
        if backend == "processes":
            return self._optimize_many_processes(
                requests, admitted_epoch, shard_by_fingerprint,
                max_workers=max_workers,
            )
        submit = partial(self.submit, admitted_epoch=admitted_epoch)
        if max_workers is None:
            max_workers = min(8, len(requests))
        if backend == "inline" or max_workers == 1 or len(requests) == 1:
            return [submit(request) for request in requests]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(submit, requests))

    # ------------------------------------------------------------------
    def _optimize_many_processes(
        self,
        requests: list[OptimizationRequest],
        admitted_epoch: float,
        shard_by_fingerprint: bool | None,
        max_workers: int | None = None,
    ) -> list[OptimizationResult]:
        """Fan a batch out over the worker pool.

        The parent cache is consulted first (known answers never travel
        to a worker); worker results flow back into the parent cache so
        later batches and ``submit`` calls see them.

        Resilience: the batch takes one breaker decision. A tripped
        breaker reroutes the whole batch through per-request ``submit``
        on threads (each request then walks the ladder itself,
        including half-open probes). On the pool, individually crashed
        dispatches — ones the pool's own respawn + re-dispatch could
        not save — feed the breaker and finish through the per-request
        retry/degrade path instead of failing the batch.
        """
        decision = None
        if self.breaker is not None and not self._closed:
            decision = self.breaker.decide()
            if decision.backend != "processes":
                submit = partial(self.submit, admitted_epoch=admitted_epoch)
                workers = (
                    min(8, len(requests))
                    if max_workers is None
                    else max_workers
                )
                if (
                    decision.backend == "inline"
                    or workers == 1
                    or len(requests) == 1
                ):
                    results = [submit(request) for request in requests]
                else:
                    with ThreadPoolExecutor(max_workers=workers) as tpool:
                        results = list(tpool.map(submit, requests))
                if self.breaker.record_success(decision):
                    self.metrics.record_resilience("breaker_recovery")
                return results
        keys = [request.fingerprint(self.config) for request in requests]
        if self.scheduler is not None:
            epochs = [
                self.scheduler.admit(
                    request, admitted_epoch, self.config.timeout_seconds
                )
                for request in requests
            ]
        else:
            epochs = [None] * len(requests)
        results: list[OptimizationResult | None] = [None] * len(requests)
        shipped: list[int] = []
        for position, request in enumerate(requests):
            cached = self.cache.get(keys[position])
            if cached is not None:
                results[position] = cached
                self._report(
                    request, keys[position], cached, cache_hit=True
                )
            else:
                shipped.append(position)
        if shipped:
            if shard_by_fingerprint is None:
                shipped_keys = [keys[position] for position in shipped]
                shard_by_fingerprint = (
                    len(set(shipped_keys)) < len(shipped_keys)
                )
            tracer = active_tracer()
            trace_ctx = current_context() if tracer is not None else None
            outputs = self.worker_pool().execute_many(
                [requests[position] for position in shipped],
                [epochs[position] for position in shipped],
                shard_by_fingerprint=shard_by_fingerprint,
                default_config=self.config,
                trace_ctx=trace_ctx,
                on_crash="return",
            )
            crashed: list[int] = []
            for position, output in zip(shipped, outputs):
                if isinstance(output, WorkerCrashError):
                    crashed.append(position)
                    continue
                result, record, spans = output
                if tracer is not None and spans:
                    tracer.ingest(spans)
                results[position] = result
                # Same cache rule as submit(): completed runs only, and
                # never a result the worker's scheduler rerouted away
                # from what the fingerprint promises (the worker ships
                # the reroute decision back on the record).
                if (
                    not result.timed_out
                    and not result.deadline_hit
                    and not record.rerouted
                ):
                    self.cache.put(keys[position], result)
                self._dispatch(record)
            if decision is not None:
                if crashed:
                    # A probe is one experiment — report it once; a
                    # closed-state decision reports every crash so the
                    # failure threshold means what it says.
                    reports = 1 if decision.probe else len(crashed)
                    for _ in range(reports):
                        if self.breaker.record_failure(decision):
                            self._note_breaker_trip()
                            break
                elif self.breaker.record_success(decision):
                    self.metrics.record_resilience("breaker_recovery")
            for position in crashed:
                results[position] = self._execute_resilient(
                    requests[position], keys[position],
                    admitted_epoch=admitted_epoch,
                    deadline_epoch=epochs[position],
                    prior_failures=1,
                )
        return results

    # ------------------------------------------------------------------
    def _report(
        self,
        request: OptimizationRequest,
        fingerprint: str,
        result: OptimizationResult,
        *,
        cache_hit: bool,
        rerouted: bool = False,
        degraded: bool = False,
    ) -> None:
        record = RequestMetrics(
            fingerprint=fingerprint,
            query_name=request.query_name,
            algorithm=request.algorithm,
            tags=request.tags,
            cache_hit=cache_hit,
            elapsed_ms=0.0 if cache_hit else result.optimization_time_ms,
            timed_out=result.timed_out,
            deadline_hit=result.deadline_hit,
            rerouted=rerouted,
            degraded=degraded,
            plans_considered=0 if cache_hit else result.plans_considered,
            candidates_vectorized=(
                0 if cache_hit else result.candidates_vectorized
            ),
            phase_ms={} if cache_hit else dict(result.phase_ms),
        )
        self._dispatch(record)

    def _dispatch(self, record: RequestMetrics) -> None:
        """Fold one record (local or shipped from a worker) in."""
        self.metrics.record(record)
        for hook in self._hooks:
            hook(record)
