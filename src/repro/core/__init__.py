"""The paper's contribution: EXA, RTA, IRA and supporting machinery,
plus the service-oriented front end (requests, registry, service)."""

from repro.core.baselines import idp_moqo, weighted_sum_baseline
from repro.core.dp import strict_closure
from repro.core.exa import exact_moqo
from repro.core.instrumentation import (
    Counters,
    RequestMetrics,
    ServiceMetrics,
)
from repro.core.ira import ira, iteration_precision
from repro.core.metrics import hypervolume, normalized_hypervolume
from repro.core.optimizer import (
    MultiObjectiveOptimizer,
    combine_block_costs,
)
from repro.core.pareto import (
    coverage_factor,
    is_approximate_pareto_set,
    is_pareto_set,
)
from repro.core.preferences import INFINITY, Preferences, relative_cost
from repro.core.pruning import AggressivePlanSet, PlanSet, SingleBestPlanSet
from repro.core.registry import (
    AlgorithmSpec,
    algorithm_specs,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.core.rta import internal_precision, rta
from repro.core.select_best import select_best
from repro.core.selinger import minimum_cost, selinger
from repro.core.service import OptimizerService, PlanCache

__all__ = [
    "AggressivePlanSet",
    "AlgorithmSpec",
    "Counters",
    "INFINITY",
    "MultiObjectiveOptimizer",
    "OptimizationRequest",
    "OptimizationResult",
    "OptimizerService",
    "PlanCache",
    "PlanSet",
    "Preferences",
    "RequestMetrics",
    "ServiceMetrics",
    "SingleBestPlanSet",
    "algorithm_specs",
    "available_algorithms",
    "combine_block_costs",
    "coverage_factor",
    "exact_moqo",
    "get_algorithm",
    "hypervolume",
    "idp_moqo",
    "internal_precision",
    "normalized_hypervolume",
    "register_algorithm",
    "strict_closure",
    "weighted_sum_baseline",
    "ira",
    "is_approximate_pareto_set",
    "is_pareto_set",
    "iteration_precision",
    "minimum_cost",
    "relative_cost",
    "rta",
    "select_best",
    "selinger",
]


def __getattr__(name: str):
    if name == "ALGORITHMS":
        raise ImportError(
            "the ALGORITHMS tuple was removed in the service-oriented API "
            "redesign; call repro.available_algorithms() for the "
            "registered algorithm names"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
