"""The paper's contribution: EXA, RTA, IRA and supporting machinery."""

from repro.core.baselines import idp_moqo, weighted_sum_baseline
from repro.core.dp import strict_closure
from repro.core.exa import exact_moqo
from repro.core.instrumentation import Counters
from repro.core.ira import ira, iteration_precision
from repro.core.metrics import hypervolume, normalized_hypervolume
from repro.core.optimizer import (
    ALGORITHMS,
    MultiObjectiveOptimizer,
    combine_block_costs,
)
from repro.core.pareto import (
    coverage_factor,
    is_approximate_pareto_set,
    is_pareto_set,
)
from repro.core.preferences import INFINITY, Preferences, relative_cost
from repro.core.pruning import AggressivePlanSet, PlanSet, SingleBestPlanSet
from repro.core.result import OptimizationResult
from repro.core.rta import internal_precision, rta
from repro.core.select_best import select_best
from repro.core.selinger import minimum_cost, selinger

__all__ = [
    "ALGORITHMS",
    "AggressivePlanSet",
    "Counters",
    "INFINITY",
    "MultiObjectiveOptimizer",
    "OptimizationResult",
    "PlanSet",
    "Preferences",
    "SingleBestPlanSet",
    "combine_block_costs",
    "coverage_factor",
    "exact_moqo",
    "hypervolume",
    "idp_moqo",
    "internal_precision",
    "normalized_hypervolume",
    "strict_closure",
    "weighted_sum_baseline",
    "ira",
    "is_approximate_pareto_set",
    "is_pareto_set",
    "iteration_precision",
    "minimum_cost",
    "relative_cost",
    "rta",
    "select_best",
    "selinger",
]
