"""Final plan selection (``SelectBest`` of Algorithm 1).

Among the plans whose cost respects the bounds, pick the one with
minimal weighted cost; if no plan respects the bounds, pick the plan
with minimal weighted cost overall (Definition 2's fallback).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.preferences import Preferences
from repro.core.pruning import Entry
from repro.cost.vector import weighted_cost


def select_best(
    entries: Iterable[Entry], preferences: Preferences
) -> Entry | None:
    """Best entry for the given weights and bounds, or None if empty."""
    weights = preferences.weights
    bounds = preferences.bounds
    best_in_bounds: Entry | None = None
    best_in_bounds_value = float("inf")
    best_overall: Entry | None = None
    best_overall_value = float("inf")
    for entry in entries:
        cost = entry[0]
        value = weighted_cost(cost, weights)
        if value < best_overall_value:
            best_overall_value = value
            best_overall = entry
        in_bounds = True
        for c, b in zip(cost, bounds):
            if c > b:
                in_bounds = False
                break
        if in_bounds and value < best_in_bounds_value:
            best_in_bounds_value = value
            best_in_bounds = entry
    return best_in_bounds if best_in_bounds is not None else best_overall
