"""Pluggable algorithm registry for the service-oriented optimizer API.

Algorithms register under a short name via the :func:`register_algorithm`
decorator and declare their capabilities in an :class:`AlgorithmSpec`:
whether they consume the approximation precision ``alpha``, whether they
honor cost bounds natively (bounded-weighted MOQO) or require them to be
stripped, and whether they are restricted to a single objective. The
registry replaces the old if/elif dispatch and the module-level
``ALGORITHMS`` tuple in :mod:`repro.core.optimizer`.

All runners share one uniform signature::

    runner(block, cost_model, preferences, *,
           alpha, config, deadline, strict) -> OptimizationResult

``deadline`` is an absolute ``time.perf_counter`` instant (or ``None``)
shared across the blocks of one request so multi-block queries consume
a single budget. Every runner is expected to honor it *and* to report
it honestly: the returned result must set ``deadline_hit`` whenever the
deadline had passed by the end of the run — even if the enumeration's
coarse-grained periodic check never tripped into fallback mode (see
:func:`repro.core.dp.deadline_exceeded`). All six built-in algorithms
do; the deadline-aware scheduler and the service's metrics rely on it.

The built-in algorithms — the paper's EXA/RTA/IRA, the single-objective
Selinger baseline and the guarantee-free ``wsum``/``idp`` baselines —
are registered at the bottom of this module; external code can register
additional algorithms the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.config import OptimizerConfig
from repro.core.baselines import idp_moqo, weighted_sum_baseline
from repro.core.exa import exact_moqo
from repro.core.ira import ira
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.rta import rta
from repro.core.selinger import selinger
from repro.exceptions import OptimizerError


class AlgorithmRunner(Protocol):
    """Uniform call signature every registered algorithm implements."""

    def __call__(
        self,
        block,
        cost_model,
        preferences: Preferences,
        *,
        alpha: float,
        config: OptimizerConfig,
        deadline: float | None,
        strict: bool,
    ) -> OptimizationResult:
        ...  # pragma: no cover - typing protocol


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered optimization algorithm plus its declared capabilities.

    ``supports_bounds`` distinguishes bounded-weighted MOQO algorithms
    (EXA, IRA) from pure weighted ones (RTA, wsum, IDP): when ``False``
    the dispatcher strips bounds before running — the historical facade
    behavior. ``rejects_bounds`` is stricter: requests carrying finite
    bounds are refused outright at validation time.
    """

    name: str
    runner: AlgorithmRunner = field(compare=False)
    description: str = ""
    uses_alpha: bool = True
    supports_bounds: bool = False
    rejects_bounds: bool = False
    single_objective_only: bool = False
    supports_strict: bool = False

    # ------------------------------------------------------------------
    def validate(self, preferences: Preferences) -> None:
        """Check a preference set against this algorithm's capabilities."""
        if self.single_objective_only and preferences.num_objectives != 1:
            raise OptimizerError(
                f"the {self.name} algorithm optimizes exactly one "
                f"objective, got {preferences.num_objectives}"
            )
        if self.rejects_bounds and preferences.has_bounds:
            bounded = [o.name for o in preferences.bounded_objectives]
            raise OptimizerError(
                f"the {self.name} algorithm does not accept cost bounds "
                f"(bounded: {bounded})"
            )

    def prepare_preferences(self, preferences: Preferences) -> Preferences:
        """Project preferences onto what the algorithm understands.

        Algorithms without native bound support receive the weighted-only
        projection (``without_bounds``) — matching the legacy facade.
        """
        if not self.supports_bounds and preferences.has_bounds:
            return preferences.without_bounds()
        return preferences


#: name -> spec, in registration order (the order drives CLI choices).
_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    description: str = "",
    uses_alpha: bool = True,
    supports_bounds: bool = False,
    rejects_bounds: bool = False,
    single_objective_only: bool = False,
    supports_strict: bool = False,
) -> Callable[[AlgorithmRunner], AlgorithmRunner]:
    """Decorator registering a runner under ``name`` with capabilities."""
    if supports_bounds and rejects_bounds:
        raise OptimizerError(
            f"algorithm {name!r} cannot both support and reject bounds"
        )

    def decorate(runner: AlgorithmRunner) -> AlgorithmRunner:
        if name in _REGISTRY:
            raise OptimizerError(f"algorithm {name!r} already registered")
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            runner=runner,
            description=description,
            uses_alpha=uses_alpha,
            supports_bounds=supports_bounds,
            rejects_bounds=rejects_bounds,
            single_objective_only=single_objective_only,
            supports_strict=supports_strict,
        )
        return runner

    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (primarily for tests/plugins)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm or fail with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OptimizerError(
            f"unknown algorithm {name!r}; expected one of "
            f"{available_algorithms()}"
        ) from None


def available_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms, in registration order."""
    return tuple(_REGISTRY)


def algorithm_specs() -> tuple[AlgorithmSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


# ----------------------------------------------------------------------
# Built-in algorithms (the paper's line-up plus baselines)
# ----------------------------------------------------------------------
@register_algorithm(
    "exa",
    description="exact multi-objective algorithm (full Pareto frontier)",
    uses_alpha=False,
    supports_bounds=True,
    supports_strict=True,
)
def _run_exa(block, cost_model, preferences, *, alpha, config, deadline,
             strict) -> OptimizationResult:
    return exact_moqo(
        block, cost_model, preferences, config,
        deadline=deadline, strict=strict,
    )


@register_algorithm(
    "rta",
    description="representative-tradeoffs approximation scheme "
                "(weighted MOQO, precision alpha)",
    uses_alpha=True,
    supports_bounds=False,
    supports_strict=True,
)
def _run_rta(block, cost_model, preferences, *, alpha, config, deadline,
             strict) -> OptimizationResult:
    return rta(
        block, cost_model, preferences, alpha, config,
        deadline=deadline, strict=strict,
    )


@register_algorithm(
    "ira",
    description="iterative-refinement approximation scheme "
                "(bounded-weighted MOQO, precision alpha)",
    uses_alpha=True,
    supports_bounds=True,
    supports_strict=True,
)
def _run_ira(block, cost_model, preferences, *, alpha, config, deadline,
             strict) -> OptimizationResult:
    return ira(
        block, cost_model, preferences, alpha, config,
        deadline=deadline, strict=strict,
    )


@register_algorithm(
    "selinger",
    description="single-objective Selinger baseline",
    uses_alpha=False,
    supports_bounds=False,
    single_objective_only=True,
)
def _run_selinger(block, cost_model, preferences, *, alpha, config,
                  deadline, strict) -> OptimizationResult:
    return selinger(
        block, cost_model, preferences.objectives[0], config,
        deadline=deadline,
    )


@register_algorithm(
    "wsum",
    description="weighted-sum scalarization baseline (guarantee-free)",
    uses_alpha=False,
    supports_bounds=False,
)
def _run_wsum(block, cost_model, preferences, *, alpha, config, deadline,
              strict) -> OptimizationResult:
    return weighted_sum_baseline(
        block, cost_model, preferences, config, deadline=deadline,
    )


@register_algorithm(
    "idp",
    description="iterative dynamic programming baseline (guarantee-free)",
    uses_alpha=True,
    supports_bounds=False,
)
def _run_idp(block, cost_model, preferences, *, alpha, config, deadline,
             strict) -> OptimizationResult:
    return idp_moqo(
        block, cost_model, preferences, alpha_u=alpha, config=config,
        deadline=deadline,
    )
