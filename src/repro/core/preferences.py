"""User preferences: objectives, weights and bounds (Section 3).

A weighted MOQO instance is ``(Q, W)``; a bounded-weighted instance adds
a bounds vector ``B`` (``inf`` meaning unbounded). :class:`Preferences`
packages the objective selection with aligned weight/bound tuples; all
optimizer code works on vectors projected to the selected objectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cost.objectives import Objective, objective_indices
from repro.cost.vector import respects_bounds, weighted_cost
from repro.exceptions import OptimizerError

INFINITY = math.inf


@dataclass(frozen=True)
class Preferences:
    """Objective selection with aligned weights and bounds.

    ``weights[i]`` and ``bounds[i]`` refer to ``objectives[i]``. Bounds
    default to infinity (pure weighted MOQO).
    """

    objectives: tuple[Objective, ...]
    weights: tuple[float, ...]
    bounds: tuple[float, ...] = ()
    indices: tuple[int, ...] = field(init=False, compare=False)

    # Fields deliberately excluded from fingerprint() — REP005 enforces
    # that every exclusion is listed here. ``indices`` is derived from
    # ``objectives`` in __post_init__, so it carries no information the
    # fingerprint doesn't already cover.
    _FINGERPRINT_EXCLUDED = frozenset({"indices"})

    def __post_init__(self) -> None:
        if not self.objectives:
            raise OptimizerError("at least one objective is required")
        if len(self.weights) != len(self.objectives):
            raise OptimizerError(
                f"{len(self.objectives)} objectives but "
                f"{len(self.weights)} weights"
            )
        if any(w < 0 for w in self.weights):
            raise OptimizerError("weights must be non-negative")
        if not self.bounds:
            object.__setattr__(
                self, "bounds", (INFINITY,) * len(self.objectives)
            )
        if len(self.bounds) != len(self.objectives):
            raise OptimizerError(
                f"{len(self.objectives)} objectives but "
                f"{len(self.bounds)} bounds"
            )
        if any(b < 0 for b in self.bounds):
            raise OptimizerError("bounds must be non-negative")
        object.__setattr__(
            self, "indices", objective_indices(self.objectives)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_maps(
        cls,
        objectives: Sequence[Objective],
        weights: Mapping[Objective, float] | None = None,
        bounds: Mapping[Objective, float] | None = None,
    ) -> "Preferences":
        """Build preferences from objective-keyed mappings.

        Missing weights default to 0, missing bounds to infinity.
        Mapping keys outside ``objectives`` are rejected.
        """
        objectives = tuple(objectives)
        weights = dict(weights or {})
        bounds = dict(bounds or {})
        for mapping, label in ((weights, "weight"), (bounds, "bound")):
            extra = set(mapping) - set(objectives)
            if extra:
                names = sorted(o.name for o in extra)
                raise OptimizerError(
                    f"{label} on unselected objective(s): {names}"
                )
        return cls(
            objectives=objectives,
            weights=tuple(weights.get(o, 0.0) for o in objectives),
            bounds=tuple(bounds.get(o, INFINITY) for o in objectives),
        )

    # ------------------------------------------------------------------
    @property
    def num_objectives(self) -> int:
        """Number of selected objectives (``l`` in the paper)."""
        return len(self.objectives)

    @property
    def has_bounds(self) -> bool:
        """Whether any objective carries a finite bound."""
        return any(b != INFINITY for b in self.bounds)

    @property
    def bounded_objectives(self) -> tuple[Objective, ...]:
        """Objectives with a finite bound."""
        return tuple(
            o
            for o, b in zip(self.objectives, self.bounds)
            if b != INFINITY
        )

    def weighted(self, cost: Sequence[float]) -> float:
        """Weighted cost ``C_W`` of a projected cost vector."""
        return weighted_cost(cost, self.weights)

    def respects(self, cost: Sequence[float]) -> bool:
        """Whether a projected cost vector respects all bounds."""
        return respects_bounds(cost, self.bounds)

    def without_bounds(self) -> "Preferences":
        """Same objectives/weights with all bounds removed."""
        return Preferences(objectives=self.objectives, weights=self.weights)

    # ------------------------------------------------------------------
    def canonical_items(self) -> tuple[tuple[int, float, float], ...]:
        """``(objective index, weight, bound)`` triples in index order.

        The stable ordering makes two preference sets that select the
        same objectives with the same weights/bounds — but list them in
        a different order — canonicalize identically, which is what lets
        preferences serve as plan-cache key components.
        """
        return tuple(
            sorted(
                (objective.index, weight, bound)
                for objective, weight, bound in zip(
                    self.objectives, self.weights, self.bounds
                )
            )
        )

    def fingerprint(self) -> str:
        """Stable canonical string for cache keys and deduplication."""
        items = ";".join(
            f"{index}:{weight!r}:{bound!r}"
            for index, weight, bound in self.canonical_items()
        )
        return f"prefs[{items}]"


def relative_cost(
    candidate: Sequence[float],
    optimal: Sequence[float],
    preferences: Preferences,
) -> float:
    """Relative cost ``rho_I`` of a plan (Definition 3).

    For bounded instances, a candidate violating the bounds has relative
    cost infinity whenever some plan (the reference optimum) respects
    them. A weighted-optimal cost of zero gives relative cost 1 if the
    candidate is also zero-cost, infinity otherwise.
    """
    if preferences.has_bounds and preferences.respects(optimal):
        if not preferences.respects(candidate):
            return INFINITY
    optimal_weighted = preferences.weighted(optimal)
    candidate_weighted = preferences.weighted(candidate)
    if optimal_weighted == 0.0:
        return 1.0 if candidate_weighted <= 1e-12 else INFINITY
    return candidate_weighted / optimal_weighted
