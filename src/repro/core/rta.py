"""RTA — the representative-tradeoffs algorithm (Algorithm 2, Section 6).

An approximation scheme for *weighted* MOQO: the EXA's pruning is
relaxed so a new plan is only kept if no stored plan **approximately**
dominates it with the internal precision

    alpha_internal = alpha_U ** (1 / |Q|)

By the principle of near-optimality (PONO), approximation factors
multiply along the |Q| levels of bottom-up construction, so the final
plan set is an ``alpha_U``-approximate Pareto set (Theorem 3) and the
selected plan an ``alpha_U``-approximate solution (Corollary 1).
"""

from __future__ import annotations

import time as _time

from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.dp import (
    DPRun,
    PlanSetFactory,
    deadline_exceeded,
    strict_closure,
    strip_entries,
)
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.exceptions import InvalidPrecisionError, OptimizerError
from repro.query.query import Query


def internal_precision(alpha_u: float, num_tables: int) -> float:
    """Per-level precision ``|Q|-th root of alpha_U`` used while pruning."""
    if alpha_u < 1.0:
        raise InvalidPrecisionError(alpha_u)
    if num_tables < 1:
        raise OptimizerError(f"num_tables must be >= 1, got {num_tables}")
    return alpha_u ** (1.0 / num_tables)


def rta(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    alpha_u: float,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
    plan_set_factory: PlanSetFactory | None = None,
    strict: bool = False,
    _algorithm_label: str = "rta",
) -> OptimizationResult:
    """Optimize one query block to within factor ``alpha_u``.

    The RTA targets weighted MOQO; finite bounds require the IRA
    (Section 7) and are rejected here.

    ``strict`` enables the strict pruning closure (DESIGN.md): the
    formal alpha_U guarantee of Theorem 3 requires the objective
    selection to be closed under the cost model's recursive
    dependencies (startup time reads total time; all local cost terms
    read the sub-plans' cardinality, which sampling makes
    plan-dependent). Strict mode augments the pruning key with these
    dimensions so the guarantee holds for *any* objective subset, at
    the price of larger plan sets. The default reproduces the paper's
    pruning exactly.

    ``plan_set_factory`` injects a custom pruning structure; it exists
    for the ablation study of the paper's pruning-variant warning and
    should not be used otherwise.
    """
    if preferences.has_bounds:
        raise OptimizerError(
            "the RTA handles weighted MOQO only; use the IRA for bounds"
        )
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds
    alpha_internal = internal_precision(alpha_u, query.num_tables)
    counters = Counters()
    run = DPRun(
        query=query,
        cost_model=cost_model,
        config=config,
        indices=preferences.indices,
        weights=preferences.weights,
        alpha_internal=alpha_internal,
        plan_set_factory=plan_set_factory,
        deadline=deadline,
        counters=counters,
        extra_indices=strict_closure(preferences.indices) if strict else (),
        include_rows=strict,
    )
    sets = run.run()
    final_set = strip_entries(sets[run.graph.full_mask],
                              run.projection_width)
    best = select_best(final_set, preferences)
    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm=_algorithm_label,
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=counters.memory_kb,
        pareto_last_complete=counters.pareto_last_complete,
        plans_considered=counters.plans_considered,
        candidates_vectorized=counters.candidates_vectorized,
        timed_out=counters.timed_out,
        alpha=alpha_u,
        deadline_hit=counters.timed_out or deadline_exceeded(deadline),
        phase_ms=counters.phase_ms() if config.phase_timers else {},
    )
