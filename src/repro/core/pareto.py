"""Pareto-set and frontier utilities (Definitions in Section 3).

These helpers express the paper's set-level notions — Pareto frontier,
alpha-approximate Pareto set, (approximately) dominated area — on top of
the vector-level primitives in :mod:`repro.cost.vector`. They are used
by tests (to verify algorithm guarantees) and by the benchmark harness
(Figures 2, 6 and 8).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cost.vector import (
    approx_dominates,
    dominates,
    max_ratio,
    pareto_filter,
    strictly_dominates,
)

__all__ = [
    "approx_dominates",
    "dominates",
    "strictly_dominates",
    "pareto_filter",
    "max_ratio",
    "is_pareto_set",
    "is_approximate_pareto_set",
    "coverage_factor",
    "dominated_by_set",
    "approximately_dominated_by_set",
]


def is_pareto_set(
    candidates: Iterable[Sequence[float]],
    all_vectors: Iterable[Sequence[float]],
) -> bool:
    """Whether ``candidates`` covers the Pareto frontier of ``all_vectors``.

    A Pareto set must contain, for every Pareto-optimal vector, a
    cost-equivalent (or dominating) representative.
    """
    return is_approximate_pareto_set(candidates, all_vectors, alpha=1.0)


def is_approximate_pareto_set(
    candidates: Iterable[Sequence[float]],
    all_vectors: Iterable[Sequence[float]],
    alpha: float,
) -> bool:
    """Whether ``candidates`` is an alpha-approximate Pareto set.

    For every Pareto vector ``c*`` of ``all_vectors`` there must be a
    candidate ``c`` with ``c <=_alpha c*`` (Definition in Section 3).
    """
    candidate_list = [tuple(c) for c in candidates]
    for pareto_vector in pareto_filter(all_vectors):
        if not any(
            approx_dominates(c, pareto_vector, alpha) for c in candidate_list
        ):
            return False
    return True


def coverage_factor(
    candidates: Iterable[Sequence[float]],
    all_vectors: Iterable[Sequence[float]],
) -> float:
    """Smallest alpha for which ``candidates`` alpha-covers the frontier.

    Useful in tests: the RTA guarantees this is at most the user
    precision ``alpha_U``.
    """
    candidate_list = [tuple(c) for c in candidates]
    if not candidate_list:
        return float("inf")
    worst = 1.0
    for pareto_vector in pareto_filter(all_vectors):
        best = min(max_ratio(c, pareto_vector) for c in candidate_list)
        worst = max(worst, best)
    return worst


def dominated_by_set(
    vector: Sequence[float], vectors: Iterable[Sequence[float]]
) -> bool:
    """Whether any vector of ``vectors`` dominates ``vector``."""
    return any(dominates(v, vector) for v in vectors)


def approximately_dominated_by_set(
    vector: Sequence[float],
    vectors: Iterable[Sequence[float]],
    alpha: float,
) -> bool:
    """Whether any vector of ``vectors`` alpha-approximately dominates it."""
    return any(approx_dominates(v, vector, alpha) for v in vectors)
