"""Immutable optimization requests — the unit of work of the service API.

An :class:`OptimizationRequest` bundles everything one optimizer call
needs: the query, the user preferences, the chosen algorithm and its
precision, an optional per-request config override and deadline, and
free-form tags for routing/metrics. Requests validate declaratively on
construction (against the algorithm registry's capability declarations)
and expose a canonical :meth:`~OptimizationRequest.fingerprint` so
identical requests can be deduplicated and served from the plan cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.config import OptimizerConfig
from repro.core.preferences import Preferences
from repro.core.registry import get_algorithm
from repro.exceptions import InvalidPrecisionError, RequestValidationError
from repro.query.query import MultiBlockQuery, Query, single_block

#: Default approximation precision for the schemes that take one.
DEFAULT_ALPHA = 1.5


@dataclass(frozen=True)
class OptimizationRequest:
    """One immutable unit of optimization work.

    ``query`` accepts a plain :class:`Query` block and normalizes it to
    a single-block :class:`MultiBlockQuery`. ``config`` overrides the
    executing service's default configuration; ``timeout_seconds``
    overrides the (effective) config's timeout — a per-request deadline.
    ``tags`` are free-form labels carried through to metrics hooks; they
    never affect the result or the cache key.
    """

    query: MultiBlockQuery
    preferences: Preferences
    algorithm: str = "rta"
    alpha: float = DEFAULT_ALPHA
    strict: bool = False
    config: OptimizerConfig | None = None
    timeout_seconds: float | None = None
    tags: tuple[str, ...] = ()

    # Fields deliberately excluded from fingerprint() — REP005 enforces
    # that every exclusion is listed here. Tags are observability-only
    # labels; two requests differing only in tags must share a cache
    # entry.
    _FINGERPRINT_EXCLUDED = frozenset({"tags"})

    def __post_init__(self) -> None:
        if isinstance(self.query, Query):
            object.__setattr__(self, "query", single_block(self.query))
        if not isinstance(self.query, MultiBlockQuery):
            raise RequestValidationError(
                f"query must be a Query or MultiBlockQuery, "
                f"got {type(self.query).__name__}"
            )
        if not isinstance(self.preferences, Preferences):
            raise RequestValidationError(
                f"preferences must be a Preferences instance, "
                f"got {type(self.preferences).__name__}"
            )
        spec = get_algorithm(self.algorithm)  # raises on unknown names
        spec.validate(self.preferences)
        if self.strict and not spec.supports_strict:
            raise RequestValidationError(
                f"the {self.algorithm} algorithm does not implement the "
                f"strict pruning closure (strict=True)"
            )
        if spec.uses_alpha:
            if not isinstance(self.alpha, (int, float)):
                raise RequestValidationError(
                    f"alpha must be a number, got {type(self.alpha).__name__}"
                )
            if self.alpha < 1.0:
                raise InvalidPrecisionError(self.alpha)
        if self.config is not None and not isinstance(
            self.config, OptimizerConfig
        ):
            raise RequestValidationError(
                f"config must be an OptimizerConfig or None, "
                f"got {type(self.config).__name__}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise RequestValidationError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        tags = tuple(self.tags)
        if any(not isinstance(tag, str) for tag in tags):
            raise RequestValidationError("tags must be strings")
        object.__setattr__(self, "tags", tags)

    # ------------------------------------------------------------------
    @property
    def query_name(self) -> str:
        """Name of the query being optimized."""
        return self.query.name

    def effective_config(self, default: OptimizerConfig) -> OptimizerConfig:
        """Resolve the configuration this request runs under.

        The request-level config (if any) wins over the service default;
        a request-level timeout then overrides the config's timeout.
        """
        config = self.config if self.config is not None else default
        if self.timeout_seconds is not None:
            config = config.with_timeout(self.timeout_seconds)
        return config

    def replace(self, **changes) -> "OptimizationRequest":
        """A copy of this request with some fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    def cache_payload(self, default_config: OptimizerConfig | None = None) -> str:
        """Human-readable canonical form backing :meth:`fingerprint`.

        Covers everything that can change the produced plan: query
        structure, canonicalized preferences (as the algorithm sees them
        — bounds an algorithm strips are normalized away), algorithm,
        precision (normalized away for algorithms that ignore it),
        strict mode and the effective configuration. Tags are
        deliberately excluded.
        """
        spec = get_algorithm(self.algorithm)
        preferences = spec.prepare_preferences(self.preferences)
        alpha = repr(float(self.alpha)) if spec.uses_alpha else "-"
        if self.config is not None or default_config is not None:
            config_fp = self.effective_config(
                self.config or default_config
            ).fingerprint()
        else:
            config_fp = f"default;timeout={self.timeout_seconds!r}"
        return "|".join(
            (
                f"query={self.query!r}",
                preferences.fingerprint(),
                f"algorithm={self.algorithm}",
                f"alpha={alpha}",
                f"strict={self.strict}",
                config_fp,
            )
        )

    def fingerprint(self, default_config: OptimizerConfig | None = None) -> str:
        """Canonical cache key for this request (sha256 hex digest).

        Two requests with the same fingerprint are guaranteed to produce
        equivalent plans (modulo timeouts — the executing service avoids
        caching timed-out results). Pass the executing service's default
        config so config-less requests key on the actual effective
        configuration.
        """
        payload = self.cache_payload(default_config)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
