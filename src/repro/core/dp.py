"""Bottom-up dynamic-programming plan enumeration (shared skeleton).

This is the ``FindParetoPlans`` function of Algorithms 1 and 2: plans
for singleton table sets come from the access paths; plans for larger
sets are built from all splits into two (internally connected) subsets,
all applicable operator configurations, and all combinations of stored
sub-plans. Plan sets are pruned via :class:`repro.core.pruning.PlanSet`
— with internal precision 1 this is the EXA, with precision
``alpha_U ** (1/|Q|)`` the RTA.

Timeout handling follows Section 5.1 of the paper: once the deadline
passes, the run "finishes quickly by only generating one plan for all
table sets that have not been treated so far" — remaining sets keep only
the best weighted plan, built from the best weighted representative of
each operand set.

Vectorized enumeration (the default,
``OptimizerConfig.vectorized_enumeration``): instead of costing one
``(join spec, outer plan, inner plan)`` candidate at a time, the hot
loop computes whole ``outer x inner`` cost blocks per spec through the
batched kernels of :meth:`repro.cost.model.CostModel.join_cost_block`,
masks them down via :meth:`repro.core.pruning.PlanSet.block_accept`,
and only materializes :class:`~repro.plans.plan.JoinPlan` objects for
surviving rows (survivors carry flat ``(outer_idx, inner_idx)``
backpointers, so materialization is a cheap gather).
**Determinism contract:** the batch path visits candidates in exactly
the scalar loop's order (spec-major, then outer, then inner) and the
kernels mirror the scalar formulas operation for operation, so the
resulting plan sets — entry order included — are bit-for-bit identical
to the scalar path's, which is what keeps the prefix-replay shard
equality guarantees of :mod:`repro.parallel.sharding` intact. The
property tests in ``tests/test_vectorized_equivalence.py`` enforce the
contract, and ``repro lint`` rule REP001 enforces its preconditions
statically: no unseeded RNG, wall-clock reads, or unordered set
iteration may feed results in this module (the deadline checks and
phase timers below carry per-line ``lint-allow`` suppressions because
they only gate *when* enumeration stops, never *which* plan wins).
"""

from __future__ import annotations

import time as _time
from typing import Callable

import numpy as np

from repro.config import OptimizerConfig, PlanShape
from repro.core.instrumentation import Counters
from repro.core.pruning import PlanSet, SingleBestPlanSet
from repro.obs.trace import active_tracer
from repro.cost.model import CostModel
from repro.cost.vector import project
from repro.plans.operators import JoinMethod
from repro.plans.plan import JoinPlan, Plan
from repro.plans.plan_space import PlanSpace
from repro.query.join_graph import JoinGraph
from repro.query.query import Query

#: Factory signature for plan-set construction (allows the ablation
#: variant to be injected without changing the DP skeleton).
PlanSetFactory = Callable[[], PlanSet]

#: Vector positions involved in strict-mode closure (see DESIGN.md):
#: startup time's recursive formula reads the sub-plans' total time.
_STARTUP_INDEX = 1
_TOTAL_INDEX = 0

#: Minimum ``outer x inner`` candidates per spec for the block path;
#: below this, numpy call overhead beats the batching win and the
#: (bit-identical) scalar loop runs instead. Purely a deterministic
#: performance cutover — it never changes results.
_MIN_BLOCK_CANDIDATES = 16

#: Maximum candidate rows costed per kernel call. Large Pareto sets
#: (many-objective EXA) would otherwise allocate outer*inner*9 floats
#: per kernel temporary; chunking the *outer* axis keeps peak memory
#: bounded while preserving the outer-major enumeration order, so
#: results are unaffected.
_MAX_BLOCK_ROWS = 32768


def strict_closure(indices: tuple[int, ...]) -> tuple[int, ...]:
    """Extra objective dimensions strict mode adds to the pruning key.

    Currently: total time, whenever startup time is selected without it
    (the only cross-objective dependency among the cost formulas; the
    cardinality dependency is handled by the appended rows dimension).
    """
    if _STARTUP_INDEX in indices and _TOTAL_INDEX not in indices:
        return (_TOTAL_INDEX,)
    return ()


def strip_entries(entries, width: int):
    """Drop strict-mode pruning dimensions from stored (cost, plan) pairs."""
    return [(cost[:width], plan) for cost, plan in entries]


def deadline_exceeded(deadline: float | None) -> bool:
    """Whether an absolute ``perf_counter`` deadline has already passed.

    Algorithms call this once at the end of a run to report
    ``deadline_hit`` even when the enumeration's coarse periodic check
    (every ``timeout_check_interval`` candidates) never fired.
    """
    return deadline is not None and _time.perf_counter() > deadline  # lint-allow: REP001 deadline check only; never feeds plan choice


class DPRun:
    """One bottom-up enumeration over a single query block."""

    def __init__(
        self,
        query: Query,
        cost_model: CostModel,
        config: OptimizerConfig,
        indices: tuple[int, ...],
        weights: tuple[float, ...],
        alpha_internal: float = 1.0,
        plan_set_factory: PlanSetFactory | None = None,
        deadline: float | None = None,
        counters: Counters | None = None,
        extra_indices: tuple[int, ...] = (),
        include_rows: bool = False,
    ) -> None:
        """``extra_indices`` appends further objective dimensions to the
        pruning key (e.g. total time when only startup time is selected)
        and ``include_rows`` appends the plan's output cardinality as an
        exactly-compared dimension — together these form the *strict
        mode* closure described in DESIGN.md. Weights are padded with
        zeros over the appended dimensions, so weighted-cost decisions
        (timeout fallback, SelectBest) are unaffected."""
        self.query = query
        self.cost_model = cost_model
        self.config = config
        self.indices = indices
        self.extra_indices = extra_indices
        self.include_rows = include_rows
        self.weights = weights + (0.0,) * (
            len(extra_indices) + (1 if include_rows else 0)
        )
        self.alpha_internal = alpha_internal
        self.plan_space = PlanSpace(cost_model, config)
        self.graph = JoinGraph(query)
        self.deadline = deadline
        self.counters = counters if counters is not None else Counters()
        exact_suffix = 1 if include_rows else 0
        self._factory: PlanSetFactory = plan_set_factory or (
            lambda: PlanSet(alpha=alpha_internal, exact_suffix=exact_suffix)
        )
        self._check_interval = config.timeout_check_interval
        self._since_check = 0
        self._timed_out = False
        self._vectorized = config.vectorized_enumeration
        # Phase timers cost a few perf_counter reads per candidate
        # *block* (never per candidate), so they default on; the scalar
        # loop's time is charged to enumeration as self time.
        self._phase_timers = config.phase_timers
        self._all_indices = indices + extra_indices
        self._indices_array = np.array(self._all_indices, dtype=np.intp)
        self._full_projection = (
            self._all_indices == tuple(range(9)) and not include_rows
        )
        self._nested_loop_specs = tuple(
            spec
            for spec in self.plan_space.generic_join_specs
            if spec.method is JoinMethod.NESTED_LOOP
        )

    @property
    def projection_width(self) -> int:
        """Number of preference dimensions (prefix of stored tuples)."""
        return len(self.indices)

    # ------------------------------------------------------------------
    def run(self) -> dict[int, PlanSet]:
        """Execute the enumeration; returns plan sets keyed by bitmask.

        When phase timing is on, the run's wall time minus whatever the
        block path charged to kernel/prune/materialize is credited to
        ``enumeration_ms`` — the phases stay disjoint and sum to the DP
        wall time. When a tracer is active, one span per DP level
        (table-set size) records where enumeration time went level by
        level.
        """
        graph = self.graph
        masks = graph.connected_subsets()
        counters = self.counters
        counters.table_sets_total = len(masks)
        tracer = active_tracer()
        timers = self._phase_timers
        run_start = _time.perf_counter() if timers else 0.0  # lint-allow: REP001 phase timer; measured, never decided on
        sub_phase_before = (
            counters.kernel_ms + counters.pruning_ms + counters.materialize_ms
        )
        level_span = None
        level_plans_before = 0
        level = 0
        sets: dict[int, PlanSet] = {}
        for mask in masks:
            size = mask.bit_count()
            if tracer is not None and size != level:
                if level_span is not None:
                    level_span.set(
                        plans_considered=(
                            counters.plans_considered - level_plans_before
                        ),
                    )
                    level_span.finish()
                level = size
                level_plans_before = counters.plans_considered
                level_span = tracer.begin(f"dp_level_{size}", "dp_level",
                                          tables=size)
            fallback_before = self._timed_out
            if size == 1:
                plan_set = self._build_singleton(mask)
            else:
                plan_set = self._build_composite(mask, sets)
            sets[mask] = plan_set
            # A set counts as "treated completely" only if the whole
            # enumeration for it ran before the timeout.
            counters.complete_table_set(
                mask, len(plan_set),
                fallback=fallback_before or self._timed_out,
            )
        if level_span is not None:
            level_span.set(
                plans_considered=(
                    counters.plans_considered - level_plans_before
                ),
            )
            level_span.finish()
        if timers:
            wall_ms = (_time.perf_counter() - run_start) * 1000.0  # lint-allow: REP001 phase timer; measured, never decided on
            sub_phase_ms = (
                counters.kernel_ms
                + counters.pruning_ms
                + counters.materialize_ms
                - sub_phase_before
            )
            counters.enumeration_ms += max(0.0, wall_ms - sub_phase_ms)
        counters.timed_out = self._timed_out
        return sets

    # ------------------------------------------------------------------
    def _new_set(self) -> PlanSet:
        if self._timed_out:
            return SingleBestPlanSet(self.weights)
        return self._factory()

    def _build_singleton(self, mask: int) -> PlanSet:
        alias = next(iter(self.graph.aliases_of(mask)))
        plan_set = self._new_set()
        for plan in self.plan_space.access_paths(self.query, alias):
            self._consider(plan_set, plan)
        return plan_set

    def _build_composite(self, mask: int, sets: dict[int, PlanSet]) -> PlanSet:
        plan_set = self._new_set()
        self._combine_splits(plan_set, self.graph.splits(mask), sets)
        return plan_set

    def _combine_splits(
        self,
        plan_set: PlanSet,
        splits,
        sets: dict[int, PlanSet],
    ) -> None:
        """Prune ``plan_set`` with every join built from ``splits``.

        Factored out of :meth:`_build_composite` so plan-space sharding
        (:mod:`repro.parallel.sharding`) can drive the same combination
        logic over a sub-range of a table set's splits.
        """
        graph = self.graph
        left_deep = self.config.plan_shape is PlanShape.LEFT_DEEP
        for left_mask, right_mask in splits:
            left_set = sets.get(left_mask)
            right_set = sets.get(right_mask)
            if left_set is None or right_set is None or not left_set or not right_set:
                # Internally disconnected halves carry no plans
                # (standard connected-subgraph enumeration).
                continue
            if left_deep and not (
                left_mask.bit_count() == 1 or right_mask.bit_count() == 1
            ):
                continue
            predicates = graph.predicates_between(left_mask, right_mask)
            # Memoized on the cost model: the IRA re-enumerates the same
            # splits every refinement iteration.
            selectivity = self.cost_model.selectivities.join_selectivity(
                self.query, predicates
            )
            # Left-deep trees require a base-table inner; bushy trees
            # combine each unordered split in both operand orders.
            if not left_deep or right_mask.bit_count() == 1:
                self._combine_pair(plan_set, left_set, right_mask,
                                   right_set, predicates, selectivity)
            if not left_deep or left_mask.bit_count() == 1:
                self._combine_pair(plan_set, right_set, left_mask,
                                   left_set, predicates, selectivity)

    def _combine_pair(
        self,
        target: PlanSet,
        outer_set: PlanSet,
        inner_mask: int,
        inner_set: PlanSet,
        predicates,
        selectivity: float,
    ) -> None:
        """Join plans with ``outer`` as left and ``inner`` as right operand.

        Dispatches to the batched block path (default) or the scalar
        per-candidate loop. The scalar loop remains the behavioural
        reference: it runs when ``vectorized_enumeration`` is off, after
        a timeout (single-representative fallback), and for pruning
        structures whose block semantics are not bit-for-bit equivalent
        (``vectorizable = False``, e.g. the aggressive ablation variant).
        """
        if (
            self._vectorized
            and not self._timed_out
            and target.vectorizable
            and len(outer_set) * len(inner_set) >= _MIN_BLOCK_CANDIDATES
        ):
            self._combine_pair_block(
                target, outer_set, inner_mask, inner_set, predicates,
                selectivity,
            )
        else:
            self._combine_pair_scalar(
                target, outer_set, inner_mask, inner_set, predicates,
                selectivity,
            )

    def _combine_pair_scalar(
        self,
        target: PlanSet,
        outer_set: PlanSet,
        inner_mask: int,
        inner_set: PlanSet,
        predicates,
        selectivity: float,
    ) -> None:
        """Reference per-candidate loop (one ``join_cost`` call each).

        Hot loop: for every candidate the cost vector is computed first
        and a :class:`JoinPlan` is only materialized if the target set
        does not already (approximately) dominate it.
        """
        query = self.query
        cost_model = self.cost_model
        if self._timed_out:
            # Timeout fallback: single representative per operand set.
            outer_entry = outer_set.best_weighted(self.weights)
            inner_entry = inner_set.best_weighted(self.weights)
            outer_plans = [outer_entry[1]] if outer_entry else []
            inner_plans = [inner_entry[1]] if inner_entry else []
        else:
            outer_plans = [plan for _, plan in outer_set]
            inner_plans = [plan for _, plan in inner_set]

        if predicates:
            generic_specs = self.plan_space.generic_join_specs
        else:
            # Cartesian product: only nested loops are applicable.
            generic_specs = self._nested_loop_specs

        indices = self._all_indices
        include_rows = self.include_rows
        full_projection = self._full_projection
        join_cost = cost_model.join_cost
        counters = self.counters
        for spec in generic_specs:
            for left_plan in outer_plans:
                left_rows = left_plan.rows
                for right_plan in inner_plans:
                    out_rows = left_rows * right_plan.rows * selectivity
                    cost = join_cost(spec, left_plan, right_plan, out_rows)
                    counters.plans_considered += 1
                    if full_projection:
                        projected = cost
                    else:
                        projected = tuple(cost[i] for i in indices)
                        if include_rows:
                            projected += (out_rows,)
                    if not target.covers(projected):
                        plan = JoinPlan(
                            spec, left_plan, right_plan, out_rows,
                            left_plan.width + right_plan.width,
                            cost, cost[8],
                        )
                        target.force_insert(projected, plan)
                    self._since_check += 1
                    if self._since_check >= self._check_interval:
                        self._since_check = 0
                        self._check_deadline()
                        if self._timed_out:
                            return

        # Index-nested-loop: inner must be a single base table with an
        # index on a join column.
        if predicates and inner_mask.bit_count() == 1:
            inner_alias = next(iter(self.graph.aliases_of(inner_mask)))
            if not self._allow_index_probe(inner_alias):
                return
            probes = self.plan_space.index_probe_inners(
                query, inner_alias, predicates
            )
            for probe in probes:
                probe_rows = probe.rows
                for spec in self.plan_space.index_nl_specs:
                    for left_plan in outer_plans:
                        out_rows = left_plan.rows * probe_rows * selectivity
                        cost = join_cost(spec, left_plan, probe, out_rows)
                        counters.plans_considered += 1
                        if full_projection:
                            projected = cost
                        else:
                            projected = tuple(cost[i] for i in indices)
                            if include_rows:
                                projected += (out_rows,)
                        if not target.covers(projected):
                            plan = JoinPlan(
                                spec, left_plan, probe, out_rows,
                                left_plan.width + probe.width,
                                cost, cost[8],
                            )
                            target.force_insert(projected, plan)
                        self._since_check += 1
                        if self._since_check >= self._check_interval:
                            self._since_check = 0
                            self._check_deadline()
                            if self._timed_out:
                                return

    # ------------------------------------------------------------------
    # Vectorized (block) enumeration
    # ------------------------------------------------------------------
    def _combine_pair_block(
        self,
        target: PlanSet,
        outer_set: PlanSet,
        inner_mask: int,
        inner_set: PlanSet,
        predicates,
        selectivity: float,
    ) -> None:
        """Batched ``_combine_pair``: per-spec ``outer x inner`` blocks.

        Candidates are generated in exactly the scalar loop's order
        (spec-major, then outer, then inner); each spec's block is
        costed by one kernel call, masked by
        :meth:`~repro.core.pruning.PlanSet.block_accept`, and only
        surviving rows materialize plans — see the module docstring's
        determinism contract.
        """
        cost_model = self.cost_model
        outer_block = outer_set.plan_block()
        inner_block = inner_set.plan_block()
        if predicates:
            generic_specs = self.plan_space.generic_join_specs
        else:
            # Cartesian product: only nested loops are applicable.
            generic_specs = self._nested_loop_specs

        n_outer = len(outer_block)
        n_inner = len(inner_block)
        outer_chunk = max(1, _MAX_BLOCK_ROWS // n_inner)
        timers = self._phase_timers
        counters = self.counters
        for spec in generic_specs:
            # Chunking the outer axis preserves the outer-major
            # candidate order, so chunk boundaries are invisible to the
            # pruning structure (earlier chunks insert before later
            # chunks' accept masks are computed — the sequential order).
            for start in range(0, n_outer, outer_chunk):
                stop = min(start + outer_chunk, n_outer)
                chunk = (
                    outer_block
                    if stop - start == n_outer
                    else outer_block.slice(start, stop)
                )
                kernel_start = _time.perf_counter() if timers else 0.0  # lint-allow: REP001 phase timer; measured, never decided on
                out_rows = (
                    chunk.rows[:, None] * inner_block.rows[None, :]
                ) * selectivity
                costs = cost_model.join_cost_block(
                    spec, chunk, inner_block, out_rows
                ).reshape(-1, 9)
                if timers:
                    counters.kernel_ms += (
                        _time.perf_counter() - kernel_start  # lint-allow: REP001 phase timer; measured, never decided on
                    ) * 1000.0
                if not self._insert_block(
                    target, spec, costs, out_rows.reshape(-1),
                    chunk.plans, inner_block.plans, n_inner,
                ):
                    return

        # Index-nested-loop: inner must be a single base table with an
        # index on a join column.
        if predicates and inner_mask.bit_count() == 1:
            inner_alias = next(iter(self.graph.aliases_of(inner_mask)))
            if not self._allow_index_probe(inner_alias):
                return
            probes = self.plan_space.index_probe_inners(
                self.query, inner_alias, predicates
            )
            for probe in probes:
                probe_out_rows = (
                    outer_block.rows * probe.rows
                ) * selectivity
                for spec in self.plan_space.index_nl_specs:
                    kernel_start = _time.perf_counter() if timers else 0.0  # lint-allow: REP001 phase timer; measured, never decided on
                    costs = cost_model.index_nl_cost_block(
                        spec, outer_block, probe, probe_out_rows
                    )
                    if timers:
                        counters.kernel_ms += (
                            _time.perf_counter() - kernel_start  # lint-allow: REP001 phase timer; measured, never decided on
                        ) * 1000.0
                    if not self._insert_block(
                        target, spec, costs, probe_out_rows,
                        outer_block.plans, (probe,), 1,
                    ):
                        return

    def _insert_block(
        self,
        target: PlanSet,
        spec,
        costs: np.ndarray,
        out_rows: np.ndarray,
        outer_plans,
        inner_plans,
        n_inner: int,
    ) -> bool:
        """Mask one cost block and materialize its surviving rows.

        ``costs`` is the flat ``(n, 9)`` block in enumeration order;
        row ``k`` joins ``outer_plans[k // n_inner]`` with
        ``inner_plans[k % n_inner]``. Returns ``False`` once the
        deadline check trips (the caller abandons the remaining specs,
        like the scalar loop's mid-iteration return).
        """
        counters = self.counters
        timers = self._phase_timers
        n_rows = costs.shape[0]
        counters.plans_considered += n_rows
        counters.candidates_vectorized += n_rows
        prune_start = _time.perf_counter() if timers else 0.0  # lint-allow: REP001 phase timer; measured, never decided on
        if self._full_projection:
            projected = costs
        else:
            projected = costs[:, self._indices_array]
            if self.include_rows:
                projected = np.concatenate(
                    (projected, out_rows[:, None]), axis=1
                )
        keep = target.block_accept(projected)
        if timers:
            materialize_start = _time.perf_counter()  # lint-allow: REP001 phase timer; measured, never decided on
            counters.pruning_ms += (materialize_start - prune_start) * 1000.0
        for position in map(int, np.nonzero(keep)[0]):
            cost = tuple(costs[position].tolist())
            if self._full_projection:
                projected_tuple = cost
            else:
                projected_tuple = tuple(projected[position].tolist())
            left_plan = outer_plans[position // n_inner]
            right_plan = inner_plans[position % n_inner]
            plan = JoinPlan(
                spec, left_plan, right_plan, float(out_rows[position]),
                left_plan.width + right_plan.width, cost, cost[8],
            )
            target.force_insert(projected_tuple, plan)
        if timers:
            counters.materialize_ms += (
                _time.perf_counter() - materialize_start  # lint-allow: REP001 phase timer; measured, never decided on
            ) * 1000.0
        self._since_check += n_rows
        if self._since_check >= self._check_interval:
            self._since_check = 0
            self._check_deadline()
            if self._timed_out:
                return False
        return True

    # ------------------------------------------------------------------
    def _consider(self, target: PlanSet, plan: Plan) -> None:
        """Prune ``target`` with a newly generated plan (leaf path)."""
        counters = self.counters
        counters.plans_considered += 1
        projected = project(plan.cost, self._all_indices)
        if self.include_rows:
            projected += (plan.rows,)
        target.insert(projected, plan)
        self._since_check += 1
        if self._since_check >= self._check_interval:
            self._since_check = 0
            self._check_deadline()

    def _allow_index_probe(self, inner_alias: str) -> bool:
        """Whether the alias may serve as an index-probe inner.

        Subclasses representing virtual (already-committed) operands
        override this — a virtual leaf is an intermediate result, not a
        base table with indexes.
        """
        return True

    def _check_deadline(self) -> None:
        if (
            not self._timed_out
            and self.deadline is not None
            and _time.perf_counter() > self.deadline  # lint-allow: REP001 deadline check only; never feeds plan choice
        ):
            self._timed_out = True

    @property
    def timed_out(self) -> bool:
        """Whether the deadline was hit during enumeration."""
        return self._timed_out
