"""Bottom-up dynamic-programming plan enumeration (shared skeleton).

This is the ``FindParetoPlans`` function of Algorithms 1 and 2: plans
for singleton table sets come from the access paths; plans for larger
sets are built from all splits into two (internally connected) subsets,
all applicable operator configurations, and all combinations of stored
sub-plans. Plan sets are pruned via :class:`repro.core.pruning.PlanSet`
— with internal precision 1 this is the EXA, with precision
``alpha_U ** (1/|Q|)`` the RTA.

Timeout handling follows Section 5.1 of the paper: once the deadline
passes, the run "finishes quickly by only generating one plan for all
table sets that have not been treated so far" — remaining sets keep only
the best weighted plan, built from the best weighted representative of
each operand set.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from repro.config import OptimizerConfig, PlanShape
from repro.core.instrumentation import Counters
from repro.core.pruning import PlanSet, SingleBestPlanSet
from repro.cost import cardinality
from repro.cost.model import CostModel
from repro.cost.vector import project
from repro.plans.operators import JoinMethod
from repro.plans.plan import JoinPlan, Plan
from repro.plans.plan_space import PlanSpace
from repro.query.join_graph import JoinGraph
from repro.query.query import Query

#: Factory signature for plan-set construction (allows the ablation
#: variant to be injected without changing the DP skeleton).
PlanSetFactory = Callable[[], PlanSet]

#: Vector positions involved in strict-mode closure (see DESIGN.md):
#: startup time's recursive formula reads the sub-plans' total time.
_STARTUP_INDEX = 1
_TOTAL_INDEX = 0


def strict_closure(indices: tuple[int, ...]) -> tuple[int, ...]:
    """Extra objective dimensions strict mode adds to the pruning key.

    Currently: total time, whenever startup time is selected without it
    (the only cross-objective dependency among the cost formulas; the
    cardinality dependency is handled by the appended rows dimension).
    """
    if _STARTUP_INDEX in indices and _TOTAL_INDEX not in indices:
        return (_TOTAL_INDEX,)
    return ()


def strip_entries(entries, width: int):
    """Drop strict-mode pruning dimensions from stored (cost, plan) pairs."""
    return [(cost[:width], plan) for cost, plan in entries]


def deadline_exceeded(deadline: float | None) -> bool:
    """Whether an absolute ``perf_counter`` deadline has already passed.

    Algorithms call this once at the end of a run to report
    ``deadline_hit`` even when the enumeration's coarse periodic check
    (every ``timeout_check_interval`` candidates) never fired.
    """
    return deadline is not None and _time.perf_counter() > deadline


class DPRun:
    """One bottom-up enumeration over a single query block."""

    def __init__(
        self,
        query: Query,
        cost_model: CostModel,
        config: OptimizerConfig,
        indices: tuple[int, ...],
        weights: tuple[float, ...],
        alpha_internal: float = 1.0,
        plan_set_factory: PlanSetFactory | None = None,
        deadline: float | None = None,
        counters: Counters | None = None,
        extra_indices: tuple[int, ...] = (),
        include_rows: bool = False,
    ) -> None:
        """``extra_indices`` appends further objective dimensions to the
        pruning key (e.g. total time when only startup time is selected)
        and ``include_rows`` appends the plan's output cardinality as an
        exactly-compared dimension — together these form the *strict
        mode* closure described in DESIGN.md. Weights are padded with
        zeros over the appended dimensions, so weighted-cost decisions
        (timeout fallback, SelectBest) are unaffected."""
        self.query = query
        self.cost_model = cost_model
        self.config = config
        self.indices = indices
        self.extra_indices = extra_indices
        self.include_rows = include_rows
        self.weights = weights + (0.0,) * (
            len(extra_indices) + (1 if include_rows else 0)
        )
        self.alpha_internal = alpha_internal
        self.plan_space = PlanSpace(cost_model, config)
        self.graph = JoinGraph(query)
        self.deadline = deadline
        self.counters = counters if counters is not None else Counters()
        exact_suffix = 1 if include_rows else 0
        self._factory: PlanSetFactory = plan_set_factory or (
            lambda: PlanSet(alpha=alpha_internal, exact_suffix=exact_suffix)
        )
        self._check_interval = config.timeout_check_interval
        self._since_check = 0
        self._timed_out = False
        self._all_indices = indices + extra_indices
        self._full_projection = (
            self._all_indices == tuple(range(9)) and not include_rows
        )
        self._nested_loop_specs = tuple(
            spec
            for spec in self.plan_space.generic_join_specs
            if spec.method is JoinMethod.NESTED_LOOP
        )

    @property
    def projection_width(self) -> int:
        """Number of preference dimensions (prefix of stored tuples)."""
        return len(self.indices)

    # ------------------------------------------------------------------
    def run(self) -> dict[int, PlanSet]:
        """Execute the enumeration; returns plan sets keyed by bitmask."""
        graph = self.graph
        masks = graph.connected_subsets()
        self.counters.table_sets_total = len(masks)
        sets: dict[int, PlanSet] = {}
        for mask in masks:
            fallback_before = self._timed_out
            if mask.bit_count() == 1:
                plan_set = self._build_singleton(mask)
            else:
                plan_set = self._build_composite(mask, sets)
            sets[mask] = plan_set
            # A set counts as "treated completely" only if the whole
            # enumeration for it ran before the timeout.
            self.counters.complete_table_set(
                mask, len(plan_set),
                fallback=fallback_before or self._timed_out,
            )
        self.counters.timed_out = self._timed_out
        return sets

    # ------------------------------------------------------------------
    def _new_set(self) -> PlanSet:
        if self._timed_out:
            return SingleBestPlanSet(self.weights)
        return self._factory()

    def _build_singleton(self, mask: int) -> PlanSet:
        alias = next(iter(self.graph.aliases_of(mask)))
        plan_set = self._new_set()
        for plan in self.plan_space.access_paths(self.query, alias):
            self._consider(plan_set, plan)
        return plan_set

    def _build_composite(self, mask: int, sets: dict[int, PlanSet]) -> PlanSet:
        plan_set = self._new_set()
        self._combine_splits(plan_set, self.graph.splits(mask), sets)
        return plan_set

    def _combine_splits(
        self,
        plan_set: PlanSet,
        splits,
        sets: dict[int, PlanSet],
    ) -> None:
        """Prune ``plan_set`` with every join built from ``splits``.

        Factored out of :meth:`_build_composite` so plan-space sharding
        (:mod:`repro.parallel.sharding`) can drive the same combination
        logic over a sub-range of a table set's splits.
        """
        graph = self.graph
        left_deep = self.config.plan_shape is PlanShape.LEFT_DEEP
        for left_mask, right_mask in splits:
            left_set = sets.get(left_mask)
            right_set = sets.get(right_mask)
            if left_set is None or right_set is None or not left_set or not right_set:
                # Internally disconnected halves carry no plans
                # (standard connected-subgraph enumeration).
                continue
            if left_deep and not (
                left_mask.bit_count() == 1 or right_mask.bit_count() == 1
            ):
                continue
            predicates = graph.predicates_between(left_mask, right_mask)
            selectivity = cardinality.join_selectivity(
                self.cost_model.schema, self.query, predicates
            )
            # Left-deep trees require a base-table inner; bushy trees
            # combine each unordered split in both operand orders.
            if not left_deep or right_mask.bit_count() == 1:
                self._combine_pair(plan_set, left_set, right_mask,
                                   right_set, predicates, selectivity)
            if not left_deep or left_mask.bit_count() == 1:
                self._combine_pair(plan_set, right_set, left_mask,
                                   left_set, predicates, selectivity)

    def _combine_pair(
        self,
        target: PlanSet,
        outer_set: PlanSet,
        inner_mask: int,
        inner_set: PlanSet,
        predicates,
        selectivity: float,
    ) -> None:
        """Join plans with ``outer`` as left and ``inner`` as right operand.

        Hot loop: for every candidate the cost vector is computed first
        and a :class:`JoinPlan` is only materialized if the target set
        does not already (approximately) dominate it.
        """
        query = self.query
        cost_model = self.cost_model
        if self._timed_out:
            # Timeout fallback: single representative per operand set.
            outer_entry = outer_set.best_weighted(self.weights)
            inner_entry = inner_set.best_weighted(self.weights)
            outer_plans = [outer_entry[1]] if outer_entry else []
            inner_plans = [inner_entry[1]] if inner_entry else []
        else:
            outer_plans = [plan for _, plan in outer_set]
            inner_plans = [plan for _, plan in inner_set]

        if predicates:
            generic_specs = self.plan_space.generic_join_specs
        else:
            # Cartesian product: only nested loops are applicable.
            generic_specs = self._nested_loop_specs

        indices = self._all_indices
        include_rows = self.include_rows
        full_projection = self._full_projection
        join_cost = cost_model.join_cost
        counters = self.counters
        for spec in generic_specs:
            for left_plan in outer_plans:
                left_rows = left_plan.rows
                for right_plan in inner_plans:
                    out_rows = left_rows * right_plan.rows * selectivity
                    cost = join_cost(spec, left_plan, right_plan, out_rows)
                    counters.plans_considered += 1
                    if full_projection:
                        projected = cost
                    else:
                        projected = tuple(cost[i] for i in indices)
                        if include_rows:
                            projected += (out_rows,)
                    if not target.covers(projected):
                        plan = JoinPlan(
                            spec, left_plan, right_plan, out_rows,
                            left_plan.width + right_plan.width,
                            cost, cost[8],
                        )
                        target.force_insert(projected, plan)
                    self._since_check += 1
                    if self._since_check >= self._check_interval:
                        self._since_check = 0
                        self._check_deadline()
                        if self._timed_out:
                            return

        # Index-nested-loop: inner must be a single base table with an
        # index on a join column.
        if predicates and inner_mask.bit_count() == 1:
            inner_alias = next(iter(self.graph.aliases_of(inner_mask)))
            if not self._allow_index_probe(inner_alias):
                return
            probes = self.plan_space.index_probe_inners(
                query, inner_alias, predicates
            )
            for probe in probes:
                probe_rows = probe.rows
                for spec in self.plan_space.index_nl_specs:
                    for left_plan in outer_plans:
                        out_rows = left_plan.rows * probe_rows * selectivity
                        cost = join_cost(spec, left_plan, probe, out_rows)
                        counters.plans_considered += 1
                        if full_projection:
                            projected = cost
                        else:
                            projected = tuple(cost[i] for i in indices)
                            if include_rows:
                                projected += (out_rows,)
                        if not target.covers(projected):
                            plan = JoinPlan(
                                spec, left_plan, probe, out_rows,
                                left_plan.width + probe.width,
                                cost, cost[8],
                            )
                            target.force_insert(projected, plan)
                        self._since_check += 1
                        if self._since_check >= self._check_interval:
                            self._since_check = 0
                            self._check_deadline()
                            if self._timed_out:
                                return

    # ------------------------------------------------------------------
    def _consider(self, target: PlanSet, plan: Plan) -> None:
        """Prune ``target`` with a newly generated plan (leaf path)."""
        counters = self.counters
        counters.plans_considered += 1
        projected = project(plan.cost, self._all_indices)
        if self.include_rows:
            projected += (plan.rows,)
        target.insert(projected, plan)
        self._since_check += 1
        if self._since_check >= self._check_interval:
            self._since_check = 0
            self._check_deadline()

    def _allow_index_probe(self, inner_alias: str) -> bool:
        """Whether the alias may serve as an index-probe inner.

        Subclasses representing virtual (already-committed) operands
        override this — a virtual leaf is an intermediate result, not a
        base table with indexes.
        """
        return True

    def _check_deadline(self) -> None:
        if (
            not self._timed_out
            and self.deadline is not None
            and _time.perf_counter() > self.deadline
        ):
            self._timed_out = True

    @property
    def timed_out(self) -> bool:
        """Whether the deadline was hit during enumeration."""
        return self._timed_out
