"""High-level optimizer facade — the "extended Postgres optimizer".

:class:`MultiObjectiveOptimizer` wires the substrates together (catalog,
cost model, plan space) and executes :class:`OptimizationRequest`s by
dispatching through the pluggable algorithm registry
(:mod:`repro.core.registry`). Like the paper's prototype it optimizes
the blocks of a query with subqueries *separately* (Postgres heuristic
ii) — which, as the paper notes, weakens the formal approximation
guarantee for queries containing subqueries, while rarely mattering in
practice.

The keyword-style :meth:`MultiObjectiveOptimizer.optimize` call is kept
as a thin backwards-compatible shim over :meth:`execute`; new code
should build requests explicitly and submit them through
:class:`repro.core.service.OptimizerService`, which adds plan caching,
batching and metrics on top of this facade.
"""

from __future__ import annotations

import dataclasses
import time as _time
from typing import Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.preferences import Preferences
from repro.core.registry import get_algorithm
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.model import CostModel
from repro.cost.objectives import Objective
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import OptimizerError
from repro.query.query import MultiBlockQuery, Query


def combine_block_costs(
    costs: Sequence[tuple[float, ...]], objectives: tuple[Objective, ...]
) -> tuple[float, ...]:
    """Combine per-block cost vectors into a whole-query vector.

    Blocks execute sequentially, so accumulative objectives (times, IO,
    CPU, disk, energy) add up, occupancy objectives (cores, buffer) take
    the maximum, and tuple loss combines with ``1 - prod(1 - a_i)``.
    """
    if not costs:
        raise OptimizerError("no block costs to combine")
    combined: list[float] = []
    for position, objective in enumerate(objectives):
        values = [cost[position] for cost in costs]
        if objective in (Objective.CORES, Objective.BUFFER_FOOTPRINT):
            combined.append(max(values))
        elif objective is Objective.TUPLE_LOSS:
            surviving = 1.0
            for value in values:
                surviving *= 1.0 - value
            combined.append(1.0 - surviving)
        else:
            combined.append(sum(values))
    return tuple(combined)


class MultiObjectiveOptimizer:
    """Facade over the catalog, cost model and registered algorithms."""

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        cost_model: CostModel | None = None,
    ) -> None:
        self.schema = schema
        self.config = config
        # An injected cost model lets callers swap in calibrated
        # statistics (CostModel(schema, calibration=...)) without
        # touching the facade; by default a fresh catalog-only model is
        # built.
        self.cost_model = (
            cost_model if cost_model is not None
            else CostModel(schema, params)
        )

    # ------------------------------------------------------------------
    def execute(self, request: OptimizationRequest) -> OptimizationResult:
        """Execute one validated request and return its result.

        Results are treated as immutable: single-block queries get an
        updated *copy* carrying the query's name rather than a mutation
        of the block-level result, so results can safely be cached and
        shared.
        """
        spec = get_algorithm(request.algorithm)
        preferences = spec.prepare_preferences(request.preferences)
        config = request.effective_config(self.config)
        start = _time.perf_counter()
        deadline = (
            start + config.timeout_seconds
            if config.timeout_seconds is not None
            else None
        )
        block_results = tuple(
            spec.runner(
                block,
                self.cost_model,
                preferences,
                alpha=request.alpha,
                config=config,
                deadline=deadline,
                strict=request.strict,
            )
            for block in request.query.blocks
        )
        if len(block_results) == 1:
            return dataclasses.replace(
                block_results[0], query_name=request.query.name
            )
        return self._merge_block_results(request.query, block_results, start)

    # ------------------------------------------------------------------
    def optimize(
        self,
        query: MultiBlockQuery | Query,
        preferences: Preferences,
        algorithm: str = "rta",
        alpha: float = 1.5,
        config: OptimizerConfig | None = None,
        strict: bool = False,
    ) -> OptimizationResult:
        """Optimize a query with the chosen algorithm (legacy shim).

        Thin wrapper that packs the arguments into an
        :class:`OptimizationRequest` and calls :meth:`execute`.
        ``alpha`` is the user precision for the approximation schemes
        (``rta``/``ira``) and ignored for the exact algorithms.
        ``selinger`` requires exactly one selected objective. ``strict``
        enables the strict pruning closure that restores the formal
        guarantees for objective subsets that are not closed under the
        cost model's recursive dependencies (DESIGN.md).
        """
        request = OptimizationRequest(
            query=query,
            preferences=preferences,
            algorithm=algorithm,
            alpha=alpha,
            strict=strict,
            config=config,
        )
        return self.execute(request)

    # ------------------------------------------------------------------
    def _merge_block_results(
        self,
        query: MultiBlockQuery,
        block_results: tuple[OptimizationResult, ...],
        start: float,
    ) -> OptimizationResult:
        """Aggregate per-block results into a whole-query result.

        The reported plan and frontier belong to the main block; the
        cost vector combines all blocks so weighted-cost comparisons
        across algorithms stay consistent.
        """
        main = block_results[0]
        phase_totals: dict[str, float] = {}
        for block_result in block_results:
            for phase, spent_ms in block_result.phase_ms.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + spent_ms
        costs = [r.plan_cost for r in block_results if r.plan_cost is not None]
        combined_cost = (
            combine_block_costs(costs, main.preferences.objectives)
            if len(costs) == len(block_results)
            else None
        )
        elapsed_ms = (_time.perf_counter() - start) * 1000.0
        return OptimizationResult(
            algorithm=main.algorithm,
            query_name=query.name,
            preferences=main.preferences,
            plan=main.plan,
            plan_cost=combined_cost,
            frontier=main.frontier,
            optimization_time_ms=elapsed_ms,
            memory_kb=max(r.memory_kb for r in block_results),
            pareto_last_complete=max(
                r.pareto_last_complete for r in block_results
            ),
            plans_considered=sum(r.plans_considered for r in block_results),
            candidates_vectorized=sum(
                r.candidates_vectorized for r in block_results
            ),
            timed_out=any(r.timed_out for r in block_results),
            iterations=max(r.iterations for r in block_results),
            alpha=main.alpha,
            block_results=block_results,
            deadline_hit=any(r.deadline_hit for r in block_results),
            phase_ms=phase_totals,
        )


def __getattr__(name: str):
    if name == "ALGORITHMS":
        raise ImportError(
            "the module-level ALGORITHMS tuple was removed in the "
            "service-oriented API redesign; call "
            "repro.available_algorithms() (repro.core.registry) for the "
            "registered algorithm names, or register custom algorithms "
            "with repro.core.registry.register_algorithm"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
