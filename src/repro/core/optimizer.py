"""High-level optimizer facade — the "extended Postgres optimizer".

:class:`MultiObjectiveOptimizer` wires the substrates together (catalog,
cost model, plan space) and exposes the three MOQO algorithms plus the
single-objective baseline behind one ``optimize()`` call. Like the
paper's prototype it optimizes the blocks of a query with subqueries
*separately* (Postgres heuristic ii) — which, as the paper notes,
weakens the formal approximation guarantee for queries containing
subqueries, while rarely mattering in practice.
"""

from __future__ import annotations

import time as _time
from typing import Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.baselines import idp_moqo, weighted_sum_baseline
from repro.core.exa import exact_moqo
from repro.core.ira import ira
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.rta import rta
from repro.core.selinger import selinger
from repro.cost.model import CostModel
from repro.cost.objectives import Objective
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import OptimizerError
from repro.query.query import MultiBlockQuery, Query, single_block

#: Algorithms selectable via ``optimize(algorithm=...)``. The last two
#: are guarantee-free baselines (see :mod:`repro.core.baselines`).
ALGORITHMS = ("exa", "rta", "ira", "selinger", "wsum", "idp")


def combine_block_costs(
    costs: Sequence[tuple[float, ...]], objectives: tuple[Objective, ...]
) -> tuple[float, ...]:
    """Combine per-block cost vectors into a whole-query vector.

    Blocks execute sequentially, so accumulative objectives (times, IO,
    CPU, disk, energy) add up, occupancy objectives (cores, buffer) take
    the maximum, and tuple loss combines with ``1 - prod(1 - a_i)``.
    """
    if not costs:
        raise OptimizerError("no block costs to combine")
    combined: list[float] = []
    for position, objective in enumerate(objectives):
        values = [cost[position] for cost in costs]
        if objective in (Objective.CORES, Objective.BUFFER_FOOTPRINT):
            combined.append(max(values))
        elif objective is Objective.TUPLE_LOSS:
            surviving = 1.0
            for value in values:
                surviving *= 1.0 - value
            combined.append(1.0 - surviving)
        else:
            combined.append(sum(values))
    return tuple(combined)


class MultiObjectiveOptimizer:
    """Facade over the catalog, cost model and MOQO algorithms."""

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
    ) -> None:
        self.schema = schema
        self.config = config
        self.cost_model = CostModel(schema, params)

    # ------------------------------------------------------------------
    def optimize(
        self,
        query: MultiBlockQuery | Query,
        preferences: Preferences,
        algorithm: str = "rta",
        alpha: float = 1.5,
        config: OptimizerConfig | None = None,
        strict: bool = False,
    ) -> OptimizationResult:
        """Optimize a query with the chosen algorithm.

        ``alpha`` is the user precision for the approximation schemes
        (``rta``/``ira``) and ignored for the exact algorithms.
        ``selinger`` requires exactly one selected objective.
        ``strict`` enables the strict pruning closure that restores the
        formal guarantees for objective subsets that are not closed
        under the cost model's recursive dependencies (DESIGN.md).
        """
        if algorithm not in ALGORITHMS:
            raise OptimizerError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        if isinstance(query, Query):
            query = single_block(query)
        config = config or self.config
        start = _time.perf_counter()
        deadline = (
            start + config.timeout_seconds
            if config.timeout_seconds is not None
            else None
        )
        block_results = tuple(
            self._optimize_block(
                block, preferences, algorithm, alpha, config, deadline,
                strict,
            )
            for block in query.blocks
        )
        if len(block_results) == 1:
            result = block_results[0]
            result.query_name = query.name
            return result
        return self._merge_block_results(query, preferences, block_results, start)

    # ------------------------------------------------------------------
    def _optimize_block(
        self,
        block: Query,
        preferences: Preferences,
        algorithm: str,
        alpha: float,
        config: OptimizerConfig,
        deadline: float | None,
        strict: bool = False,
    ) -> OptimizationResult:
        if algorithm == "exa":
            return exact_moqo(
                block, self.cost_model, preferences, config,
                deadline=deadline, strict=strict,
            )
        if algorithm == "rta":
            return rta(
                block,
                self.cost_model,
                preferences.without_bounds(),
                alpha,
                config,
                deadline=deadline,
                strict=strict,
            )
        if algorithm == "ira":
            return ira(
                block, self.cost_model, preferences, alpha, config,
                deadline=deadline, strict=strict,
            )
        if algorithm == "wsum":
            return weighted_sum_baseline(
                block, self.cost_model, preferences.without_bounds(),
                config, deadline=deadline,
            )
        if algorithm == "idp":
            return idp_moqo(
                block, self.cost_model, preferences.without_bounds(),
                alpha_u=alpha, config=config, deadline=deadline,
            )
        # selinger
        if preferences.num_objectives != 1:
            raise OptimizerError(
                "the selinger baseline optimizes exactly one objective"
            )
        return selinger(
            block,
            self.cost_model,
            preferences.objectives[0],
            config,
            deadline=deadline,
        )

    def _merge_block_results(
        self,
        query: MultiBlockQuery,
        preferences: Preferences,
        block_results: tuple[OptimizationResult, ...],
        start: float,
    ) -> OptimizationResult:
        """Aggregate per-block results into a whole-query result.

        The reported plan and frontier belong to the main block; the
        cost vector combines all blocks so weighted-cost comparisons
        across algorithms stay consistent.
        """
        main = block_results[0]
        costs = [r.plan_cost for r in block_results if r.plan_cost is not None]
        combined_cost = (
            combine_block_costs(costs, main.preferences.objectives)
            if len(costs) == len(block_results)
            else None
        )
        elapsed_ms = (_time.perf_counter() - start) * 1000.0
        return OptimizationResult(
            algorithm=main.algorithm,
            query_name=query.name,
            preferences=main.preferences,
            plan=main.plan,
            plan_cost=combined_cost,
            frontier=main.frontier,
            optimization_time_ms=elapsed_ms,
            memory_kb=max(r.memory_kb for r in block_results),
            pareto_last_complete=max(
                r.pareto_last_complete for r in block_results
            ),
            plans_considered=sum(r.plans_considered for r in block_results),
            timed_out=any(r.timed_out for r in block_results),
            iterations=max(r.iterations for r in block_results),
            alpha=main.alpha,
            block_results=block_results,
        )
