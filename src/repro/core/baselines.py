"""Baseline algorithms without multi-objective guarantees.

Two baselines the paper discusses but does not evaluate, implemented to
quantify what the approximation schemes buy:

* **Weighted-sum scalar pruning** (:func:`weighted_sum_baseline`) — the
  naive reduction of MOQO to single-objective optimization: prune each
  table set down to the plan with minimal *weighted* cost. Example 1 of
  the paper shows why this is unsound: the weighted sum of a plan is
  not monotone in the weighted sums of its sub-plans when objectives
  combine with different functions (max for parallel time, sum for
  energy). The baseline is fast — exactly Selinger-fast — but can
  return plans arbitrarily far from the weighted optimum.

* **Iterative dynamic programming** (:func:`idp_moqo`) — in the spirit
  of Kossmann & Stocker's IDP-1: when a query joins more tables than a
  block size ``k``, run (multi-objective, RTA-pruned) dynamic
  programming over the ``k``-table prefix of the join order, commit to
  the *best weighted* plan for some maximal subset, collapse it into a
  virtual operand, and repeat. Greedy commitment between blocks voids
  the formal guarantee (the committed subplan may be wrong for the
  remainder), but the search stays polynomial in the number of blocks —
  the classic heuristic tradeoff the paper's related-work section
  contrasts its schemes against.
"""

from __future__ import annotations

import time as _time

from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.dp import DPRun, deadline_exceeded, strip_entries
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.pruning import PlanSet, SingleBestPlanSet
from repro.core.result import OptimizationResult
from repro.core.rta import internal_precision
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.cost.vector import project, weighted_cost
from repro.exceptions import OptimizerError
from repro.plans.plan import Plan
from repro.query.join_graph import JoinGraph
from repro.query.query import Query


def weighted_sum_baseline(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
) -> OptimizationResult:
    """Scalar dynamic programming on the weighted cost (unsound).

    Keeps one plan (the weighted minimum) per table set. Fast, but the
    single-objective principle of optimality does not hold for weighted
    sums over objectives with heterogeneous combination functions
    (Example 1), so the result carries no optimality guarantee.
    """
    if preferences.has_bounds:
        raise OptimizerError(
            "the weighted-sum baseline ignores bounds; use the IRA"
        )
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds
    counters = Counters()
    weights = preferences.weights
    run = DPRun(
        query=query,
        cost_model=cost_model,
        config=config,
        indices=preferences.indices,
        weights=weights,
        alpha_internal=1.0,
        plan_set_factory=lambda: SingleBestPlanSet(weights),
        deadline=deadline,
        counters=counters,
    )
    sets = run.run()
    final_set = sets[run.graph.full_mask]
    best = select_best(final_set, preferences)
    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm="wsum",
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=counters.memory_kb,
        pareto_last_complete=counters.pareto_last_complete,
        plans_considered=counters.plans_considered,
        candidates_vectorized=counters.candidates_vectorized,
        timed_out=counters.timed_out,
        alpha=None,
        deadline_hit=counters.timed_out or deadline_exceeded(deadline),
        phase_ms=counters.phase_ms() if config.phase_timers else {},
    )


#: Default block size for iterative dynamic programming.
DEFAULT_IDP_BLOCK_SIZE = 4


class _VirtualPlanLeaf(Plan):
    """A committed subplan wrapped as a leaf for the next IDP round.

    Carries the committed plan's cost/cardinality; ``describe`` and
    ``walk`` delegate so the final plan prints as the real tree.
    """

    __slots__ = ("alias", "inner",)

    def __init__(self, alias: str, inner: Plan) -> None:
        self.alias = alias
        self.inner = inner
        self.rows = inner.rows
        self.width = inner.width
        self.cost = inner.cost
        self.loss = inner.loss

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset((self.alias,))

    def walk(self):
        yield from self.inner.walk()

    def describe(self, indent: int = 0) -> str:
        return self.inner.describe(indent)


def idp_moqo(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    alpha_u: float = 1.5,
    block_size: int = DEFAULT_IDP_BLOCK_SIZE,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
) -> OptimizationResult:
    """Iterative dynamic programming for MOQO (heuristic, no guarantee).

    Runs RTA-pruned DP over subsets of at most ``block_size`` tables,
    greedily commits the best weighted plan for a largest optimized
    subset, replaces it by a virtual leaf, and repeats until one plan
    covers the whole query.
    """
    if block_size < 2:
        raise OptimizerError(f"block size must be >= 2, got {block_size}")
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds

    counters_total = Counters()
    committed: dict[str, Plan] = {}  # virtual alias -> committed plan
    current = query
    rounds = 0
    while True:
        rounds += 1
        run = _BlockedDPRun(
            query=current,
            cost_model=cost_model,
            config=config,
            indices=preferences.indices,
            weights=preferences.weights,
            alpha_internal=internal_precision(
                alpha_u, max(current.num_tables, 1)
            ),
            deadline=deadline,
            counters=Counters(),
            block_size=block_size,
            virtual_leaves=committed,
        )
        sets = run.run()
        counters_total.merge_peak(run.counters)
        full_mask = run.graph.full_mask
        if full_mask in sets and len(sets[full_mask]):
            final_set = strip_entries(sets[full_mask], run.projection_width)
            best = select_best(final_set, preferences)
            break
        # Commit the best weighted plan of a largest optimized subset.
        best_mask, best_plan = _best_committable(sets, preferences)
        virtual_alias = f"__idp{rounds}"
        committed[virtual_alias] = _VirtualPlanLeaf(virtual_alias, best_plan)
        current = _collapse(
            current, run.graph, best_mask, virtual_alias, cost_model
        )

    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm="idp",
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=counters_total.memory_kb,
        pareto_last_complete=counters_total.pareto_last_complete,
        plans_considered=counters_total.plans_considered,
        candidates_vectorized=counters_total.candidates_vectorized,
        timed_out=counters_total.timed_out,
        iterations=rounds,
        alpha=None,
        deadline_hit=counters_total.timed_out or deadline_exceeded(deadline),
        phase_ms=(
            counters_total.phase_ms() if config.phase_timers else {}
        ),
    )


class _BlockedDPRun(DPRun):
    """DP restricted to subsets of at most ``block_size`` tables,
    with virtual leaves standing in for committed subplans."""

    def __init__(self, *args, block_size: int, virtual_leaves: dict,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._block_size = block_size
        self._virtual_leaves = virtual_leaves

    def run(self):
        graph = self.graph
        masks = [
            mask
            for mask in graph.connected_subsets()
            if mask.bit_count() <= self._block_size
        ]
        self.counters.table_sets_total = len(masks)
        sets = {}
        for mask in masks:
            if mask.bit_count() == 1:
                plan_set = self._build_singleton(mask)
            else:
                plan_set = self._build_composite(mask, sets)
            sets[mask] = plan_set
            self.counters.complete_table_set(mask, len(plan_set))
        self.counters.timed_out = self._timed_out
        return sets

    def _build_singleton(self, mask):
        alias = next(iter(self.graph.aliases_of(mask)))
        leaf = self._virtual_leaves.get(alias)
        if leaf is None:
            return super()._build_singleton(mask)
        plan_set = self._new_set()
        self._consider(plan_set, leaf)
        return plan_set

    def _allow_index_probe(self, inner_alias: str) -> bool:
        return inner_alias not in self._virtual_leaves


def _best_committable(sets, preferences):
    """Largest optimized subset's best weighted plan."""
    best_mask = None
    best_plan = None
    best_value = float("inf")
    best_cardinality = 0
    for mask, plan_set in sets.items():
        cardinality = mask.bit_count()
        if cardinality < best_cardinality or not len(plan_set):
            continue
        entry = plan_set.best_weighted(preferences.weights)
        if entry is None:
            continue
        value = weighted_cost(entry[0], preferences.weights)
        if cardinality > best_cardinality or value < best_value:
            best_cardinality = cardinality
            best_mask = mask
            best_plan = entry[1]
            best_value = value
    if best_plan is None:
        raise OptimizerError("IDP found no committable subplan")
    return best_mask, best_plan


def _collapse(query: Query, graph: JoinGraph, mask: int,
              virtual_alias: str, cost_model: CostModel) -> Query:
    """Replace the aliases in ``mask`` by one virtual table reference.

    Join predicates between the collapsed set and the rest are rewired
    to the virtual alias with their selectivity materialized (estimated
    against the *original* query), so the rewritten predicate estimates
    exactly like the one it replaces.
    """
    from repro.cost.cardinality import join_predicate_selectivity
    from repro.query.predicate import JoinPredicate, TableRef

    collapsed = graph.aliases_of(mask)
    remaining_refs = tuple(
        ref for ref in query.table_refs if ref.alias not in collapsed
    )
    # The virtual leaf's statistics come from the committed plan; the
    # table name is irrelevant for costing (the leaf carries its own
    # rows/width/cost), but the query model requires one.
    refs = remaining_refs + (
        TableRef(virtual_alias, query.table_refs[0].table_name),
    )
    filters = tuple(f for f in query.filters if f.alias not in collapsed)
    joins = []
    for join in query.joins:
        inside = join.aliases & collapsed
        if not inside:
            joins.append(join)
        elif len(inside) == 1:
            inside_alias = next(iter(inside))
            outside_alias, outside_column = join.other_side(inside_alias)
            selectivity = join_predicate_selectivity(
                cost_model.schema, query, join
            )
            joins.append(
                JoinPredicate(
                    left_alias=outside_alias,
                    left_column=outside_column,
                    right_alias=virtual_alias,
                    right_column=join.side(inside_alias)[1],
                    selectivity=selectivity,
                )
            )
        # joins fully inside the collapsed set disappear.
    return Query(
        name=f"{query.name}+{virtual_alias}",
        table_refs=refs,
        filters=filters,
        joins=tuple(joins),
    )
