"""Counters collected during optimizer runs.

Two layers of metrics live here:

* :class:`Counters` — per-run (per query block) counters the benchmark
  harness reports, matching the paper's figures: optimization time,
  allocated memory, the number of Pareto plans for the last table set
  that was treated completely, and whether a timeout occurred. Memory
  is accounted analytically (stored plans x bytes per plan), matching
  the paper's observation that "the space consumption of the EXA
  directly relates to the number of Pareto plans".
* :class:`ServiceMetrics` / :class:`RequestMetrics` — per-service
  aggregates fed by :class:`repro.core.service.OptimizerService`: total
  requests, plan-cache hits/misses, per-algorithm request counts and
  cumulative optimization time. Metrics hooks registered on the service
  receive one :class:`RequestMetrics` record per completed request.
  The serving layer (:mod:`repro.serving`) threads its front-end
  counters into the same aggregate — ``coalesce_hits`` (requests that
  awaited an identical in-flight optimization instead of running their
  own) and ``sheds`` (requests refused by admission control) — so one
  snapshot covers a server end to end.
* :class:`LatencyHistogram` — thread-safe latency sample sink with
  percentile queries (p50/p99), used by the serving layer for
  end-to-end request latencies.
"""

from __future__ import annotations

import threading
from bisect import insort
from dataclasses import dataclass, field

from repro.plans.plan import PLAN_BYTES

#: Fixed per-run overhead charged to every optimizer invocation (KB),
#: standing in for the allocator baseline of the paper's measurements.
BASE_MEMORY_KB = 64.0


@dataclass
class Counters:
    """Mutable metrics for one optimizer run (one query block)."""

    plans_considered: int = 0
    #: How many of the considered candidates went through the batched
    #: (vectorized) enumeration path. Incremented once per candidate
    #: *row* of a block, never once per block, so it is directly
    #: comparable to ``plans_considered`` — their ratio is the
    #: batch-path hit rate reported by ``RequestMetrics``.
    candidates_vectorized: int = 0
    #: Phase timers (milliseconds), filled by the DP loop when
    #: ``OptimizerConfig.phase_timers`` is on. The four phases are
    #: *disjoint*: ``kernel`` is cost-model block evaluation,
    #: ``pruning`` is dominance filtering (block accept + projection),
    #: ``materialize`` is survivor plan construction, and
    #: ``enumeration`` is everything else in the DP wall time (subset
    #: iteration, partitioning, the scalar loop) — so their sum tracks
    #: the run's elapsed time.
    enumeration_ms: float = 0.0
    kernel_ms: float = 0.0
    pruning_ms: float = 0.0
    materialize_ms: float = 0.0
    plans_stored_peak: int = 0
    pareto_last_complete: int = 0
    table_sets_completed: int = 0
    table_sets_total: int = 0
    timed_out: bool = False
    _stored_now: int = 0
    _set_sizes: dict[int, int] = field(default_factory=dict)

    def record_set_size(self, mask: int, size: int) -> None:
        """Update the stored-plan total after a table set changed size."""
        previous = self._set_sizes.get(mask, 0)
        self._set_sizes[mask] = size
        self._stored_now += size - previous
        if self._stored_now > self.plans_stored_peak:
            self.plans_stored_peak = self._stored_now

    def complete_table_set(self, mask: int, size: int,
                           fallback: bool = False) -> None:
        """Mark a table set as fully treated (for the Pareto-count metric).

        ``fallback`` marks sets built after a timeout (single-plan mode);
        they do not count as "treated completely" for the paper's
        Pareto-plan metric, which reports the last table set completed
        *before* the timeout occurred.
        """
        self.record_set_size(mask, size)
        self.table_sets_completed += 1
        if not fallback:
            self.pareto_last_complete = size

    @property
    def plans_stored(self) -> int:
        """Number of currently stored plans (over all table sets)."""
        return self._stored_now

    @property
    def memory_kb(self) -> float:
        """Analytic memory estimate for the run (kilobytes)."""
        return BASE_MEMORY_KB + self.plans_stored_peak * PLAN_BYTES / 1024.0

    def phase_ms(self) -> dict[str, float]:
        """Phase-timer totals keyed by canonical phase name.

        Keys match :data:`repro.obs.prom.CANONICAL_PHASES` and the
        ``repro trace`` breakdown; all zeros when phase timing is off.
        """
        return {
            "enumerate": self.enumeration_ms,
            "kernel": self.kernel_ms,
            "prune": self.pruning_ms,
            "materialize": self.materialize_ms,
        }

    def merge_peak(self, other: "Counters") -> None:
        """Fold another run's peaks into this one (multi-block queries)."""
        self.plans_considered += other.plans_considered
        self.candidates_vectorized += other.candidates_vectorized
        self.enumeration_ms += other.enumeration_ms
        self.kernel_ms += other.kernel_ms
        self.pruning_ms += other.pruning_ms
        self.materialize_ms += other.materialize_ms
        self.plans_stored_peak = max(
            self.plans_stored_peak, other.plans_stored_peak
        )
        self.pareto_last_complete = max(
            self.pareto_last_complete, other.pareto_last_complete
        )
        self.table_sets_completed += other.table_sets_completed
        self.table_sets_total += other.table_sets_total
        self.timed_out = self.timed_out or other.timed_out


# ----------------------------------------------------------------------
# Latency histogram (serving layer)
# ----------------------------------------------------------------------
class LatencyHistogram:
    """Thread-safe latency sample sink with percentile queries.

    Samples are kept sorted as they arrive (insertion is O(n) worst
    case but effectively cheap at serving rates), so percentile reads
    are O(1) — the read path is a metrics endpoint, hit far more often
    under load than makes re-sorting attractive. ``max_samples`` bounds
    memory: once full, every second incoming sample is dropped
    uniformly at random-ish (deterministic decimation by counter), which
    keeps tail percentiles meaningful without unbounded growth.
    """

    def __init__(self, max_samples: int = 65536) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: list[float] = []  # guarded-by: _lock
        self._observed = 0  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock
        self._total = 0.0  # guarded-by: _lock
        self._max = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        """Record one latency sample (milliseconds)."""
        with self._lock:
            self._observed += 1
            self._total += value_ms
            if value_ms > self._max:
                self._max = value_ms
            if len(self._samples) >= self.max_samples:
                # Deterministic decimation: drop every other arrival.
                self._dropped += 1
                if self._dropped % 2 == 1:
                    return
                self._samples.pop(len(self._samples) // 2)
            insort(self._samples, value_ms)

    @property
    def count(self) -> int:
        """Number of samples observed (including decimated ones)."""
        with self._lock:
            return self._observed

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._observed if self._observed else 0.0

    def _percentile_locked(self, fraction: float) -> float:
        if not self._samples:
            return 0.0
        rank = min(
            len(self._samples) - 1,
            max(0, int(round(fraction * (len(self._samples) - 1)))),
        )
        return self._samples[rank]

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            return self._percentile_locked(fraction)

    def snapshot(self) -> dict[str, float]:
        """Point-in-time percentile summary (safe to serialize).

        Everything — count, mean, max, *and* the percentiles — is read
        under one lock acquisition, so concurrent ``observe()`` calls
        can never produce a snapshot whose count disagrees with its
        percentiles (the torn-read hazard of calling :meth:`percentile`
        separately per quantile).
        """
        with self._lock:
            count = self._observed
            return {
                "count": float(count),
                "mean_ms": self._total / count if count else 0.0,
                "p50_ms": self._percentile_locked(0.50),
                "p95_ms": self._percentile_locked(0.95),
                "p99_ms": self._percentile_locked(0.99),
                "max_ms": self._max,
            }


# ----------------------------------------------------------------------
# Service-level metrics (OptimizerService)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestMetrics:
    """Immutable per-request record handed to service metrics hooks.

    ``worker`` identifies the process that executed the request: ``""``
    for the in-process path, the worker process name (e.g.
    ``SpawnProcess-2``) when the request ran on the parallel backend.
    ``rerouted`` marks requests the deadline scheduler redirected to
    the anytime algorithm; their results must not be cached under the
    original request's fingerprint.

    ``phase_ms`` breaks the optimizer's elapsed time into the disjoint
    enumerate/kernel/prune/materialize phases (see
    :meth:`Counters.phase_ms`); empty for cache hits or when phase
    timing is disabled. It is excluded from equality so the generated
    ``__hash__`` of this frozen dataclass keeps working.
    """

    fingerprint: str
    query_name: str
    algorithm: str
    tags: tuple[str, ...]
    cache_hit: bool
    elapsed_ms: float
    timed_out: bool
    deadline_hit: bool = False
    worker: str = ""
    rerouted: bool = False
    #: The request exhausted its retry budget and was answered by the
    #: in-process heuristic fallback plan (see ``OptimizerService``);
    #: degraded results are never cached.
    degraded: bool = False
    plans_considered: int = 0
    candidates_vectorized: int = 0
    phase_ms: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def vectorized_fraction(self) -> float:
        """Share of candidates that took the batched enumeration path.

        1.0 means every candidate was costed through the block kernels;
        0.0 means the scalar loop handled everything (flag off, timeout
        fallback, or a non-vectorizable pruning structure). Cache hits
        report 0 candidates either way.
        """
        if self.plans_considered <= 0:
            return 0.0
        return self.candidates_vectorized / self.plans_considered


@dataclass
class ServiceMetrics:
    """Thread-safe aggregate counters for one :class:`OptimizerService`.

    ``cache_hits``/``cache_misses`` implement the plan-cache hit counter
    the batch API's acceptance test observes; ``by_algorithm`` counts
    executed (non-cached) requests per algorithm name.

    ``coalesce_hits`` and ``sheds`` are fed by the serving front end
    (:mod:`repro.serving`): coalesced requests never reach
    :meth:`record` (they await another request's optimization), and
    shed requests are refused before a request object even executes —
    both are counted here so one aggregate describes the whole server.
    """

    requests: int = 0  # guarded-by: _lock
    cache_hits: int = 0  # guarded-by: _lock
    cache_misses: int = 0  # guarded-by: _lock
    timeouts: int = 0  # guarded-by: _lock
    deadline_hits: int = 0  # guarded-by: _lock
    coalesce_hits: int = 0  # guarded-by: _lock
    sheds: int = 0  # guarded-by: _lock
    # Resilience counters (see repro.resilience): worker_failures counts
    # observed infrastructure faults, respawns counts pool rebuilds,
    # retries counts re-dispatches/backoff retries, breaker_trips and
    # breaker_recoveries track the degradation ladder, and degraded
    # counts requests answered by the heuristic fallback plan.
    worker_failures: int = 0  # guarded-by: _lock
    respawns: int = 0  # guarded-by: _lock
    retries: int = 0  # guarded-by: _lock
    breaker_trips: int = 0  # guarded-by: _lock
    breaker_recoveries: int = 0  # guarded-by: _lock
    degraded: int = 0  # guarded-by: _lock
    total_optimization_ms: float = 0.0  # guarded-by: _lock
    by_algorithm: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    by_worker: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    phase_ms: dict[str, float] = field(default_factory=dict)  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, metrics: RequestMetrics) -> None:
        """Fold one completed request into the aggregates."""
        with self._lock:
            self.requests += 1
            if metrics.cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                self.total_optimization_ms += metrics.elapsed_ms
                self.by_algorithm[metrics.algorithm] = (
                    self.by_algorithm.get(metrics.algorithm, 0) + 1
                )
                for phase, spent_ms in metrics.phase_ms.items():
                    self.phase_ms[phase] = (
                        self.phase_ms.get(phase, 0.0) + spent_ms
                    )
            if metrics.timed_out:
                self.timeouts += 1
            if metrics.deadline_hit:
                self.deadline_hits += 1
            if metrics.degraded:
                self.degraded += 1
            if metrics.worker:
                self.by_worker[metrics.worker] = (
                    self.by_worker.get(metrics.worker, 0) + 1
                )

    def record_resilience(self, event: str) -> None:
        """Count one recovery event (pool/service supervision).

        ``event`` is one of ``worker_failure``, ``respawn``, ``retry``
        (pool re-dispatches and service backoff retries both count
        here), ``breaker_trip``, ``breaker_recovery``, ``degraded``.
        Unknown events are ignored — the emitting layers may grow
        event kinds faster than every consumer updates.
        """
        with self._lock:
            if event == "worker_failure":
                self.worker_failures += 1
            elif event == "respawn":
                self.respawns += 1
            elif event in ("retry", "redispatch"):
                self.retries += 1
            elif event == "breaker_trip":
                self.breaker_trips += 1
            elif event == "breaker_recovery":
                self.breaker_recoveries += 1
            elif event == "degraded":
                self.degraded += 1

    def record_coalesce_hit(self) -> None:
        """Count one request served by awaiting an in-flight twin."""
        with self._lock:
            self.coalesce_hits += 1

    def record_shed(self) -> None:
        """Count one request refused by serving admission control."""
        with self._lock:
            self.sheds += 1

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit rate over all requests (0 when none served).

        Takes the lock so the ratio is computed from one coherent
        (hits, requests) pair; a torn read could report a rate > 1.
        """
        with self._lock:
            return self.cache_hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, object]:
        """Point-in-time copy of the counters (safe to serialize).

        The hit rate is recomputed inline from the locked reads rather
        than via :attr:`hit_rate` — the property acquires the
        (non-reentrant) lock itself, and the inline form also keeps the
        rate consistent with the counters in the same snapshot.
        """
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "timeouts": self.timeouts,
                "deadline_hits": self.deadline_hits,
                "coalesce_hits": self.coalesce_hits,
                "sheds": self.sheds,
                "worker_failures": self.worker_failures,
                "respawns": self.respawns,
                "retries": self.retries,
                "breaker_trips": self.breaker_trips,
                "breaker_recoveries": self.breaker_recoveries,
                "degraded": self.degraded,
                "total_optimization_ms": self.total_optimization_ms,
                "by_algorithm": dict(self.by_algorithm),
                "by_worker": dict(self.by_worker),
                "phase_ms": dict(self.phase_ms),
                "hit_rate": (
                    self.cache_hits / self.requests if self.requests else 0.0
                ),
            }
