"""EXA — the exact multi-objective algorithm of Ganguly et al. (Algorithm 1).

A generalization of Selinger-style dynamic programming: the pruning
metric is Pareto dominance over the selected objectives instead of a
single scalar, so each table set stores a full Pareto plan set. The
final plan is selected from the Pareto set of the complete table set,
considering weights and bounds.

The paper's experimental finding (Section 5) is that this is
prohibitively expensive for more than a few objectives — the number of
Pareto plans per table set grows with the search-space size, far beyond
the ``2^l`` bound assumed in the original publication.
"""

from __future__ import annotations

import time as _time

from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.dp import DPRun, deadline_exceeded, strict_closure, strip_entries
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.query.query import Query


def exact_moqo(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
    strict: bool = False,
) -> OptimizationResult:
    """Optimize one query block exactly (1-approximate solution).

    ``deadline`` (a ``time.perf_counter`` instant) overrides the
    config-derived timeout; the facade uses it to share one deadline
    across the blocks of a multi-block query.

    ``strict`` enables the strict pruning closure (DESIGN.md): the
    paper's plain cost-dominance pruning can discard plans whose lower
    output cardinality would have paid off higher up the plan tree once
    sampling makes cardinality plan-dependent; strict mode adds the
    dependency dimensions to the pruning key, restoring the optimality
    guarantee for arbitrary objective subsets at higher cost.
    """
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds
    counters = Counters()
    run = DPRun(
        query=query,
        cost_model=cost_model,
        config=config,
        indices=preferences.indices,
        weights=preferences.weights,
        alpha_internal=1.0,
        deadline=deadline,
        counters=counters,
        extra_indices=strict_closure(preferences.indices) if strict else (),
        include_rows=strict,
    )
    sets = run.run()
    full_mask = run.graph.full_mask
    final_set = strip_entries(sets[full_mask], run.projection_width)
    best = select_best(final_set, preferences)
    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm="exa",
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=counters.memory_kb,
        pareto_last_complete=counters.pareto_last_complete,
        plans_considered=counters.plans_considered,
        candidates_vectorized=counters.candidates_vectorized,
        timed_out=counters.timed_out,
        alpha=1.0,
        deadline_hit=counters.timed_out or deadline_exceeded(deadline),
        phase_ms=counters.phase_ms() if config.phase_timers else {},
    )
