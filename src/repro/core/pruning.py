"""Plan-set maintenance with (approximate) dominance pruning.

``PlanSet`` implements the ``Prune`` procedure shared by Algorithm 1
(EXA) and Algorithm 2 (RTA):

* a new plan is **rejected** if an existing plan (approximately,
  with internal precision alpha) dominates its cost vector;
* on insertion, existing plans **strictly dominated** by the new plan
  are discarded (always with exact dominance — the paper warns that
  discarding approximately dominated plans would let stored vectors
  drift arbitrarily far from the true frontier; that variant is provided
  as :class:`AggressivePlanSet` for the ablation study).

``SingleBestPlanSet`` keeps only the best weighted plan — the behaviour
the paper's implementation switches to after a timeout ("finishes
quickly by only generating one plan for all table sets that have not
been treated so far"), and also exactly Selinger-style single-objective
pruning.

Performance: coverage checks run once per *candidate* plan (millions per
query) against sets that can hold thousands of entries, so the cost
vectors are mirrored in a capacity-doubling numpy matrix and coverage /
discard are evaluated as vectorized comparisons. Small sets use a plain
Python loop (numpy call overhead dominates below ~16 entries).

Block operations (vectorized enumeration): the batched enumerator of
:mod:`repro.core.dp` tests whole candidate blocks at once via
:meth:`PlanSet.block_accept` — a matrix-vs-matrix coverage check against
the stored entries (:meth:`PlanSet.covers_many`, with the same
alpha/exact-suffix thresholds as :meth:`PlanSet.covers`) followed by an
intra-block sweep that prunes candidates against earlier *accepted*
candidates in deterministic enumeration order. **Determinism contract:**
because insertion discards use *exact* dominance, a discarded entry is
always elementwise-covered by its discarder, so removing it can never
un-cover a later candidate; the accept decision therefore depends only
on the entries at block start plus the earlier accepted candidates, and
``block_accept`` + ordered replay of :meth:`PlanSet.force_insert` is
bit-for-bit identical to the scalar per-candidate loop.
:class:`AggressivePlanSet` discards *approximately* dominated entries,
which breaks that argument — it opts out via ``vectorizable = False``
and always takes the scalar path.

``repro lint`` rule REP001 statically enforces this module's side of
the contract: no ambient entropy (unseeded RNG, clock reads, unordered
set iteration) may influence which plans are kept.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.cost.vector import approx_dominates, dominates, weighted_cost
from repro.plans.plan import Plan, PlanBlock

CostTuple = tuple[float, ...]
Entry = tuple[CostTuple, Plan]

#: Below this size, pure-Python scans beat numpy call overhead.
_SMALL_SET = 16

#: Initial capacity of the numpy cost matrix.
_INITIAL_CAPACITY = 32

#: Element budget per broadcast comparison in covers_many (bounds the
#: temporary bool array to a few MB regardless of block size).
_BLOCK_CMP_BUDGET = 1 << 22


class PlanSet:
    """Set of cost-incomparable plans for one table set.

    ``exact_suffix`` marks how many trailing dimensions of the stored
    tuples are compared *exactly* even when ``alpha > 1``. Strict-mode
    pruning (see DESIGN.md) appends the plan's output cardinality as
    such a dimension: a plan may then only prune another if it produces
    no more rows, which is what makes the near-optimality argument
    sound when sampling makes cardinality plan-dependent.
    """

    __slots__ = ("alpha", "entries", "exact_suffix", "_costs", "_size",
                 "_block")

    #: Whether block_accept() is bit-for-bit equivalent to the scalar
    #: insert loop (see the module docstring's determinism contract).
    vectorizable = True

    def __init__(self, alpha: float = 1.0, exact_suffix: int = 0) -> None:
        if alpha < 1.0:
            raise ValueError(f"internal precision must be >= 1, got {alpha}")
        if exact_suffix < 0:
            raise ValueError("exact_suffix must be >= 0")
        self.alpha = alpha
        self.exact_suffix = exact_suffix
        self.entries: list[Entry] = []
        self._costs: np.ndarray | None = None
        self._size = 0
        self._block: PlanBlock | None = None

    # ------------------------------------------------------------------
    # Pruning protocol
    # ------------------------------------------------------------------
    def insert(self, cost: CostTuple, plan: Plan) -> bool:
        """Prune the set with a new plan; returns True if it was kept."""
        if self.covers(cost):
            return False
        self.force_insert(cost, plan)
        return True

    def covers(self, cost: CostTuple) -> bool:
        """Whether an existing plan (approximately) dominates ``cost``.

        Hot-loop pre-check: candidates whose cost is covered can be
        discarded before a plan object is even constructed.
        """
        size = self._size
        if size == 0:
            return False
        alpha = self.alpha
        threshold = self._threshold(cost, alpha)
        if size <= _SMALL_SET:
            for existing_cost, _ in self.entries:
                if dominates(existing_cost, threshold):
                    return True
            return False
        matrix = self._costs[:size]
        return bool((matrix <= threshold).all(axis=1).any())

    def _threshold(self, cost: CostTuple, alpha: float) -> CostTuple:
        """Per-dimension acceptance threshold for the coverage check."""
        if alpha == 1.0:
            return cost
        if self.exact_suffix == 0:
            return tuple(c * alpha for c in cost)
        scaled = len(cost) - self.exact_suffix
        return tuple(
            c * alpha if i < scaled else c for i, c in enumerate(cost)
        )

    def force_insert(self, cost: CostTuple, plan: Plan) -> None:
        """Insert without the coverage check (caller ran ``covers``)."""
        self._discard_dominated(cost)
        self._append(cost, plan)

    # ------------------------------------------------------------------
    # Block operations (vectorized enumeration)
    # ------------------------------------------------------------------
    def covers_many(self, candidates: np.ndarray) -> np.ndarray:
        """Keep mask over a candidate cost matrix vs the stored entries.

        ``candidates`` is ``(k, width)`` in enumeration order; the
        result is ``True`` where **no** stored entry (approximately,
        with the set's alpha and exact-suffix thresholds) dominates the
        row — the batched equivalent of ``not covers(row)`` for every
        row, against the *current* entries only (candidates are not
        compared to each other; see :meth:`block_accept`).
        """
        return self._not_covered(candidates, self._block_thresholds(candidates))

    def block_accept(self, candidates: np.ndarray) -> np.ndarray:
        """Accept mask for an ordered candidate block (does not mutate).

        Phase 1 masks rows covered by the stored entries
        (:meth:`covers_many`); phase 2 sweeps the survivors in
        enumeration order, dropping any candidate approximately
        dominated by an earlier *accepted* candidate of the same block.
        Replaying :meth:`force_insert` for the accepted rows in order
        reproduces the scalar insert loop bit for bit (module
        docstring: determinism contract).
        """
        thresholds = self._block_thresholds(candidates)
        keep = self._not_covered(candidates, thresholds)
        survivors = np.nonzero(keep)[0]
        if len(survivors) <= 1:
            return keep
        width = candidates.shape[1]
        accepted = np.empty((len(survivors), width))
        count = 0
        for position in survivors:
            if count and bool(
                (accepted[:count] <= thresholds[position]).all(axis=1).any()
            ):
                keep[position] = False
                continue
            accepted[count] = candidates[position]
            count += 1
        return keep

    def plan_block(self) -> PlanBlock:
        """Cached columnar mirror of the stored plans (operand view).

        Built lazily the first time the set is used as a join operand —
        by then the bottom-up DP has finished mutating it — and
        invalidated on any later mutation.
        """
        if self._block is None:
            self._block = PlanBlock([plan for _, plan in self.entries])
        return self._block

    def _block_thresholds(self, candidates: np.ndarray) -> np.ndarray:
        """Batched :meth:`_threshold` (per-row acceptance thresholds)."""
        alpha = self.alpha
        if alpha == 1.0:
            return candidates
        if self.exact_suffix == 0:
            return candidates * alpha
        scaled = candidates.shape[1] - self.exact_suffix
        thresholds = candidates.copy()
        thresholds[:, :scaled] = candidates[:, :scaled] * alpha
        return thresholds

    def _not_covered(
        self, candidates: np.ndarray, thresholds: np.ndarray
    ) -> np.ndarray:
        count = len(candidates)
        size = self._size
        keep = np.ones(count, dtype=bool)
        if size == 0 or count == 0:
            return keep
        matrix = self._costs[:size]
        width = candidates.shape[1]
        chunk = max(1, _BLOCK_CMP_BUDGET // (size * width))
        for start in range(0, count, chunk):
            part = thresholds[start:start + chunk]
            covered = (
                (matrix[None, :, :] <= part[:, None, :])
                .all(axis=2)
                .any(axis=1)
            )
            keep[start:start + chunk] = ~covered
        return keep

    # ------------------------------------------------------------------
    # Internal storage
    # ------------------------------------------------------------------
    def _append(self, cost: CostTuple, plan: Plan) -> None:
        self.entries.append((cost, plan))
        self._block = None
        size = self._size
        if self._costs is None:
            self._costs = np.empty((_INITIAL_CAPACITY, len(cost)))
        elif size == self._costs.shape[0]:
            grown = np.empty((size * 2, self._costs.shape[1]))
            grown[:size] = self._costs
            self._costs = grown
        self._costs[size] = cost
        self._size = size + 1

    def _rebuild(self, keep_mask: np.ndarray) -> None:
        """Compact storage to the entries selected by ``keep_mask``."""
        kept_indices = np.nonzero(keep_mask)[0]
        self.entries = [self.entries[i] for i in kept_indices]
        self._costs[: len(kept_indices)] = self._costs[kept_indices]
        self._size = len(kept_indices)
        self._block = None

    def _discard_dominated(self, cost: CostTuple) -> None:
        """Drop stored plans the new cost vector dominates (exact)."""
        size = self._size
        if size == 0:
            return
        if size <= _SMALL_SET:
            kept = [
                entry for entry in self.entries if not dominates(cost, entry[0])
            ]
            if len(kept) != size:
                self.entries = kept
                for position, entry in enumerate(kept):
                    self._costs[position] = entry[0]
                self._size = len(kept)
                self._block = None
            return
        dominated = (self._costs[:size] >= cost).all(axis=1)
        if dominated.any():
            self._rebuild(~dominated)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.entries)

    @property
    def costs(self) -> list[CostTuple]:
        """Stored cost vectors."""
        return [cost for cost, _ in self.entries]

    def best_weighted(self, weights: Sequence[float]) -> Entry | None:
        """Entry minimizing the weighted cost, or None if empty."""
        best: Entry | None = None
        best_value = float("inf")
        for entry in self.entries:
            value = weighted_cost(entry[0], weights)
            if value < best_value:
                best_value = value
                best = entry
        return best


class AggressivePlanSet(PlanSet):
    """Ablation variant: also *discards* approximately dominated plans.

    Section 6.2 explains why this destroys the near-optimality
    guarantee: stored vectors can drift from the real Pareto frontier by
    an unbounded factor as insertions accumulate. Kept for the ablation
    benchmark; never used by RTA/IRA.
    """

    __slots__ = ()

    #: Approximate-dominance discards can remove an entry that is *not*
    #: elementwise-covered by its discarder, so mid-block coverage
    #: outcomes depend on discard timing — the block determinism
    #: contract does not hold and this variant always runs scalar.
    vectorizable = False

    def _discard_dominated(self, cost: CostTuple) -> None:
        size = self._size
        if size == 0:
            return
        alpha = self.alpha
        if size <= _SMALL_SET:
            kept = [
                entry
                for entry in self.entries
                if not approx_dominates(cost, entry[0], alpha)
            ]
            if len(kept) != size:
                self.entries = kept
                for position, entry in enumerate(kept):
                    self._costs[position] = entry[0]
                self._size = len(kept)
                self._block = None
            return
        dominated = (self._costs[:size] * alpha >= cost).all(axis=1)
        if dominated.any():
            self._rebuild(~dominated)


class SingleBestPlanSet(PlanSet):
    """Keeps only the plan with minimal weighted cost.

    Used as the timeout fallback and for single-objective (Selinger
    style) optimization when only the weighted optimum is needed.
    """

    __slots__ = ("weights", "_best_value")

    def __init__(self, weights: tuple[float, ...]) -> None:
        super().__init__(alpha=1.0)
        self.weights = weights
        self._best_value = float("inf")

    def insert(self, cost: CostTuple, plan: Plan) -> bool:
        value = weighted_cost(cost, self.weights)
        if value < self._best_value:
            self._best_value = value
            self.entries = [(cost, plan)]
            self._size = 1
            self._block = None
            if self._costs is None:
                self._costs = np.empty((1, len(cost)))
            self._costs[0] = cost
            return True
        return False

    def covers(self, cost: CostTuple) -> bool:
        return weighted_cost(cost, self.weights) >= self._best_value

    def force_insert(self, cost: CostTuple, plan: Plan) -> None:
        self.insert(cost, plan)

    def block_accept(self, candidates: np.ndarray) -> np.ndarray:
        """Accept exactly the candidates that improve the running best.

        The scalar loop accepts a candidate iff its weighted cost is
        strictly below the best seen so far (initial best included), so
        the batch equivalent is a strict comparison against the running
        prefix minimum. The weighted sum is accumulated dimension by
        dimension in the same order as
        :func:`repro.cost.vector.weighted_cost` to keep the values (and
        hence the strict-inequality decisions) bit-identical.
        """
        width = candidates.shape[1]
        weighted = np.zeros(len(candidates))
        for dimension, weight in zip(range(width), self.weights):
            weighted = weighted + candidates[:, dimension] * weight
        running_best = np.minimum.accumulate(
            np.concatenate(([self._best_value], weighted))
        )[:-1]
        return weighted < running_best
