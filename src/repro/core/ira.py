"""IRA — the iterative-refinement algorithm (Algorithm 3, Section 7).

An approximation scheme for *bounded-weighted* MOQO. An approximate
Pareto set does not necessarily contain a near-optimal plan once bounds
are present (Figure 8), so the IRA iterates: each iteration generates an
``alpha``-approximate Pareto set (via the RTA machinery) with precision

    alpha(i) = alpha_U ** (2 ** (-i / (3l - 3)))

and stops once the certified stopping condition holds: no generated plan
both respects the bounds relaxed by factor ``alpha`` and has weighted
cost below ``C_W(p_opt) * alpha / alpha_U``. The refinement policy makes
per-iteration time roughly double, so redundant work across iterations
is a vanishing fraction of the total (Theorem 7 and Section 7.2).
"""

from __future__ import annotations

import time as _time
from typing import Callable

from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.dp import DPRun, deadline_exceeded, strict_closure, strip_entries
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.rta import internal_precision
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.cost.vector import respects_relaxed_bounds, weighted_cost
from repro.exceptions import InvalidPrecisionError
from repro.query.query import Query

#: Precisions below 1 + EPSILON run an exact final iteration.
_EXACT_THRESHOLD = 1e-9

#: Hard cap on iterations (Theorem 8 guarantees termination; this guards
#: against pathological floating-point stalls).
DEFAULT_MAX_ITERATIONS = 64


def iteration_precision(alpha_u: float, iteration: int, num_objectives: int) -> float:
    """Precision used in the given (1-based) iteration.

    The exponent denominator ``3l - 3`` vanishes for a single objective;
    it is clamped to 1 (a single-objective bounded instance is degenerate
    but supported).
    """
    denominator = max(3 * num_objectives - 3, 1)
    return alpha_u ** (2.0 ** (-iteration / denominator))


#: Signature of a precision-refinement policy:
#: ``policy(alpha_u, iteration, num_objectives) -> alpha``.
PrecisionPolicy = Callable[[float, int, int], float]


def halving_policy(alpha_u: float, iteration: int, num_objectives: int) -> float:
    """Ablation policy: halve the approximation margin each iteration.

    Decreases much faster than the paper's policy — iterations quickly
    become exact-algorithm expensive, so early-iteration work is not
    amortized (violates the paper's second policy requirement from the
    opposite side: the *last* iteration dwarfs everything, including
    what a coarser precision would have needed).
    """
    return 1.0 + (alpha_u - 1.0) / (2.0**iteration)


def slow_policy(alpha_u: float, iteration: int, num_objectives: int) -> float:
    """Ablation policy: refine very slowly (tenth-root steps).

    Violates the paper's second requirement — consecutive iterations
    cost almost the same, so redundant work accumulates across many
    near-identical iterations.
    """
    return alpha_u ** (0.9**iteration)


def ira(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    alpha_u: float,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    precision_policy: PrecisionPolicy = iteration_precision,
    strict: bool = False,
) -> OptimizationResult:
    """Optimize one query block with bounds to within factor ``alpha_u``.

    ``precision_policy`` selects the per-iteration precision; the
    default is the paper's ``alpha_U ** (2 ** (-i / (3l - 3)))``.
    Alternative policies exist for the Section 7.2 ablation study — the
    near-optimality guarantee holds for any policy that decreases to 1.

    ``strict`` enables the strict pruning closure (see
    :func:`repro.core.rta.rta` and DESIGN.md).
    """
    if alpha_u < 1.0:
        raise InvalidPrecisionError(alpha_u)
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds

    num_tables = query.num_tables
    bounds = preferences.bounds
    weights = preferences.weights
    total_considered = 0
    total_vectorized = 0
    # Counters are reset each iteration (memory is reported for the
    # last one), but phase time is spent across *all* iterations.
    phase_totals: dict[str, float] = {}
    counters = Counters()
    best = None
    final_set = None
    iteration = 0
    timed_out = False

    while iteration < max_iterations:
        iteration += 1
        alpha = precision_policy(alpha_u, iteration, preferences.num_objectives)
        exact_iteration = alpha - 1.0 < _EXACT_THRESHOLD
        if exact_iteration:
            alpha = 1.0
        counters = Counters()
        run = DPRun(
            query=query,
            cost_model=cost_model,
            config=config,
            indices=preferences.indices,
            weights=weights,
            alpha_internal=internal_precision(alpha, num_tables),
            deadline=deadline,
            counters=counters,
            extra_indices=(
                strict_closure(preferences.indices) if strict else ()
            ),
            include_rows=strict,
        )
        sets = run.run()
        final_set = strip_entries(sets[run.graph.full_mask],
                                  run.projection_width)
        total_considered += counters.plans_considered
        total_vectorized += counters.candidates_vectorized
        if config.phase_timers:
            for phase, spent_ms in counters.phase_ms().items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + spent_ms
        best = select_best(final_set, preferences)
        timed_out = counters.timed_out
        if timed_out or exact_iteration:
            break
        if best is not None and _stopping_condition_met(
            final_set, best[0], bounds, weights, alpha, alpha_u
        ):
            break

    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm="ira",
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set) if final_set is not None else (),
        optimization_time_ms=elapsed_ms,
        # Paper: memory reported for the last iteration (earlier
        # allocations can be reused).
        memory_kb=counters.memory_kb,
        pareto_last_complete=counters.pareto_last_complete,
        plans_considered=total_considered,
        candidates_vectorized=total_vectorized,
        timed_out=timed_out,
        iterations=iteration,
        alpha=alpha_u,
        deadline_hit=timed_out or deadline_exceeded(deadline),
        phase_ms=phase_totals,
    )


def _stopping_condition_met(
    final_set,
    best_cost: tuple[float, ...],
    bounds: tuple[float, ...],
    weights: tuple[float, ...],
    alpha: float,
    alpha_u: float,
) -> bool:
    """Line 13 of Algorithm 3, with a feasibility strengthening.

    The paper's condition: terminate unless some plan respects the
    *relaxed* bounds ``alpha * B`` and its weighted cost divided by
    ``alpha`` undercuts ``C_W(p_opt) / alpha_U`` — i.e. unless relaxing
    the bounds could still reveal a plan proving ``p_opt`` more than
    ``alpha_U`` from optimal.

    Strengthening (see DESIGN.md): when ``p_opt`` itself violates the
    bounds, ``SelectBest`` fell back to the unconstrained weighted
    minimum, whose (small) weighted cost can satisfy the paper's
    condition even though a bound-respecting plan exists — the returned
    plan would then have infinite relative cost under Definition 3. We
    therefore also require that either ``p_opt`` respects the bounds or
    no generated plan respects even the relaxed bounds (which proves
    that no feasible plan exists at all: any feasible plan's
    alpha-cover in the set would respect ``alpha * B``). Termination is
    preserved by the finite-plan-space argument of Theorem 8.
    """
    from repro.cost.vector import respects_bounds

    relaxed_feasible = [
        cost
        for cost, _ in final_set
        if respects_relaxed_bounds(cost, bounds, alpha)
    ]
    if not respects_bounds(best_cost, bounds) and relaxed_feasible:
        return False
    threshold = weighted_cost(best_cost, weights) / alpha_u
    for cost in relaxed_feasible:
        if weighted_cost(cost, weights) / alpha < threshold:
            return False
    return True
