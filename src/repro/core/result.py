"""Optimization results: chosen plan, approximate frontier, run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.preferences import Preferences
from repro.cost.objectives import Objective
from repro.plans.plan import Plan

CostTuple = tuple[float, ...]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of optimizing one query (or one query block).

    ``frontier`` is the (approximate) Pareto set for the full table set
    — the by-product all of the paper's algorithms expose for tradeoff
    visualization (Figure 4).

    ``timed_out`` and ``deadline_hit`` are related but distinct:
    ``timed_out`` means the enumeration's periodic check tripped and the
    run switched to the paper's single-plan fallback mode, while
    ``deadline_hit`` means the deadline had passed by the time the run
    finished — even when the coarse-grained check never fired (small
    queries finish a full level between checks). Deadline enforcement
    (e.g. the parallel backend's scheduler) keys on ``deadline_hit`` so
    a late answer is never reported as an on-time one.

    Results are immutable: the optimizer service caches and shares them
    across requests (and threads), so derived variants are produced
    with :func:`dataclasses.replace` rather than in-place edits.
    """

    algorithm: str
    query_name: str
    preferences: Preferences
    plan: Plan | None
    plan_cost: CostTuple | None
    frontier: tuple[tuple[CostTuple, Plan], ...]
    optimization_time_ms: float
    memory_kb: float
    pareto_last_complete: int
    plans_considered: int
    timed_out: bool
    #: Candidates costed through the batched enumeration path (out of
    #: ``plans_considered``); 0 on the scalar path.
    candidates_vectorized: int = 0
    iterations: int = 1
    alpha: float | None = None
    block_results: tuple["OptimizationResult", ...] = field(default=())
    deadline_hit: bool = False
    #: The service answered this request with the heuristic fallback
    #: plan after exhausting every retry budget (worker crashes, broken
    #: pools). A degraded result is a *valid* plan — the paper's
    #: single-plan fallback mode — but not the full optimization the
    #: caller asked for, so it is flagged explicitly and never cached.
    degraded: bool = False
    #: Optimizer time split into the disjoint
    #: enumerate/kernel/prune/materialize phases (milliseconds); empty
    #: when phase timing is disabled. Excluded from equality so the
    #: frozen dataclass keeps its generated ``__hash__``.
    phase_ms: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def weighted_cost(self) -> float:
        """Weighted cost of the chosen plan (inf if no plan)."""
        if self.plan_cost is None:
            return float("inf")
        return self.preferences.weighted(self.plan_cost)

    @property
    def respects_bounds(self) -> bool:
        """Whether the chosen plan respects all bounds."""
        return self.plan_cost is not None and self.preferences.respects(
            self.plan_cost
        )

    @property
    def frontier_costs(self) -> list[CostTuple]:
        """Cost vectors of the final (approximate) Pareto frontier."""
        return [cost for cost, _ in self.frontier]

    @property
    def objectives(self) -> tuple[Objective, ...]:
        """Objectives the run optimized for."""
        return self.preferences.objectives

    def cost_of(self, objective: Objective) -> float:
        """Chosen plan's cost in one selected objective."""
        if self.plan_cost is None:
            return float("inf")
        position = self.preferences.objectives.index(objective)
        return self.plan_cost[position]

    def phase_summary(self) -> str:
        """One-line phase-timer breakdown ('' when phase timing is off)."""
        if not self.phase_ms:
            return ""
        parts = " ".join(
            f"{phase}={self.phase_ms.get(phase, 0.0):.1f}ms"
            for phase in ("enumerate", "kernel", "prune", "materialize")
        )
        return f"phases: {parts}"

    def summary(self) -> str:
        """One-line human-readable run summary."""
        if self.degraded:
            status = "DEGRADED"
        elif self.timed_out:
            status = "TIMEOUT"
        elif self.deadline_hit:
            status = "DEADLINE"
        else:
            status = "ok"
        return (
            f"{self.algorithm} on {self.query_name}: "
            f"weighted={self.weighted_cost:.4g} "
            f"time={self.optimization_time_ms:.1f}ms "
            f"mem={self.memory_kb:.0f}KB "
            f"frontier={len(self.frontier)} "
            f"iters={self.iterations} [{status}]"
        )
