"""Single-objective dynamic programming (Selinger-style baseline).

Classic bottom-up join ordering over bushy plans with a scalar pruning
metric: each table set keeps only the plan(s) minimizing the chosen
objective. This is the degenerate case the EXA generalizes — and the
baseline whose complexity Figure 7 compares against. It is also used by
the workload generator to find per-objective minimum costs for bound
generation (Section 8).

Soundness note: startup time is the one objective whose recursive cost
formula reads a *different* objective of the sub-plans (a hash join's
startup depends on the inner's total time). Minimizing startup therefore
prunes with 2-dimensional dominance over (startup, total) and selects
the minimum-startup plan at the top. All other objectives recurse only
on themselves, so 1-dimensional pruning is exact for them (up to the
cardinality interaction introduced by sampling scans, which the paper's
single-objective baseline shares).
"""

from __future__ import annotations

import time as _time

from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.dp import DPRun, deadline_exceeded
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.result import OptimizationResult
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.cost.objectives import Objective
from repro.query.query import Query


def _pruning_preferences(objective: Objective) -> Preferences:
    """Objectives to prune over when minimizing ``objective``."""
    if objective is Objective.STARTUP_TIME:
        return Preferences(
            objectives=(Objective.STARTUP_TIME, Objective.TOTAL_TIME),
            weights=(1.0, 0.0),
        )
    return Preferences(objectives=(objective,), weights=(1.0,))


def selinger(
    query: Query,
    cost_model: CostModel,
    objective: Objective,
    config: OptimizerConfig = DEFAULT_CONFIG,
    deadline: float | None = None,
) -> OptimizationResult:
    """Optimize one query block for a single objective.

    Plan sets stay tiny (a single plan per table set, two-dimensional
    frontiers for startup time), so the run's complexity is independent
    of the number of Pareto plans — the advantage the paper notes
    vanishes for the multi-objective EXA.

    Sampling scans are excluded from the plan space: they make output
    cardinality plan-dependent, which breaks the classic setting scalar
    pruning relies on (the original single-objective Postgres optimizer
    has no sampling scan either). Tuple loss consequently has minimum 0
    here, which is its true minimum in the full space as well.
    """
    config = config.without_sampling()
    preferences = _pruning_preferences(objective)
    start = _time.perf_counter()
    if deadline is None and config.timeout_seconds is not None:
        deadline = start + config.timeout_seconds
    counters = Counters()
    run = DPRun(
        query=query,
        cost_model=cost_model,
        config=config,
        indices=preferences.indices,
        weights=preferences.weights,
        alpha_internal=1.0,
        deadline=deadline,
        counters=counters,
    )
    sets = run.run()
    final_set = sets[run.graph.full_mask]
    best = select_best(final_set, preferences)
    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return OptimizationResult(
        algorithm="selinger",
        query_name=query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=counters.memory_kb,
        pareto_last_complete=counters.pareto_last_complete,
        plans_considered=counters.plans_considered,
        candidates_vectorized=counters.candidates_vectorized,
        timed_out=counters.timed_out,
        alpha=1.0,
        deadline_hit=counters.timed_out or deadline_exceeded(deadline),
        phase_ms=counters.phase_ms() if config.phase_timers else {},
    )


def minimum_cost(
    query: Query,
    cost_model: CostModel,
    objective: Objective,
    config: OptimizerConfig = DEFAULT_CONFIG,
) -> float:
    """Minimal achievable cost of one objective for ``query``."""
    result = selinger(query, cost_model, objective, config)
    if result.plan_cost is None:
        return float("inf")
    return result.plan_cost[0]
