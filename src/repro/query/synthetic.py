"""Synthetic query generation over parameterized join-graph shapes.

The TPC-H workload fixes the join-graph topologies; this generator
produces queries of controlled shape and size — the standard tool for
studying how join enumeration scales with graph structure:

* **chain** — tables joined in a line (fewest connected subgraphs);
* **star** — a fact table joined to n-1 dimensions (classic warehouse
  shape; every subset containing the hub is connected);
* **cycle** — a chain closed into a ring;
* **clique** — every pair joined (most connected subgraphs; worst case
  for subset enumeration).

Queries reference the TPC-H ``lineitem``/``orders``-style tables via a
dedicated synthetic schema so statistics stay controlled.
"""

from __future__ import annotations

import enum
import random

from repro.catalog.column import Column, DataType
from repro.catalog.index import Index
from repro.catalog.schema import Schema, build_schema
from repro.exceptions import QueryModelError
from repro.query.predicate import FilterPredicate, JoinPredicate, TableRef
from repro.query.query import Query


class GraphShape(enum.Enum):
    """Join-graph topology of a generated query."""

    CHAIN = "chain"
    STAR = "star"
    CYCLE = "cycle"
    CLIQUE = "clique"


#: Largest synthetic query size supported by the bundled schema.
MAX_TABLES = 12


def synthetic_schema(
    num_tables: int = MAX_TABLES,
    base_rows: int = 10_000,
    growth: float = 2.0,
    seed: int = 0,
) -> Schema:
    """A schema of ``num_tables`` tables with geometrically growing sizes.

    Every table ``t{i}`` has a unique key, a foreign-key-like join
    column ``ref`` and a filterable ``payload`` column; keys and refs
    carry indexes so index-nested-loop joins are available.
    """
    if num_tables < 1:
        raise QueryModelError("num_tables must be >= 1")
    rng = random.Random(seed)
    tables = []
    indexes = []
    for i in range(num_tables):
        rows = max(10, int(base_rows * growth**i))
        ndv_ref = max(2, rows // rng.randint(2, 10))
        tables.append(_make_table(i, rows, ndv_ref))
        indexes.append(Index(f"t{i}_pk", f"t{i}", ("key",), rows,
                             unique=True))
        indexes.append(Index(f"t{i}_ref_idx", f"t{i}", ("ref",), rows))
    return build_schema(f"synthetic{num_tables}", tables, indexes)


def _make_table(index: int, rows: int, ndv_ref: int):
    from repro.catalog.table import Table

    return Table(
        f"t{index}",
        (
            Column("key", DataType.INTEGER, n_distinct=rows),
            Column("ref", DataType.INTEGER, n_distinct=ndv_ref),
            Column("payload", DataType.VARCHAR, n_distinct=max(2, rows // 4)),
        ),
        row_count=rows,
    )


def _edges(shape: GraphShape, num_tables: int) -> list[tuple[int, int]]:
    if shape is GraphShape.CHAIN:
        return [(i, i + 1) for i in range(num_tables - 1)]
    if shape is GraphShape.STAR:
        return [(0, i) for i in range(1, num_tables)]
    if shape is GraphShape.CYCLE:
        edges = [(i, i + 1) for i in range(num_tables - 1)]
        if num_tables > 2:
            edges.append((num_tables - 1, 0))
        return edges
    if shape is GraphShape.CLIQUE:
        return [
            (i, j)
            for i in range(num_tables)
            for j in range(i + 1, num_tables)
        ]
    raise QueryModelError(f"unsupported shape: {shape}")


def synthetic_query(
    shape: GraphShape,
    num_tables: int,
    filter_selectivity: float | None = 0.3,
    seed: int = 0,
    num_filters: int = 1,
) -> Query:
    """A query of the given shape over the synthetic schema's tables.

    Joins connect each edge's ``key``/``ref`` columns; optional filters
    land on the payload columns of the first ``num_filters`` tables
    (clamped to the query size), all at ``filter_selectivity``.
    """
    if not 1 <= num_tables <= MAX_TABLES:
        raise QueryModelError(
            f"num_tables must be in 1..{MAX_TABLES}, got {num_tables}"
        )
    if num_filters < 0:
        raise QueryModelError(
            f"num_filters must be >= 0, got {num_filters}"
        )
    if shape is GraphShape.CHAIN and num_tables == 1:
        edges = []
    else:
        edges = _edges(shape, num_tables)
    rng = random.Random(seed)
    refs = tuple(TableRef(f"t{i}", f"t{i}") for i in range(num_tables))
    joins = tuple(
        JoinPredicate(
            left_alias=f"t{a}",
            left_column="key" if rng.random() < 0.5 else "ref",
            right_alias=f"t{b}",
            right_column="ref",
        )
        for a, b in edges
    )
    filters = ()
    if filter_selectivity is not None:
        filters = tuple(
            FilterPredicate(f"t{i}", "payload", filter_selectivity,
                            "payload filter")
            for i in range(min(num_filters, num_tables))
        )
    return Query(
        name=f"{shape.value}{num_tables}",
        table_refs=refs,
        filters=filters,
        joins=joins,
    )


def shape_suite(
    num_tables: int, seed: int = 0
) -> dict[GraphShape, Query]:
    """One query per shape at the given size (for scaling studies)."""
    return {
        shape: synthetic_query(shape, num_tables, seed=seed)
        for shape in GraphShape
        if num_tables >= 3 or shape in (GraphShape.CHAIN, GraphShape.STAR)
    }
