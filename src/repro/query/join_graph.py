"""Join-graph utilities: connectivity and split enumeration.

The bottom-up enumerator replicates the Postgres heuristic the paper kept
in place: "it considers Cartesian products only in situations in which no
other join is applicable". For a given table set, splits connected by at
least one join predicate are preferred; only if no such split exists are
arbitrary (Cartesian) splits enumerated.

Table subsets are represented as bitmasks over the query's alias order,
the standard technique for dynamic-programming join enumeration.
"""

from __future__ import annotations

from typing import Iterator

from repro.query.predicate import JoinPredicate
from repro.query.query import Query


class JoinGraph:
    """Adjacency structure over the aliases of one query block."""

    def __init__(self, query: Query) -> None:
        self.query = query
        self.aliases: tuple[str, ...] = query.aliases
        self._index: dict[str, int] = {a: i for i, a in enumerate(self.aliases)}
        n = len(self.aliases)
        #: adjacency[i] = bitmask of aliases joined with alias i.
        self.adjacency: list[int] = [0] * n
        #: predicates_by_pair[(i, j)] with i < j.
        self._predicates: dict[tuple[int, int], list[JoinPredicate]] = {}
        for join in query.joins:
            i = self._index[join.left_alias]
            j = self._index[join.right_alias]
            self.adjacency[i] |= 1 << j
            self.adjacency[j] |= 1 << i
            key = (min(i, j), max(i, j))
            self._predicates.setdefault(key, []).append(join)

    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        """Number of table instances (bitmask width)."""
        return len(self.aliases)

    @property
    def full_mask(self) -> int:
        """Bitmask containing every alias."""
        return (1 << len(self.aliases)) - 1

    def alias_index(self, alias: str) -> int:
        """Bit position of ``alias``."""
        return self._index[alias]

    def mask_of(self, aliases: frozenset[str] | tuple[str, ...]) -> int:
        """Bitmask for a collection of aliases."""
        mask = 0
        for alias in aliases:
            mask |= 1 << self._index[alias]
        return mask

    def aliases_of(self, mask: int) -> frozenset[str]:
        """Aliases contained in ``mask``."""
        return frozenset(
            self.aliases[i] for i in range(len(self.aliases)) if mask >> i & 1
        )

    # ------------------------------------------------------------------
    def neighbors(self, mask: int) -> int:
        """Bitmask of aliases adjacent to any alias in ``mask``."""
        result = 0
        rest = mask
        while rest:
            low = rest & -rest
            result |= self.adjacency[low.bit_length() - 1]
            rest ^= low
        return result & ~mask

    def is_connected(self, mask: int) -> bool:
        """Whether the aliases in ``mask`` form a connected subgraph."""
        if mask == 0:
            return False
        start = mask & -mask
        reached = start
        frontier = start
        while frontier:
            expand = 0
            rest = frontier
            while rest:
                low = rest & -rest
                expand |= self.adjacency[low.bit_length() - 1]
                rest ^= low
            frontier = expand & mask & ~reached
            reached |= frontier
        return reached == mask

    def connects(self, left_mask: int, right_mask: int) -> bool:
        """Whether a join predicate links ``left_mask`` and ``right_mask``."""
        return bool(self.neighbors(left_mask) & right_mask)

    def predicates_between(
        self, left_mask: int, right_mask: int
    ) -> tuple[JoinPredicate, ...]:
        """All join predicates with one side in each mask."""
        result: list[JoinPredicate] = []
        for (i, j), preds in self._predicates.items():
            bit_i, bit_j = 1 << i, 1 << j
            if (bit_i & left_mask and bit_j & right_mask) or (
                bit_i & right_mask and bit_j & left_mask
            ):
                result.extend(preds)
        return tuple(result)

    # ------------------------------------------------------------------
    def splits(self, mask: int) -> Iterator[tuple[int, int]]:
        """Enumerate unordered splits ``(left, right)`` of ``mask``.

        Preferred splits have a join predicate between the halves
        (Postgres heuristic: avoid Cartesian products); when no connected
        split exists, all splits are yielded so the enumeration stays
        complete. Each unordered split is yielded once (callers try both
        operand orders for asymmetric operators).
        """
        bits = [i for i in range(len(self.aliases)) if mask >> i & 1]
        if len(bits) < 2:
            return
        anchor = 1 << bits[0]
        connected: list[tuple[int, int]] = []
        cartesian: list[tuple[int, int]] = []
        # Enumerate subsets containing the anchor bit to visit each
        # unordered split exactly once.
        free_bits = bits[1:]
        for selector in range(1 << len(free_bits)):
            left = anchor
            for pos, bit in enumerate(free_bits):
                if selector >> pos & 1:
                    left |= 1 << bit
            right = mask & ~left
            if right == 0:
                continue
            if self.connects(left, right):
                connected.append((left, right))
            else:
                cartesian.append((left, right))
        yield from connected if connected else cartesian

    def connected_subsets(self) -> list[int]:
        """All connected alias subsets (by increasing cardinality).

        Subsets that are *not* connected are included only if they are
        reachable by the split enumeration (i.e. the query graph itself is
        disconnected); for connected queries this is exactly the set of
        connected subgraphs.
        """
        masks = [
            mask
            for mask in range(1, self.full_mask + 1)
            if self.is_connected(mask) or not self.is_connected(self.full_mask)
        ]
        masks.sort(key=lambda m: (bin(m).count("1"), m))
        return masks
