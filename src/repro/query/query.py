"""Query blocks: a set of table instances plus predicates.

A :class:`Query` models one query block (one from-clause). Queries with
subqueries become a :class:`MultiBlockQuery` whose blocks are optimized
separately — replicating the Postgres heuristic the paper deliberately
left in place (Section 4): "it optimizes different subqueries of the same
query separately".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryModelError
from repro.query.predicate import FilterPredicate, JoinPredicate, TableRef


@dataclass(frozen=True)
class Query:
    """One query block: table instances to join plus predicates."""

    name: str
    table_refs: tuple[TableRef, ...]
    filters: tuple[FilterPredicate, ...] = ()
    joins: tuple[JoinPredicate, ...] = ()
    _alias_map: dict[str, str] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.table_refs:
            raise QueryModelError(f"query {self.name!r} must reference tables")
        alias_map: dict[str, str] = {}
        for ref in self.table_refs:
            if ref.alias in alias_map:
                raise QueryModelError(
                    f"duplicate alias {ref.alias!r} in query {self.name!r}"
                )
            alias_map[ref.alias] = ref.table_name
        for flt in self.filters:
            if flt.alias not in alias_map:
                raise QueryModelError(
                    f"filter on unknown alias {flt.alias!r} in {self.name!r}"
                )
        for join in self.joins:
            for alias in join.aliases:
                if alias not in alias_map:
                    raise QueryModelError(
                        f"join on unknown alias {alias!r} in {self.name!r}"
                    )
        object.__setattr__(self, "_alias_map", alias_map)

    # ------------------------------------------------------------------
    @property
    def aliases(self) -> tuple[str, ...]:
        """Aliases in from-clause order."""
        return tuple(ref.alias for ref in self.table_refs)

    @property
    def num_tables(self) -> int:
        """Number of table instances in the from-clause."""
        return len(self.table_refs)

    def table_name(self, alias: str) -> str:
        """Resolve an alias to its base-table name."""
        try:
            return self._alias_map[alias]
        except KeyError:
            raise QueryModelError(
                f"unknown alias {alias!r} in query {self.name!r}"
            ) from None

    def filters_on(self, alias: str) -> tuple[FilterPredicate, ...]:
        """All filter predicates on ``alias``."""
        return tuple(f for f in self.filters if f.alias == alias)

    def joins_between(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[JoinPredicate, ...]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        result = []
        for join in self.joins:
            a, b = tuple(join.aliases)
            if (a in left and b in right) or (a in right and b in left):
                result.append(join)
        return tuple(result)

    def restricted_to(self, aliases: frozenset[str], name: str) -> "Query":
        """Sub-query over a subset of aliases (predicates restricted)."""
        missing = aliases - set(self.aliases)
        if missing:
            raise QueryModelError(f"aliases not in query: {sorted(missing)}")
        return Query(
            name=name,
            table_refs=tuple(r for r in self.table_refs if r.alias in aliases),
            filters=tuple(f for f in self.filters if f.alias in aliases),
            joins=tuple(j for j in self.joins if j.aliases <= aliases),
        )


@dataclass(frozen=True)
class MultiBlockQuery:
    """A query with subqueries: a main block plus nested blocks.

    Blocks are optimized independently (Postgres heuristic ii in the
    paper); block costs are combined sequentially by the optimizer
    facade. ``max_block_size`` is the quantity the paper's figures order
    queries by ("maximal number of tables that appears in any of their
    from-clauses").
    """

    name: str
    blocks: tuple[Query, ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise QueryModelError(f"query {self.name!r} must have >= 1 block")

    @property
    def main_block(self) -> Query:
        """The outermost query block."""
        return self.blocks[0]

    @property
    def subquery_blocks(self) -> tuple[Query, ...]:
        """All nested blocks (possibly empty)."""
        return self.blocks[1:]

    @property
    def has_subqueries(self) -> bool:
        """Whether the query contains nested blocks."""
        return len(self.blocks) > 1

    @property
    def max_block_size(self) -> int:
        """Largest number of table instances in any block's from-clause."""
        return max(block.num_tables for block in self.blocks)


def single_block(query: Query) -> MultiBlockQuery:
    """Wrap a plain query block as a (single-block) multi-block query."""
    return MultiBlockQuery(name=query.name, blocks=(query,))
