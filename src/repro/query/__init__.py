"""Query substrate: predicates, query blocks, join graphs, TPC-H queries.

The randomized test-case generator lives in :mod:`repro.workload` (it
depends on the optimizer core and would otherwise close an import cycle).
"""

from repro.query.join_graph import JoinGraph
from repro.query.predicate import FilterPredicate, JoinPredicate, TableRef
from repro.query.query import MultiBlockQuery, Query, single_block
from repro.query.synthetic import (
    GraphShape,
    shape_suite,
    synthetic_query,
    synthetic_schema,
)
from repro.query.tpch_queries import (
    ALL_QUERY_NUMBERS,
    PAPER_QUERY_ORDER,
    all_tpch_queries,
    queries_in_paper_order,
    tpch_query,
)

__all__ = [
    "ALL_QUERY_NUMBERS",
    "FilterPredicate",
    "GraphShape",
    "JoinGraph",
    "JoinPredicate",
    "MultiBlockQuery",
    "PAPER_QUERY_ORDER",
    "Query",
    "TableRef",
    "all_tpch_queries",
    "queries_in_paper_order",
    "shape_suite",
    "single_block",
    "synthetic_query",
    "synthetic_schema",
    "tpch_query",
]
