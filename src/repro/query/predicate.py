"""Filter and join predicates with selectivity information.

The optimizer abstracts queries to table sets (Section 3 of the paper),
"abstracting away details such as join predicates (that are however
considered in the implementations)". Like the paper's implementation we
do consider predicates: they drive cardinality estimation and the
no-cross-product heuristic of the join enumerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryModelError


@dataclass(frozen=True)
class TableRef:
    """A table occurrence in a from-clause: ``table_name AS alias``.

    Self-joins (e.g. the two nation instances in TPC-H Q7) use distinct
    aliases over the same table name.
    """

    alias: str
    table_name: str

    def __post_init__(self) -> None:
        if not self.alias or not self.table_name:
            raise QueryModelError("alias and table_name must be non-empty")


@dataclass(frozen=True)
class FilterPredicate:
    """A single-table predicate with a fixed selectivity estimate.

    The selectivity encodes what a real optimizer would derive from
    histograms; we take the values from the TPC-H specification's
    predicate definitions.
    """

    alias: str
    column: str
    selectivity: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise QueryModelError(
                f"filter selectivity must be in (0, 1], got {self.selectivity}"
            )


@dataclass(frozen=True)
class JoinPredicate:
    """An equality join predicate ``left.alias.column = right.alias.column``.

    ``selectivity`` may be given explicitly; if ``None`` it is estimated
    from distinct-value statistics as ``1 / max(ndv_left, ndv_right)``.
    """

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str
    selectivity: float | None = None

    def __post_init__(self) -> None:
        if self.left_alias == self.right_alias:
            raise QueryModelError(
                f"join predicate must connect two table instances, got "
                f"{self.left_alias!r} on both sides"
            )
        if self.selectivity is not None and not 0.0 < self.selectivity <= 1.0:
            raise QueryModelError(
                f"join selectivity must be in (0, 1], got {self.selectivity}"
            )

    @property
    def aliases(self) -> frozenset[str]:
        """The two aliases the predicate connects."""
        return frozenset((self.left_alias, self.right_alias))

    def side(self, alias: str) -> tuple[str, str]:
        """Return ``(alias, column)`` of the side bound to ``alias``."""
        if alias == self.left_alias:
            return self.left_alias, self.left_column
        if alias == self.right_alias:
            return self.right_alias, self.right_column
        raise QueryModelError(
            f"alias {alias!r} not part of predicate {self!r}"
        )

    def other_side(self, alias: str) -> tuple[str, str]:
        """Return ``(alias, column)`` of the side *not* bound to ``alias``."""
        if alias == self.left_alias:
            return self.right_alias, self.right_column
        if alias == self.right_alias:
            return self.left_alias, self.left_column
        raise QueryModelError(
            f"alias {alias!r} not part of predicate {self!r}"
        )
