"""The 22 TPC-H queries as multi-block join queries.

Each query is encoded as the table instances of its from-clause(s), the
single-table filter predicates (with selectivities derived from the
TPC-H specification's predicate definitions — standing in for what
Postgres would estimate from histograms) and the equality join
predicates. Subqueries become separate blocks, optimized independently
like in the paper's Postgres prototype.

``PAPER_QUERY_ORDER`` lists the queries in the order of Figures 9/10:
ascending in the maximal number of tables in any from-clause (the
quantity that correlates with search-space size).
"""

from __future__ import annotations

from functools import lru_cache

from repro.query.predicate import FilterPredicate, JoinPredicate, TableRef
from repro.query.query import MultiBlockQuery, Query

#: Query order used on the x-axis of the paper's Figures 5, 9 and 10.
PAPER_QUERY_ORDER: tuple[int, ...] = (
    1, 4, 6, 22, 12, 13, 14, 15, 16, 17, 19, 20,
    3, 11, 18, 10, 21, 2, 5, 7, 9, 8,
)

#: All TPC-H query numbers.
ALL_QUERY_NUMBERS: tuple[int, ...] = tuple(range(1, 23))


def _ref(alias: str, table: str | None = None) -> TableRef:
    return TableRef(alias=alias, table_name=table or alias)


def _flt(alias: str, column: str, sel: float, desc: str = "") -> FilterPredicate:
    return FilterPredicate(alias=alias, column=column, selectivity=sel,
                           description=desc)


def _join(la: str, lc: str, ra: str, rc: str,
          sel: float | None = None) -> JoinPredicate:
    return JoinPredicate(left_alias=la, left_column=lc, right_alias=ra,
                         right_column=rc, selectivity=sel)


def _block(name, refs, filters=(), joins=()) -> Query:
    return Query(name=name, table_refs=tuple(refs),
                 filters=tuple(filters), joins=tuple(joins))


def _build_q1() -> MultiBlockQuery:
    main = _block("q1", [_ref("lineitem")], [
        _flt("lineitem", "l_shipdate", 0.97, "l_shipdate <= '1998-09-02'"),
    ])
    return MultiBlockQuery("tpch_q1", (main,))


def _build_q2() -> MultiBlockQuery:
    main = _block(
        "q2_main",
        [_ref("part"), _ref("supplier"), _ref("partsupp"), _ref("nation"),
         _ref("region")],
        [
            _flt("part", "p_size", 0.02, "p_size = 15"),
            _flt("part", "p_type", 0.04, "p_type like '%BRASS'"),
            _flt("region", "r_name", 0.2, "r_name = 'EUROPE'"),
        ],
        [
            _join("part", "p_partkey", "partsupp", "ps_partkey"),
            _join("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
            _join("supplier", "s_nationkey", "nation", "n_nationkey"),
            _join("nation", "n_regionkey", "region", "r_regionkey"),
        ],
    )
    sub = _block(
        "q2_sub",
        [_ref("partsupp"), _ref("supplier"), _ref("nation"), _ref("region")],
        [_flt("region", "r_name", 0.2, "r_name = 'EUROPE'")],
        [
            _join("supplier", "s_suppkey", "partsupp", "ps_suppkey"),
            _join("supplier", "s_nationkey", "nation", "n_nationkey"),
            _join("nation", "n_regionkey", "region", "r_regionkey"),
        ],
    )
    return MultiBlockQuery("tpch_q2", (main, sub))


def _build_q3() -> MultiBlockQuery:
    main = _block(
        "q3",
        [_ref("customer"), _ref("orders"), _ref("lineitem")],
        [
            _flt("customer", "c_mktsegment", 0.2, "c_mktsegment = 'BUILDING'"),
            _flt("orders", "o_orderdate", 0.48, "o_orderdate < '1995-03-15'"),
            _flt("lineitem", "l_shipdate", 0.54, "l_shipdate > '1995-03-15'"),
        ],
        [
            _join("customer", "c_custkey", "orders", "o_custkey"),
            _join("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )
    return MultiBlockQuery("tpch_q3", (main,))


def _build_q4() -> MultiBlockQuery:
    main = _block("q4_main", [_ref("orders")], [
        _flt("orders", "o_orderdate", 0.038, "3-month o_orderdate window"),
    ])
    sub = _block("q4_sub", [_ref("lineitem")], [
        _flt("lineitem", "l_commitdate", 0.63, "l_commitdate < l_receiptdate"),
    ])
    return MultiBlockQuery("tpch_q4", (main, sub))


def _build_q5() -> MultiBlockQuery:
    main = _block(
        "q5",
        [_ref("customer"), _ref("orders"), _ref("lineitem"), _ref("supplier"),
         _ref("nation"), _ref("region")],
        [
            _flt("region", "r_name", 0.2, "r_name = 'ASIA'"),
            _flt("orders", "o_orderdate", 0.15, "1-year o_orderdate window"),
        ],
        [
            _join("customer", "c_custkey", "orders", "o_custkey"),
            _join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            _join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            _join("customer", "c_nationkey", "supplier", "s_nationkey"),
            _join("supplier", "s_nationkey", "nation", "n_nationkey"),
            _join("nation", "n_regionkey", "region", "r_regionkey"),
        ],
    )
    return MultiBlockQuery("tpch_q5", (main,))


def _build_q6() -> MultiBlockQuery:
    main = _block("q6", [_ref("lineitem")], [
        _flt("lineitem", "l_shipdate", 0.15, "1-year l_shipdate window"),
        _flt("lineitem", "l_discount", 0.27, "l_discount in [0.05, 0.07]"),
        _flt("lineitem", "l_quantity", 0.48, "l_quantity < 24"),
    ])
    return MultiBlockQuery("tpch_q6", (main,))


def _build_q7() -> MultiBlockQuery:
    main = _block(
        "q7",
        [_ref("supplier"), _ref("lineitem"), _ref("orders"), _ref("customer"),
         _ref("n1", "nation"), _ref("n2", "nation")],
        [
            _flt("lineitem", "l_shipdate", 0.3, "2-year l_shipdate window"),
            _flt("n1", "n_name", 0.08, "n1.n_name in (FRANCE, GERMANY)"),
            _flt("n2", "n_name", 0.08, "n2.n_name in (FRANCE, GERMANY)"),
        ],
        [
            _join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            _join("customer", "c_custkey", "orders", "o_custkey"),
            _join("supplier", "s_nationkey", "n1", "n_nationkey"),
            _join("customer", "c_nationkey", "n2", "n_nationkey"),
        ],
    )
    return MultiBlockQuery("tpch_q7", (main,))


def _build_q8() -> MultiBlockQuery:
    main = _block(
        "q8",
        [_ref("part"), _ref("supplier"), _ref("lineitem"), _ref("orders"),
         _ref("customer"), _ref("n1", "nation"), _ref("n2", "nation"),
         _ref("region")],
        [
            _flt("part", "p_type", 0.007, "p_type = 'ECONOMY ANODIZED STEEL'"),
            _flt("region", "r_name", 0.2, "r_name = 'AMERICA'"),
            _flt("orders", "o_orderdate", 0.3, "2-year o_orderdate window"),
        ],
        [
            _join("part", "p_partkey", "lineitem", "l_partkey"),
            _join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            _join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            _join("orders", "o_custkey", "customer", "c_custkey"),
            _join("customer", "c_nationkey", "n1", "n_nationkey"),
            _join("n1", "n_regionkey", "region", "r_regionkey"),
            _join("supplier", "s_nationkey", "n2", "n_nationkey"),
        ],
    )
    return MultiBlockQuery("tpch_q8", (main,))


def _build_q9() -> MultiBlockQuery:
    main = _block(
        "q9",
        [_ref("part"), _ref("supplier"), _ref("lineitem"), _ref("partsupp"),
         _ref("orders"), _ref("nation")],
        [_flt("part", "p_name", 0.055, "p_name like '%green%'")],
        [
            _join("part", "p_partkey", "lineitem", "l_partkey"),
            _join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            _join("partsupp", "ps_suppkey", "lineitem", "l_suppkey"),
            _join("partsupp", "ps_partkey", "lineitem", "l_partkey"),
            _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            _join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
    )
    return MultiBlockQuery("tpch_q9", (main,))


def _build_q10() -> MultiBlockQuery:
    main = _block(
        "q10",
        [_ref("customer"), _ref("orders"), _ref("lineitem"), _ref("nation")],
        [
            _flt("orders", "o_orderdate", 0.038, "3-month o_orderdate window"),
            _flt("lineitem", "l_returnflag", 0.33, "l_returnflag = 'R'"),
        ],
        [
            _join("customer", "c_custkey", "orders", "o_custkey"),
            _join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            _join("customer", "c_nationkey", "nation", "n_nationkey"),
        ],
    )
    return MultiBlockQuery("tpch_q10", (main,))


def _build_q11() -> MultiBlockQuery:
    tables = [_ref("partsupp"), _ref("supplier"), _ref("nation")]
    filters = [_flt("nation", "n_name", 0.04, "n_name = 'GERMANY'")]
    joins = [
        _join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        _join("supplier", "s_nationkey", "nation", "n_nationkey"),
    ]
    main = _block("q11_main", tables, filters, joins)
    sub = _block("q11_sub", list(tables), list(filters), list(joins))
    return MultiBlockQuery("tpch_q11", (main, sub))


def _build_q12() -> MultiBlockQuery:
    main = _block(
        "q12",
        [_ref("orders"), _ref("lineitem")],
        [
            _flt("lineitem", "l_shipmode", 0.29, "l_shipmode in (MAIL, SHIP)"),
            _flt("lineitem", "l_receiptdate", 0.15, "1-year receipt window"),
            _flt("lineitem", "l_commitdate", 0.3, "commit/receipt/ship order"),
        ],
        [_join("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )
    return MultiBlockQuery("tpch_q12", (main,))


def _build_q13() -> MultiBlockQuery:
    main = _block(
        "q13",
        [_ref("customer"), _ref("orders")],
        [_flt("orders", "o_comment", 0.98, "o_comment not like '%requests%'")],
        [_join("customer", "c_custkey", "orders", "o_custkey")],
    )
    return MultiBlockQuery("tpch_q13", (main,))


def _build_q14() -> MultiBlockQuery:
    main = _block(
        "q14",
        [_ref("lineitem"), _ref("part")],
        [_flt("lineitem", "l_shipdate", 0.0125, "1-month l_shipdate window")],
        [_join("lineitem", "l_partkey", "part", "p_partkey")],
    )
    return MultiBlockQuery("tpch_q14", (main,))


def _build_q15() -> MultiBlockQuery:
    main = _block(
        "q15_main",
        [_ref("supplier"), _ref("lineitem")],
        [_flt("lineitem", "l_shipdate", 0.038, "3-month l_shipdate window")],
        [_join("supplier", "s_suppkey", "lineitem", "l_suppkey")],
    )
    sub = _block("q15_sub", [_ref("lineitem")], [
        _flt("lineitem", "l_shipdate", 0.038, "3-month l_shipdate window"),
    ])
    return MultiBlockQuery("tpch_q15", (main, sub))


def _build_q16() -> MultiBlockQuery:
    main = _block(
        "q16_main",
        [_ref("partsupp"), _ref("part")],
        [
            _flt("part", "p_brand", 0.96, "p_brand <> 'Brand#45'"),
            _flt("part", "p_type", 0.97, "p_type not like 'MEDIUM POLISHED%'"),
            _flt("part", "p_size", 0.16, "p_size in (8 values)"),
        ],
        [_join("partsupp", "ps_partkey", "part", "p_partkey")],
    )
    sub = _block("q16_sub", [_ref("supplier")], [
        _flt("supplier", "s_comment", 0.01, "s_comment like complaints"),
    ])
    return MultiBlockQuery("tpch_q16", (main, sub))


def _build_q17() -> MultiBlockQuery:
    main = _block(
        "q17_main",
        [_ref("lineitem"), _ref("part")],
        [
            _flt("part", "p_brand", 0.04, "p_brand = 'Brand#23'"),
            _flt("part", "p_container", 0.025, "p_container = 'MED BOX'"),
        ],
        [_join("lineitem", "l_partkey", "part", "p_partkey")],
    )
    sub = _block("q17_sub", [_ref("lineitem")], [])
    return MultiBlockQuery("tpch_q17", (main, sub))


def _build_q18() -> MultiBlockQuery:
    main = _block(
        "q18_main",
        [_ref("customer"), _ref("orders"), _ref("lineitem")],
        [],
        [
            _join("customer", "c_custkey", "orders", "o_custkey"),
            _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
    )
    sub = _block("q18_sub", [_ref("lineitem")], [])
    return MultiBlockQuery("tpch_q18", (main, sub))


def _build_q19() -> MultiBlockQuery:
    main = _block(
        "q19",
        [_ref("lineitem"), _ref("part")],
        [
            _flt("part", "p_brand", 0.12, "p_brand in (3 brands)"),
            _flt("part", "p_container", 0.3, "p_container in (12 values)"),
            _flt("part", "p_size", 0.3, "p_size between 1 and 15"),
            _flt("lineitem", "l_quantity", 0.4, "quantity windows"),
            _flt("lineitem", "l_shipmode", 0.29, "l_shipmode in (AIR, AIR REG)"),
            _flt("lineitem", "l_shipinstruct", 0.25, "deliver in person"),
        ],
        [_join("lineitem", "l_partkey", "part", "p_partkey")],
    )
    return MultiBlockQuery("tpch_q19", (main,))


def _build_q20() -> MultiBlockQuery:
    main = _block(
        "q20_main",
        [_ref("supplier"), _ref("nation")],
        [_flt("nation", "n_name", 0.04, "n_name = 'CANADA'")],
        [_join("supplier", "s_nationkey", "nation", "n_nationkey")],
    )
    sub1 = _block("q20_sub_partsupp", [_ref("partsupp")], [])
    sub2 = _block("q20_sub_part", [_ref("part")], [
        _flt("part", "p_name", 0.055, "p_name like 'forest%'"),
    ])
    sub3 = _block("q20_sub_lineitem", [_ref("lineitem")], [
        _flt("lineitem", "l_shipdate", 0.15, "1-year l_shipdate window"),
    ])
    return MultiBlockQuery("tpch_q20", (main, sub1, sub2, sub3))


def _build_q21() -> MultiBlockQuery:
    main = _block(
        "q21_main",
        [_ref("supplier"), _ref("l1", "lineitem"), _ref("orders"),
         _ref("nation")],
        [
            _flt("orders", "o_orderstatus", 0.33, "o_orderstatus = 'F'"),
            _flt("nation", "n_name", 0.04, "n_name = 'SAUDI ARABIA'"),
            _flt("l1", "l_receiptdate", 0.63, "l_receiptdate > l_commitdate"),
        ],
        [
            _join("supplier", "s_suppkey", "l1", "l_suppkey"),
            _join("orders", "o_orderkey", "l1", "l_orderkey"),
            _join("supplier", "s_nationkey", "nation", "n_nationkey"),
        ],
    )
    sub1 = _block("q21_sub_l2", [_ref("l2", "lineitem")], [])
    sub2 = _block("q21_sub_l3", [_ref("l3", "lineitem")], [
        _flt("l3", "l_receiptdate", 0.63, "l_receiptdate > l_commitdate"),
    ])
    return MultiBlockQuery("tpch_q21", (main, sub1, sub2))


def _build_q22() -> MultiBlockQuery:
    main = _block("q22_main", [_ref("customer")], [
        _flt("customer", "c_phone", 0.28, "country-code prefix in (7 codes)"),
        _flt("customer", "c_acctbal", 0.5, "c_acctbal above average"),
    ])
    sub1 = _block("q22_sub_customer", [_ref("customer")], [
        _flt("customer", "c_phone", 0.28, "country-code prefix in (7 codes)"),
        _flt("customer", "c_acctbal", 0.9, "c_acctbal > 0.00"),
    ])
    sub2 = _block("q22_sub_orders", [_ref("orders")], [])
    return MultiBlockQuery("tpch_q22", (main, sub1, sub2))


_BUILDERS = {
    1: _build_q1, 2: _build_q2, 3: _build_q3, 4: _build_q4, 5: _build_q5,
    6: _build_q6, 7: _build_q7, 8: _build_q8, 9: _build_q9, 10: _build_q10,
    11: _build_q11, 12: _build_q12, 13: _build_q13, 14: _build_q14,
    15: _build_q15, 16: _build_q16, 17: _build_q17, 18: _build_q18,
    19: _build_q19, 20: _build_q20, 21: _build_q21, 22: _build_q22,
}


@lru_cache(maxsize=None)
def tpch_query(number: int) -> MultiBlockQuery:
    """Return TPC-H query ``number`` (1..22) as a multi-block query."""
    try:
        builder = _BUILDERS[number]
    except KeyError:
        raise ValueError(f"TPC-H query number must be in 1..22, got {number}")
    return builder()


def all_tpch_queries() -> dict[int, MultiBlockQuery]:
    """All 22 queries keyed by number."""
    return {number: tpch_query(number) for number in ALL_QUERY_NUMBERS}


def queries_in_paper_order() -> list[tuple[int, MultiBlockQuery]]:
    """(number, query) pairs ordered like the paper's figure x-axes."""
    return [(number, tpch_query(number)) for number in PAPER_QUERY_ORDER]
