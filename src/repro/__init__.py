"""repro — Approximation schemes for many-objective query optimization.

A self-contained reproduction of Trummer & Koch, "Approximation Schemes
for Many-Objective Query Optimization" (SIGMOD 2014 / arXiv:1404.0046):

* a statistics-driven query-optimizer substrate (catalog, TPC-H schema
  and queries, cardinality estimation, Postgres-style plan space with
  sampling scans and parallel joins, nine-objective cost model);
* the paper's algorithms — the exact multi-objective algorithm (EXA),
  the representative-tradeoffs approximation scheme (RTA) and the
  iterative-refinement approximation scheme (IRA) — plus baselines,
  all published through a pluggable algorithm registry
  (:func:`available_algorithms`, :class:`AlgorithmSpec`);
* a service-oriented front end: immutable :class:`OptimizationRequest`s
  executed by an :class:`OptimizerService` with a memoizing plan cache,
  pluggable execution backends and per-request metrics hooks;
* a parallel backend (:mod:`repro.parallel`): a warm process pool
  (``backend="processes"``) that sidesteps the GIL for batch
  throughput, deterministic plan-space sharding for EXA/RTA, and
  deadline-aware scheduling with an anytime (IRA) fallback;
* a benchmark harness regenerating every figure of the paper's
  evaluation.

Quickstart::

    from repro import (
        Objective, OptimizationRequest, OptimizerService, Preferences,
        tpch_schema, tpch_query,
    )

    service = OptimizerService(tpch_schema())
    prefs = Preferences.from_maps(
        objectives=(Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
                    Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0, Objective.BUFFER_FOOTPRINT: 0.5,
                 Objective.TUPLE_LOSS: 2.0},
    )
    request = OptimizationRequest(
        query=tpch_query(3), preferences=prefs, algorithm="rta", alpha=1.5,
    )
    result = service.submit(request)        # repeats hit the plan cache
    print(result.plan.describe())

    # Batch fan-out over a thread pool (order-preserving):
    results = service.optimize_many(
        [request.replace(alpha=a) for a in (1.15, 1.5, 2.0)], max_workers=3,
    )
    print(service.metrics.snapshot())

    # CPU-bound batches scale across cores with the process backend
    # (warm spawn-safe workers, per-worker plan caches):
    with OptimizerService(tpch_schema(), backend="processes",
                          workers=4) as parallel_service:
        results = parallel_service.optimize_many(many_requests)

The keyword-style facade remains supported as a thin shim over the same
execution path::

    from repro import MultiObjectiveOptimizer
    optimizer = MultiObjectiveOptimizer(tpch_schema())
    result = optimizer.optimize(tpch_query(3), prefs, algorithm="rta",
                                alpha=1.5)
"""

from repro.catalog import (
    Column,
    DataType,
    Index,
    Schema,
    Table,
    build_schema,
    tpch_schema,
)
from repro.config import (
    DEFAULT_CONFIG,
    FAST_CONFIG,
    SERIAL_CONFIG,
    OptimizerConfig,
)
from repro.core import (
    INFINITY,
    AlgorithmSpec,
    MultiObjectiveOptimizer,
    OptimizationRequest,
    OptimizationResult,
    OptimizerService,
    PlanCache,
    Preferences,
    RequestMetrics,
    ServiceMetrics,
    algorithm_specs,
    available_algorithms,
    exact_moqo,
    get_algorithm,
    ira,
    minimum_cost,
    register_algorithm,
    relative_cost,
    rta,
    select_best,
    selinger,
)
from repro.cost import (
    ALL_OBJECTIVES,
    CostModel,
    CostParams,
    DEFAULT_PARAMS,
    Objective,
    parse_objective,
)
from repro.exceptions import (
    CatalogError,
    CostModelError,
    InvalidPrecisionError,
    OptimizerError,
    QueryModelError,
    ReproError,
    RequestValidationError,
)
from repro.parallel import (
    DeadlineScheduler,
    ShardPlanner,
    WorkerPool,
    sharded_moqo,
)
from repro.plans import JoinMethod, JoinPlan, Plan, ScanMethod, ScanPlan
from repro.serving import (
    AsyncOptimizerServer,
    ServerResponse,
    ServerThread,
    ServingMetrics,
)
from repro.query import (
    FilterPredicate,
    JoinPredicate,
    MultiBlockQuery,
    PAPER_QUERY_ORDER,
    Query,
    TableRef,
    single_block,
    tpch_query,
)
from repro.workload import TestCase, WorkloadGenerator

__version__ = "1.2.0"

__all__ = [
    "ALL_OBJECTIVES",
    "AlgorithmSpec",
    "AsyncOptimizerServer",
    "CatalogError",
    "Column",
    "CostModel",
    "CostModelError",
    "CostParams",
    "DataType",
    "DeadlineScheduler",
    "DEFAULT_CONFIG",
    "DEFAULT_PARAMS",
    "FAST_CONFIG",
    "FilterPredicate",
    "INFINITY",
    "Index",
    "InvalidPrecisionError",
    "JoinMethod",
    "JoinPlan",
    "JoinPredicate",
    "MultiBlockQuery",
    "MultiObjectiveOptimizer",
    "Objective",
    "OptimizationRequest",
    "OptimizationResult",
    "OptimizerConfig",
    "OptimizerError",
    "OptimizerService",
    "PAPER_QUERY_ORDER",
    "Plan",
    "PlanCache",
    "Preferences",
    "Query",
    "QueryModelError",
    "ReproError",
    "RequestMetrics",
    "RequestValidationError",
    "SERIAL_CONFIG",
    "Schema",
    "ScanMethod",
    "ScanPlan",
    "ServerResponse",
    "ServerThread",
    "ServiceMetrics",
    "ServingMetrics",
    "ShardPlanner",
    "Table",
    "TableRef",
    "TestCase",
    "WorkerPool",
    "WorkloadGenerator",
    "algorithm_specs",
    "available_algorithms",
    "build_schema",
    "exact_moqo",
    "get_algorithm",
    "ira",
    "minimum_cost",
    "parse_objective",
    "register_algorithm",
    "relative_cost",
    "rta",
    "select_best",
    "selinger",
    "sharded_moqo",
    "single_block",
    "tpch_query",
    "tpch_schema",
    "__version__",
]
