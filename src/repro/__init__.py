"""repro — Approximation schemes for many-objective query optimization.

A self-contained reproduction of Trummer & Koch, "Approximation Schemes
for Many-Objective Query Optimization" (SIGMOD 2014 / arXiv:1404.0046):

* a statistics-driven query-optimizer substrate (catalog, TPC-H schema
  and queries, cardinality estimation, Postgres-style plan space with
  sampling scans and parallel joins, nine-objective cost model);
* the paper's algorithms — the exact multi-objective algorithm (EXA),
  the representative-tradeoffs approximation scheme (RTA) and the
  iterative-refinement approximation scheme (IRA) — plus a
  single-objective Selinger baseline;
* a benchmark harness regenerating every figure of the paper's
  evaluation.

Quickstart::

    from repro import (
        MultiObjectiveOptimizer, Objective, Preferences, tpch_schema,
        tpch_query,
    )

    optimizer = MultiObjectiveOptimizer(tpch_schema())
    prefs = Preferences.from_maps(
        objectives=(Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
                    Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0, Objective.BUFFER_FOOTPRINT: 0.5,
                 Objective.TUPLE_LOSS: 2.0},
    )
    result = optimizer.optimize(tpch_query(3), prefs, algorithm="rta",
                                alpha=1.5)
    print(result.plan.describe())
"""

from repro.catalog import (
    Column,
    DataType,
    Index,
    Schema,
    Table,
    build_schema,
    tpch_schema,
)
from repro.config import (
    DEFAULT_CONFIG,
    FAST_CONFIG,
    SERIAL_CONFIG,
    OptimizerConfig,
)
from repro.core import (
    INFINITY,
    MultiObjectiveOptimizer,
    OptimizationResult,
    Preferences,
    exact_moqo,
    ira,
    minimum_cost,
    relative_cost,
    rta,
    select_best,
    selinger,
)
from repro.cost import (
    ALL_OBJECTIVES,
    CostModel,
    CostParams,
    DEFAULT_PARAMS,
    Objective,
    parse_objective,
)
from repro.exceptions import (
    CatalogError,
    CostModelError,
    InvalidPrecisionError,
    OptimizerError,
    QueryModelError,
    ReproError,
)
from repro.plans import JoinMethod, JoinPlan, Plan, ScanMethod, ScanPlan
from repro.query import (
    FilterPredicate,
    JoinPredicate,
    MultiBlockQuery,
    PAPER_QUERY_ORDER,
    Query,
    TableRef,
    single_block,
    tpch_query,
)
from repro.workload import TestCase, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "ALL_OBJECTIVES",
    "CatalogError",
    "Column",
    "CostModel",
    "CostModelError",
    "CostParams",
    "DataType",
    "DEFAULT_CONFIG",
    "DEFAULT_PARAMS",
    "FAST_CONFIG",
    "FilterPredicate",
    "INFINITY",
    "Index",
    "InvalidPrecisionError",
    "JoinMethod",
    "JoinPlan",
    "JoinPredicate",
    "MultiBlockQuery",
    "MultiObjectiveOptimizer",
    "Objective",
    "OptimizationResult",
    "OptimizerConfig",
    "OptimizerError",
    "PAPER_QUERY_ORDER",
    "Plan",
    "Preferences",
    "Query",
    "QueryModelError",
    "ReproError",
    "SERIAL_CONFIG",
    "Schema",
    "ScanMethod",
    "ScanPlan",
    "Table",
    "TableRef",
    "TestCase",
    "WorkloadGenerator",
    "build_schema",
    "exact_moqo",
    "ira",
    "minimum_cost",
    "parse_objective",
    "relative_cost",
    "rta",
    "select_best",
    "selinger",
    "single_block",
    "tpch_query",
    "tpch_schema",
    "__version__",
]
