"""Terminal visualization of Pareto frontiers and plan trees.

The paper's prototype "allows to visualize two and three dimensional
projections of the Pareto frontier" so users can pick sensible weights
and bounds (Section 4, Figure 4). This module renders the same
projections as ASCII scatter plots — no plotting dependency required.

Typical use::

    result = optimizer.optimize(query, prefs, algorithm="rta", alpha=1.5)
    print(frontier_scatter(result, Objective.BUFFER_FOOTPRINT,
                           Objective.TOTAL_TIME))
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.result import OptimizationResult
from repro.cost.objectives import Objective
from repro.exceptions import ReproError

#: Default plot dimensions (characters).
DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 20


class VisualizationError(ReproError):
    """Raised for unusable plot requests (missing objectives, no data)."""


def _axis_values(
    result: OptimizationResult, objective: Objective
) -> list[float]:
    try:
        position = result.preferences.objectives.index(objective)
    except ValueError:
        raise VisualizationError(
            f"{objective.name} was not optimized in this run"
        ) from None
    return [cost[position] for cost in result.frontier_costs]


def _scale(values: Sequence[float], cells: int, log: bool) -> list[int]:
    """Map values onto integer cells [0, cells-1]."""
    if log:
        floor = min((v for v in values if v > 0), default=1.0)
        transformed = [math.log10(max(v, floor / 10.0)) for v in values]
    else:
        transformed = list(values)
    low = min(transformed)
    high = max(transformed)
    span = high - low
    if span <= 0:
        return [0 for _ in transformed]
    return [
        min(cells - 1, int((v - low) / span * (cells - 1) + 0.5))
        for v in transformed
    ]


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    log_x: bool = False,
    log_y: bool = False,
    marker: str = "o",
    highlight: tuple[float, float] | None = None,
) -> str:
    """Render points as an ASCII scatter plot.

    ``highlight`` marks one point (e.g. the chosen plan) with ``*``.
    """
    if len(xs) != len(ys):
        raise VisualizationError("x and y series differ in length")
    if not xs:
        raise VisualizationError("nothing to plot")
    all_x = list(xs) + ([highlight[0]] if highlight else [])
    all_y = list(ys) + ([highlight[1]] if highlight else [])
    columns = _scale(all_x, width, log_x)
    rows = _scale(all_y, height, log_y)
    grid = [[" "] * width for _ in range(height)]
    for column, row in zip(columns[: len(xs)], rows[: len(ys)]):
        grid[height - 1 - row][column] = marker
    if highlight is not None:
        grid[height - 1 - rows[-1]][columns[-1]] = "*"

    lines = []
    y_note = f"{y_label}{' (log)' if log_y else ''}"
    lines.append(f"  ^ {y_note}   max={max(ys):.4g}")
    for grid_row in grid:
        lines.append("  |" + "".join(grid_row))
    lines.append("  +" + "-" * width + ">")
    x_note = f"{x_label}{' (log)' if log_x else ''}"
    lines.append(
        f"   {x_note}: {min(xs):.4g} .. {max(xs):.4g}"
        f"   ({len(xs)} points)"
    )
    return "\n".join(lines)


def frontier_scatter(
    result: OptimizationResult,
    x_objective: Objective,
    y_objective: Objective,
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    log_x: bool = False,
    log_y: bool = False,
    mark_chosen: bool = True,
) -> str:
    """2-D projection of a run's (approximate) Pareto frontier.

    The chosen plan is marked ``*`` when ``mark_chosen`` is set and the
    run selected one.
    """
    xs = _axis_values(result, x_objective)
    ys = _axis_values(result, y_objective)
    highlight = None
    if mark_chosen and result.plan_cost is not None:
        x_position = result.preferences.objectives.index(x_objective)
        y_position = result.preferences.objectives.index(y_objective)
        highlight = (
            result.plan_cost[x_position], result.plan_cost[y_position]
        )
    title = (
        f"{result.query_name}: {y_objective.name.lower()} vs "
        f"{x_objective.name.lower()} "
        f"[{result.algorithm}, alpha={result.alpha}]"
    )
    plot = scatter(
        xs, ys,
        x_label=x_objective.name.lower(),
        y_label=y_objective.name.lower(),
        width=width, height=height, log_x=log_x, log_y=log_y,
        highlight=highlight,
    )
    return f"{title}\n{plot}"


def frontier_table(
    result: OptimizationResult, limit: int | None = None
) -> str:
    """The frontier as an aligned table (all selected objectives)."""
    objectives = result.preferences.objectives
    header = "  ".join(f"{o.name.lower():>18s}" for o in objectives)
    rows = sorted(result.frontier_costs)
    if limit is not None and len(rows) > limit:
        shown, hidden = rows[:limit], len(rows) - limit
    else:
        shown, hidden = rows, 0
    lines = [header]
    for cost in shown:
        lines.append("  ".join(f"{v:18.6g}" for v in cost))
    if hidden:
        lines.append(f"... ({hidden} more)")
    return "\n".join(lines)
