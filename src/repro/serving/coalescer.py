"""In-flight request coalescing: one optimization serves N twins.

The multi-tenant scenario produces bursts of fingerprint-identical
requests (every premium tenant asking for TPC-H Q5 under the same
policy). The plan cache already deduplicates *completed* work; the
:class:`RequestCoalescer` deduplicates work that is still running —
the first arrival (the *leader*) runs the optimization, every
concurrent identical request (a *follower*) awaits the same future and
receives the identical result object.

Cancellation safety is the subtle part and rests on two rules the
server upholds:

* the leader's optimization runs in a *detached* task, not in the
  connection handler — a client that disconnects mid-flight cancels
  only its own await, never the shared work (followers still get their
  result, and the result still lands in the plan cache);
* followers await the shared future through ``asyncio.shield`` so a
  cancelled follower cannot propagate cancellation into it.

The registry is event-loop-confined (no locks): every method must be
called from the server's loop, which asyncio guarantees for connection
handlers and their tasks.
"""

from __future__ import annotations

import asyncio


class RequestCoalescer:
    """Futures registry keyed on request fingerprints."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        #: Leaders registered over the coalescer's lifetime.
        self.leaders = 0
        #: Followers that attached to an in-flight leader.
        self.followers = 0

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> asyncio.Future | None:
        """The in-flight future for ``fingerprint``, if one exists.

        Finding one means the caller is a follower; the lookup counts
        it. Await the future through ``asyncio.shield``.
        """
        future = self._inflight.get(fingerprint)
        if future is not None:
            self.followers += 1
        return future

    def register(self, fingerprint: str) -> asyncio.Future:
        """Register the caller as leader for ``fingerprint``.

        Raises :class:`RuntimeError` if a leader is already in flight —
        callers must :meth:`lookup` first.
        """
        if fingerprint in self._inflight:
            raise RuntimeError(
                f"fingerprint already in flight: {fingerprint}"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self.leaders += 1
        return future

    # ------------------------------------------------------------------
    def resolve(self, fingerprint: str, result) -> None:
        """Deliver the leader's result to every waiter and deregister."""
        future = self._inflight.pop(fingerprint, None)
        if future is not None and not future.done():
            future.set_result(result)

    def fail(
        self,
        fingerprint: str,
        error: BaseException,
        *,
        expected: asyncio.Future | None = None,
    ) -> None:
        """Deliver the leader's failure to every waiter and deregister.

        Cancellation of the detached leader task (server shutdown) is
        forwarded as future cancellation so followers observe
        ``CancelledError`` rather than hanging forever.

        ``expected`` restricts the failure to one specific registered
        future: when the in-flight entry is a *different* future the
        call is a no-op. Safety-net callers (a leader task's
        done-callback) must pass the future their task owned — between
        the leader resolving and its callback running, a new leader for
        the same fingerprint may already have registered, and failing
        *that* future would poison unrelated work.
        """
        future = self._inflight.get(fingerprint)
        if future is None or (expected is not None and future is not expected):
            return
        del self._inflight[fingerprint]
        if future.done():
            return
        if isinstance(error, asyncio.CancelledError):
            future.cancel()
        else:
            future.set_exception(error)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of distinct fingerprints currently being optimized."""
        return len(self._inflight)

    def snapshot(self) -> dict[str, int]:
        """Point-in-time counters (safe to serialize)."""
        return {
            "in_flight": self.in_flight,
            "leaders": self.leaders,
            "followers": self.followers,
        }
