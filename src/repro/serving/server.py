"""AsyncOptimizerServer: the asyncio HTTP/JSON optimizer front end.

Built entirely on ``asyncio.start_server`` — no third-party HTTP stack.
The server speaks a minimal but correct subset of HTTP/1.1 (request
line, headers, ``Content-Length`` bodies, keep-alive until either side
sends ``Connection: close``) and exposes three routes:

* ``POST /optimize`` — body per :func:`repro.plans.serialize.request_from_dict`;
  answers a :class:`~repro.serving.protocol.ServerResponse` envelope;
* ``GET /metrics`` — JSON snapshot of serving + service + admission +
  coalescer counters by default; Prometheus text exposition when the
  request's ``Accept`` header asks for ``text/plain`` or OpenMetrics;
* ``GET /healthz`` — liveness probe with build/version info and server
  uptime.

Tracing: construct with ``trace_dir=...`` (or pass an explicit
:class:`~repro.obs.trace.Tracer`) and every ``/optimize`` request runs
under a root ``request`` span with children for parse, admission-queue
wait, coalesce wait, cache lookup, worker-pool dispatch and the
algorithm itself — including spans shipped back from worker processes.
Finished spans append to ``trace_dir/trace-<pid>.jsonl`` after each
request; summarize or convert them with ``repro trace``.

Request lifecycle (the interesting 20 lines):

1. arrival is stamped immediately — every later budget computation
   measures from this instant, so queueing counts end to end;
2. the request's fingerprint is checked against the coalescer: if an
   identical request is in flight the connection becomes a *follower*
   and awaits the shared future (shielded — a dropped follower cannot
   cancel shared work);
3. otherwise admission control decides: queue full → 429 shed; admitted
   → the connection becomes the *leader* and the optimization runs in a
   detached task (client disconnects never cancel it) that waits for an
   execution slot, re-checks the deadline budget (optionally shedding
   requests that went overdue while queued), and finally runs
   ``OptimizerService.submit(request, admitted_epoch=arrival)`` on a
   thread-pool executor;
4. the result lands in the shared future; every waiter serializes the
   same result object — responses are bitwise-identical up to the
   per-connection envelope metadata.

CPU-bound note: optimizations execute on a thread pool of
``max_in_flight`` threads. Under the GIL that serializes pure-Python
enumeration work; point the service at ``backend="processes"`` (the
executor thread then merely blocks on the worker pool) when true CPU
parallelism matters. The asyncio loop itself only ever parses HTTP and
shuffles futures, so it stays responsive under load either way.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path

from repro.core.service import OptimizerService
from repro.exceptions import ReproError
from repro.obs.prom import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prom import render_prometheus
from repro.obs.trace import Tracer, write_spans_jsonl
from repro.plans.serialize import result_to_dict
from repro.serving.admission import AdmissionController
from repro.serving.coalescer import RequestCoalescer
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    CODE_BAD_REQUEST,
    CODE_INTERNAL,
    CODE_NOT_FOUND,
    CODE_OK,
    CODE_UNAVAILABLE,
    ServerResponse,
    deadline_expired_response,
    parse_optimize_body,
    shed_response,
)

#: Largest accepted request body (1 MiB) — a structural query of
#: thousands of tables is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20

_SERVER_NAME = "repro-optimizer"


class _DeadlineShed(Exception):
    """Internal: a queued request's budget died before execution."""


class AsyncOptimizerServer:
    """Async HTTP front end over one :class:`OptimizerService`.

    ``owns_service=True`` hands the service's lifecycle to the server:
    :meth:`stop` closes it (idempotently — closing an already-closed
    service is a no-op by contract). ``shed_expired=True`` turns the
    deadline scheduler's :meth:`~repro.parallel.deadline.DeadlineScheduler.overdue`
    verdict into a 503 at dequeue time instead of burning an executor
    slot on the paper's single-plan fallback; the default keeps the
    fallback semantics (a late request still gets a plan, flagged
    ``deadline_hit``).

    ``trace_dir`` enables request tracing: the server builds (or uses
    the passed) :class:`Tracer`, wraps each ``/optimize`` request in a
    root span, and appends finished spans to
    ``trace_dir/trace-<pid>.jsonl`` after every traced request. Passing
    only ``tracer`` traces without writing — the embedder drains the
    tracer itself. Both default to off: the untraced path costs one
    ``None`` check per request.
    """

    def __init__(
        self,
        service: OptimizerService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 4,
        max_queue_depth: int = 16,
        owns_service: bool = False,
        shed_expired: bool = False,
        metrics: ServingMetrics | None = None,
        tracer: Tracer | None = None,
        trace_dir: str | os.PathLike | None = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._owns_service = owns_service
        self._shed_expired = shed_expired
        self._trace_path: Path | None = None
        if trace_dir is not None:
            directory = Path(trace_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._trace_path = directory / f"trace-{os.getpid()}.jsonl"
            if tracer is None:
                tracer = Tracer()
        self._tracer = tracer
        self._started_epoch: float | None = None
        self.metrics = (
            metrics
            if metrics is not None
            else ServingMetrics(service.metrics)
        )
        self.admission = AdmissionController(
            max_in_flight=max_in_flight, max_queue_depth=max_queue_depth
        )
        self.coalescer = RequestCoalescer()
        self._executor = ThreadPoolExecutor(
            max_workers=max_in_flight,
            thread_name_prefix="repro-serving",
        )
        self._server: asyncio.AbstractServer | None = None
        self._leader_tasks: set[asyncio.Task] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._connection_writers: set[asyncio.StreamWriter] = set()
        self._stopping = False
        # The service's fault injector (None unless chaos is enabled);
        # the server borrows it for response-drop faults so one REPRO_CHAOS
        # spec exercises the whole stack.
        self._chaos = getattr(service, "chaos", None)

    # ------------------------------------------------------------------
    @property
    def service(self) -> OptimizerService:
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port); valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._started_epoch = time.time()
        return self.address

    async def stop(self, *, drain_timeout: float | None = None) -> bool:
        """Stop accepting, drain in-flight leaders, release resources.

        Idempotent: callable any number of times, including on a server
        that never started. With ``drain_timeout`` set, in-flight
        leaders get that many seconds to finish; stragglers are then
        cancelled (their followers observe the cancellation instead of
        hanging). Returns ``True`` for a clean drain, ``False`` when
        work had to be forced — ``repro serve`` turns that into a
        nonzero exit status.

        The draining window is observable: ``GET /healthz`` reports
        ``status: "draining"`` and new ``POST /optimize`` requests are
        refused with a 503 ``unavailable`` envelope while existing
        keep-alive connections stay readable for the drain.
        """
        self._stopping = True
        clean = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._leader_tasks:
            pending = list(self._leader_tasks)
            if drain_timeout is None:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                _done, late = await asyncio.wait(
                    pending, timeout=drain_timeout
                )
                if late:
                    clean = False
                    for task in late:
                        task.cancel()
                    await asyncio.gather(*late, return_exceptions=True)
        # Close idle keep-alive connections so their handler tasks exit
        # on EOF instead of being cancelled at loop teardown (which is
        # noisy on 3.11 — task.exception() inside the streams callback).
        for writer in list(self._connection_writers):
            writer.close()
        if self._connection_tasks:
            await asyncio.gather(
                *list(self._connection_tasks), return_exceptions=True
            )
        self._executor.shutdown(wait=True)
        if self._owns_service:
            self._service.close()
        return clean

    @property
    def draining(self) -> bool:
        """Whether the server has begun shutting down."""
        return self._stopping

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def __aenter__(self) -> "AsyncOptimizerServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.record_connection()
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connection_writers.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break  # client closed (or trailing CRLF)
                try:
                    method, path, headers, body = await self._read_request(
                        request_line, reader
                    )
                except _HttpParseError as error:
                    await self._write_response(
                        writer,
                        ServerResponse(
                            code=CODE_BAD_REQUEST, error=str(error)
                        ),
                        close=True,
                    )
                    break
                response = await self._dispatch(method, path, body, headers)
                if (
                    self._chaos is not None
                    and method == "POST"
                    and path == "/optimize"
                    and self._chaos.draw_drop()
                ):
                    # Chaos 'drop': the optimization ran (and cached),
                    # but the client never hears back — exactly the
                    # failure the client retry policy must absorb. Only
                    # optimize responses drop; /metrics stays reliable
                    # so the harness can still observe the run.
                    self.metrics.record_drop()
                    writer.transport.abort()
                    break
                close = headers.get("connection", "").lower() == "close"
                if isinstance(response, _RawResponse):
                    await self._write_raw(writer, response, close=close)
                else:
                    await self._write_response(writer, response, close=close)
                if close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            self._connection_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, request_line: bytes, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes]:
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _HttpParseError("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                raise _HttpParseError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            name, separator, value = line.decode("latin-1").partition(":")
            if not separator:
                raise _HttpParseError(f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpParseError("malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpParseError(
                f"unacceptable Content-Length {length} "
                f"(limit {MAX_BODY_BYTES})"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: ServerResponse,
        *,
        close: bool,
    ) -> None:
        body = response.to_json().encode("utf-8")
        head = (
            f"HTTP/1.1 {response.http_status} {response.http_reason}\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if response.http_status == 429:
            head += "Retry-After: 1\r\n"
        head += f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        response: "_RawResponse",
        *,
        close: bool,
    ) -> None:
        head = (
            f"HTTP/1.1 {response.status} {response.reason}\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> "ServerResponse | _RawResponse":
        headers = headers or {}
        if method == "POST" and path == "/optimize":
            if self._stopping:
                # Keep-alive connections stay readable through the
                # drain, but new work is refused so the drain converges.
                self.metrics.record_drain_reject()
                return ServerResponse(
                    code=CODE_UNAVAILABLE,
                    error="server is draining, not accepting new work",
                )
            self.metrics.record_request()
            started = time.perf_counter()
            tracer = self._tracer
            if tracer is None:
                response = await self._handle_optimize(body)
            else:
                with tracer.activate():
                    root = tracer.begin("request", "request")
                    try:
                        response = await self._handle_optimize(body, root)
                        root.set(
                            code=response.code,
                            coalesced=response.coalesced,
                            fingerprint=response.fingerprint or "",
                        )
                    finally:
                        root.finish()
                self._flush_spans()
            latency_ms = (time.perf_counter() - started) * 1000.0
            self.metrics.record_response(response.code, latency_ms)
            return ServerResponse(
                code=response.code,
                result=response.result,
                error=response.error,
                coalesced=response.coalesced,
                fingerprint=response.fingerprint,
                latency_ms=latency_ms,
            )
        if method == "GET" and path == "/metrics":
            accept = headers.get("accept", "").lower()
            if "text/plain" in accept or "openmetrics" in accept:
                exposition = render_prometheus(self.metrics_snapshot())
                return _RawResponse(
                    200, "OK", PROMETHEUS_CONTENT_TYPE,
                    exposition.encode("utf-8"),
                )
            return ServerResponse(result=self.metrics_snapshot())
        if method == "GET" and path == "/healthz":
            return ServerResponse(result=self.health_snapshot())
        return ServerResponse(
            code=CODE_NOT_FOUND, error=f"no route for {method} {path}"
        )

    def metrics_snapshot(self) -> dict[str, object]:
        """Combined serving/admission/coalescer/service/resilience snapshot."""
        snapshot: dict[str, object] = {
            "serving": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "coalescer": self.coalescer.snapshot(),
            "service": self._service.metrics.snapshot(),
        }
        resilience = getattr(self._service, "resilience_snapshot", None)
        if callable(resilience):
            snapshot["resilience"] = resilience()
        return snapshot

    def health_snapshot(self) -> dict[str, object]:
        """Liveness payload: build/version info plus server uptime."""
        # Imported here: the package __init__ imports this module
        # before it defines __version__.
        from repro import __version__

        uptime = (
            time.time() - self._started_epoch
            if self._started_epoch is not None
            else 0.0
        )
        return {
            "status": "draining" if self._stopping else "ok",
            "server": _SERVER_NAME,
            "version": __version__,
            "pid": os.getpid(),
            "python": sys.version.split()[0],
            "backend": self._service.backend,
            "uptime_seconds": round(uptime, 3),
            "tracing": self._tracer is not None,
        }

    def _flush_spans(self) -> None:
        """Append finished spans to the trace file (``trace_dir`` mode).

        A no-op unless the server was built with ``trace_dir``; with
        only an explicit ``tracer`` the embedder drains it instead.
        Traces that straddle a flush (a coalesce leader still running
        when a follower responds) simply land across appends — readers
        regroup by trace id.
        """
        if self._trace_path is None or self._tracer is None:
            return
        spans = self._tracer.drain()
        if spans:
            write_spans_jsonl(self._trace_path, spans)

    # ------------------------------------------------------------------
    # The optimize path
    # ------------------------------------------------------------------
    async def _handle_optimize(
        self, body: bytes, root=None
    ) -> ServerResponse:
        arrival = time.time()
        tracer = self._tracer
        try:
            if tracer is None:
                request = parse_optimize_body(body)
            else:
                with tracer.span("parse", "parse"):
                    request = parse_optimize_body(body)
        except ReproError as error:
            self.metrics.record_protocol_error()
            return ServerResponse(
                code=CODE_BAD_REQUEST, error=str(error)
            )
        if root is not None:
            root.set(query=request.query_name, algorithm=request.algorithm)
        fingerprint = request.fingerprint(self._service.config)

        future = self.coalescer.lookup(fingerprint)
        coalesced = future is not None
        if coalesced:
            self.metrics.record_coalesce_hit()
        else:
            if not self.admission.try_admit():
                self.metrics.record_shed()
                return shed_response(fingerprint)
            self.metrics.record_coalesce_leader()
            future = self.coalescer.register(fingerprint)
            # The leader task copies this context at creation, so its
            # spans (queue wait, dispatch, algorithm) parent under this
            # request's root span.
            task = asyncio.get_running_loop().create_task(
                self._run_leader(request, fingerprint, arrival)
            )
            self._leader_tasks.add(task)
            task.add_done_callback(
                partial(self._leader_done, fingerprint, future)
            )

        # Followers spend their whole wait on the leader's shared
        # future — that is their coalesce phase. The leader's wait is
        # accounted by its own child spans instead.
        wait_span = None
        if tracer is not None and coalesced:
            wait_span = tracer.begin("coalesce.wait", "coalesce")
        try:
            result = await asyncio.shield(future)
        except _DeadlineShed:
            self.metrics.record_shed(deadline=True)
            return deadline_expired_response(fingerprint)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            return ServerResponse(
                code=CODE_INTERNAL,
                error=f"optimization failed: {error}",
                coalesced=coalesced,
                fingerprint=fingerprint,
            )
        finally:
            if wait_span is not None:
                wait_span.finish()
        return ServerResponse(
            code=CODE_OK,
            result=result_to_dict(result),
            coalesced=coalesced,
            fingerprint=fingerprint,
        )

    async def _run_leader(
        self,
        request,
        fingerprint: str,
        arrival: float,
    ) -> None:
        """Detached leader task: slot wait, deadline re-check, execute.

        Runs to completion even if every waiter disconnects — the
        result still lands in the plan cache, which is exactly what a
        read-mostly serving workload wants.
        """
        tracer = self._tracer
        queue_span = None
        try:
            if tracer is not None:
                queue_span = tracer.begin("admission.queue", "queue")
            async with self.admission.slot():
                if queue_span is not None:
                    # Finishing here both stops the queue clock and pops
                    # the span off the context, so the executor submit
                    # parents under the root span, not the queue span.
                    queue_span.finish()
                scheduler = self._service.scheduler
                if (
                    self._shed_expired
                    and scheduler is not None
                    and scheduler.overdue(
                        request,
                        arrival,
                        default_timeout=(
                            self._service.config.timeout_seconds
                        ),
                    )
                ):
                    raise _DeadlineShed(fingerprint)
                if tracer is None:
                    result = await (
                        asyncio.get_running_loop().run_in_executor(
                            self._executor,
                            partial(
                                self._service.submit,
                                request,
                                admitted_epoch=arrival,
                            ),
                        )
                    )
                else:
                    # Brackets the executor round trip; the submit's
                    # spans nest under it, so its self time is the
                    # thread-pool handoff and wakeup latency.
                    dispatch_span = tracer.begin(
                        "executor.dispatch", "dispatch"
                    )
                    try:
                        result = await (
                            asyncio.get_running_loop().run_in_executor(
                                self._executor,
                                partial(
                                    self._traced_submit,
                                    request,
                                    arrival,
                                    dispatch_span.context,
                                ),
                            )
                        )
                    finally:
                        dispatch_span.finish()
        except BaseException as error:
            self.coalescer.fail(fingerprint, error)
            if isinstance(error, asyncio.CancelledError):
                raise
        else:
            self.coalescer.resolve(fingerprint, result)
        finally:
            if queue_span is not None:
                queue_span.finish()  # idempotent; covers the shed paths

    def _leader_done(
        self,
        fingerprint: str,
        future: "asyncio.Future",
        task: asyncio.Task,
    ) -> None:
        """Done-callback safety net for detached leader tasks.

        ``_run_leader`` resolves or fails its coalescer future on every
        path it can reach — but a leader task can also die without ever
        entering its ``try`` block (cancelled between creation and
        first scheduling, e.g. during loop teardown) or after its
        ``fail()`` call itself raised. Either way the fingerprint would
        stay registered and every follower would await a future nobody
        owns, forever. This callback runs unconditionally when the task
        finishes and fails any still-inflight future; on the normal
        path the fingerprint is already deregistered and ``fail`` is a
        no-op. The ``expected=future`` guard pins the failure to the
        future *this* task registered: the callback runs a loop
        iteration after the task finishes, by which time a new leader
        for the same fingerprint may already be in flight — its future
        must not be touched. Retrieving ``task.exception()`` here also
        keeps asyncio from logging "exception was never retrieved" for
        leader crashes.
        """
        self._leader_tasks.discard(task)
        if task.cancelled():
            error: BaseException = asyncio.CancelledError()
        else:
            error = task.exception() or RuntimeError(
                f"leader for {fingerprint} died without a result"
            )
        self.coalescer.fail(fingerprint, error, expected=future)

    def _traced_submit(self, request, arrival: float, context):
        """Executor-side submit with the leader's trace context restored.

        ``run_in_executor`` does not propagate contextvars, so the
        executor thread re-activates the server's tracer and adopts the
        leader task's span context before submitting; spans created
        below (cache lookup, pool dispatch, algorithm) then parent
        correctly and collect into the same tracer.
        """
        tracer = self._tracer
        with tracer.activate(), tracer.adopt(context):
            return self._service.submit(request, admitted_epoch=arrival)


class _HttpParseError(Exception):
    """Internal: unreadable HTTP request (maps to 400 + close)."""


class _RawResponse:
    """A non-envelope HTTP response (Prometheus text exposition)."""

    __slots__ = ("status", "reason", "content_type", "body")

    def __init__(
        self, status: int, reason: str, content_type: str, body: bytes
    ) -> None:
        self.status = status
        self.reason = reason
        self.content_type = content_type
        self.body = body


# ----------------------------------------------------------------------
# Sync embedding helper
# ----------------------------------------------------------------------
class ServerThread:
    """Run a server on a dedicated event-loop thread (sync embedding).

    For examples, tests and benchmarks that are synchronous programs:
    ``with ServerThread(server) as (host, port): ...`` starts the loop
    thread, binds the server, and tears both down on exit. Coroutine
    tests drive the server directly with ``asyncio.run`` instead.
    """

    def __init__(self, server: AsyncOptimizerServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        assert self._address is not None
        return self._address

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        self._thread = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._address = await self.server.start()
        except BaseException as error:  # surface bind failures upward
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server thread is not started")
        return self._address

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
