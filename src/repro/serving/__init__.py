"""repro.serving — asyncio HTTP/JSON front end for the optimizer service.

The paper's central premise is that preferences change much faster than
plan spaces: a server that absorbs heavy concurrent traffic is where
that asymmetry pays off. This package puts a network-facing layer on
:class:`~repro.core.service.OptimizerService`:

* :class:`AsyncOptimizerServer` — a stdlib-only asyncio HTTP/1.1 server
  (``asyncio.start_server``; no third-party dependencies) exposing
  ``POST /optimize``, ``GET /metrics`` and ``GET /healthz``;
* :mod:`~repro.serving.protocol` — the typed :class:`ServerResponse`
  envelope with error codes, built on the JSON round-trips in
  :mod:`repro.plans.serialize` (``request_from_dict`` in,
  ``result_to_dict`` out);
* :class:`~repro.serving.coalescer.RequestCoalescer` — in-flight
  request coalescing keyed on request fingerprints: N concurrent
  identical requests await one optimization;
* :class:`~repro.serving.admission.AdmissionController` — bounded
  queue + in-flight cap with 429-style shedding, integrated with
  :class:`~repro.parallel.deadline.DeadlineScheduler` so queueing time
  counts against end-to-end budgets;
* :class:`~repro.serving.metrics.ServingMetrics` — per-server counters
  (coalesce hit rate, sheds, queue depth, p50/p99 latency) threaded
  into the service's :class:`~repro.core.instrumentation.ServiceMetrics`.
"""

from repro.serving.admission import AdmissionController
from repro.serving.client import (
    AsyncHttpClient,
    get_metrics,
    get_metrics_text,
    http_request,
    post_optimize,
)
from repro.serving.coalescer import RequestCoalescer
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    CODE_BAD_REQUEST,
    CODE_DEADLINE_EXPIRED,
    CODE_INTERNAL,
    CODE_NOT_FOUND,
    CODE_OK,
    CODE_SHED,
    CODE_UNAVAILABLE,
    ServerResponse,
)
from repro.serving.server import AsyncOptimizerServer, ServerThread

__all__ = [
    "AdmissionController",
    "AsyncHttpClient",
    "AsyncOptimizerServer",
    "CODE_BAD_REQUEST",
    "CODE_DEADLINE_EXPIRED",
    "CODE_INTERNAL",
    "CODE_NOT_FOUND",
    "CODE_OK",
    "CODE_SHED",
    "CODE_UNAVAILABLE",
    "RequestCoalescer",
    "ServerResponse",
    "ServerThread",
    "ServingMetrics",
    "get_metrics",
    "get_metrics_text",
    "http_request",
    "post_optimize",
]
