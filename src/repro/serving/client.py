"""Minimal HTTP/JSON clients for the optimizer server.

Two flavors, both stdlib-only:

* :func:`http_request` / :func:`post_optimize` — blocking, one socket
  per call (``Connection: close``); what synchronous examples and
  tests reach for;
* :class:`AsyncHttpClient` — asyncio streams with keep-alive, used by
  the load benchmark to drive many concurrent open-loop arrivals from
  one process.

Both return the raw response body alongside the parsed envelope so
callers can assert bitwise equality of coalesced responses.

Retries are opt-in: pass ``retry=CLIENT_RETRY_POLICY`` (or any
:class:`~repro.resilience.policy.RetryPolicy`) to :func:`post_optimize`
or :meth:`AsyncHttpClient.optimize` and the client re-sends on
connection resets, timeouts and mid-response drops with jittered
exponential backoff, and honors the server's ``Retry-After`` header on
a 429 shed. ``POST /optimize`` is idempotent (same fingerprint → same
plan, coalesced server-side), which is what makes blind re-send safe.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Any

from repro.resilience.policy import CLIENT_RETRY_POLICY, RetryPolicy
from repro.serving.protocol import ProtocolError, ServerResponse

__all__ = [
    "CLIENT_RETRY_POLICY",
    "AsyncHttpClient",
    "get_metrics",
    "get_metrics_text",
    "http_request",
    "post_optimize",
]

#: Failures worth re-sending an idempotent request over: the TCP
#: connection died (reset/refused/broken pipe), the socket timed out,
#: or the server dropped the connection mid-response (which surfaces
#: as :class:`ProtocolError`/``IncompleteReadError`` from the parser).
#: ``socket.timeout`` is an alias of ``TimeoutError`` since 3.10 but is
#: kept for clarity.
_RETRYABLE_EXCEPTIONS = (
    ConnectionError,
    TimeoutError,
    socket.timeout,
    ProtocolError,
    asyncio.IncompleteReadError,
)


def _build_request(
    method: str,
    path: str,
    payload: Any | None,
    *,
    close: bool,
    headers: dict[str, str] | None = None,
) -> bytes:
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: repro\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
    return head.encode("latin-1") + body


def _parse_status_line(line: bytes) -> int:
    try:
        _version, status, *_reason = line.decode("latin-1").split(" ", 2)
        return int(status)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(
            f"malformed HTTP status line {line!r}"
        ) from error


def _parse_header_line(line: bytes, headers: dict[str, str]) -> None:
    name, _, value = line.decode("latin-1").partition(":")
    headers[name.strip().lower()] = value.strip()


def _retry_after_delay(
    headers: dict[str, str], fallback: float
) -> float:
    """Server-requested pause before re-sending a shed request.

    Honors a parseable non-negative ``Retry-After`` (delta-seconds
    form); anything else — absent, HTTP-date form, garbage — falls
    back to the policy's own backoff delay.
    """
    raw = headers.get("retry-after")
    if raw is None:
        return fallback
    try:
        seconds = float(raw)
    except ValueError:
        return fallback
    return seconds if seconds >= 0.0 else fallback


# ----------------------------------------------------------------------
# Blocking client
# ----------------------------------------------------------------------
def _exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any | None,
    *,
    timeout: float,
    headers: dict[str, str] | None,
) -> tuple[int, dict[str, str], bytes]:
    """One blocking exchange; returns (status, response headers, body)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            _build_request(method, path, payload, close=True, headers=headers)
        )
        reader = sock.makefile("rb")
        status = _parse_status_line(reader.readline())
        response_headers: dict[str, str] = {}
        while True:
            line = reader.readline()
            if not line:
                raise ProtocolError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            _parse_header_line(line, response_headers)
        length = int(response_headers.get("content-length", "0"))
        body = reader.read(length)
        if len(body) < length:
            raise ProtocolError("connection closed inside body")
        return status, response_headers, body


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any | None = None,
    *,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes]:
    """One blocking HTTP exchange; returns (status, body bytes)."""
    status, _headers, body = _exchange(
        host, port, method, path, payload, timeout=timeout, headers=headers
    )
    return status, body


def post_optimize(
    host: str,
    port: int,
    request_payload: dict[str, Any],
    *,
    timeout: float = 30.0,
    retry: RetryPolicy | None = None,
    rng=None,
) -> tuple[ServerResponse, bytes]:
    """POST one optimize request; returns (envelope, raw body).

    With ``retry`` set, connection failures re-send with jittered
    backoff and a 429 shed waits out the server's ``Retry-After``
    before re-sending; once attempts (or the policy's patience) run
    out, the last failure propagates — the final 429 envelope for a
    shed, the last exception for a connection failure.
    """
    failures = 0
    while True:
        try:
            status, response_headers, body = _exchange(
                host, port, "POST", "/optimize", request_payload,
                timeout=timeout, headers=None,
            )
        except _RETRYABLE_EXCEPTIONS:
            failures += 1
            delay = (
                retry.next_delay(failures, rng=rng)
                if retry is not None
                else None
            )
            if delay is None:
                raise
            time.sleep(delay)
            continue
        if status == 429 and retry is not None:
            failures += 1
            delay = retry.next_delay(failures, rng=rng)
            if delay is not None:
                time.sleep(_retry_after_delay(response_headers, delay))
                continue
        return ServerResponse.from_json(body), body


def get_metrics(
    host: str, port: int, *, timeout: float = 30.0
) -> dict[str, Any]:
    """Fetch the server's combined metrics snapshot."""
    _status, body = http_request(
        host, port, "GET", "/metrics", timeout=timeout
    )
    envelope = ServerResponse.from_json(body)
    return envelope.result or {}


def get_metrics_text(
    host: str, port: int, *, timeout: float = 30.0
) -> str:
    """Fetch the server's metrics as Prometheus text exposition."""
    _status, body = http_request(
        host, port, "GET", "/metrics", timeout=timeout,
        headers={"Accept": "text/plain"},
    )
    return body.decode("utf-8")


# ----------------------------------------------------------------------
# Async client (keep-alive)
# ----------------------------------------------------------------------
class AsyncHttpClient:
    """One keep-alive connection to the server, asyncio flavored.

    Not safe for concurrent use from multiple tasks — HTTP/1.1 without
    pipelining is one exchange at a time per connection. Spawn one
    client per concurrent in-flight request (they are cheap).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncHttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncHttpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _exchange(
        self, method: str, path: str, payload: Any | None
    ) -> tuple[int, dict[str, str], bytes]:
        """One exchange; returns (status, response headers, body)."""
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(
            _build_request(method, path, payload, close=False)
        )
        await self._writer.drain()
        status = _parse_status_line(await self._reader.readline())
        response_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line:
                raise ProtocolError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            _parse_header_line(line, response_headers)
        length = int(response_headers.get("content-length", "0"))
        body = (
            await self._reader.readexactly(length) if length else b""
        )
        return status, response_headers, body

    async def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, bytes]:
        """One HTTP exchange on the keep-alive connection."""
        status, _headers, body = await self._exchange(
            method, path, payload
        )
        return status, body

    async def optimize(
        self,
        request_payload: dict[str, Any],
        *,
        retry: RetryPolicy | None = None,
        rng=None,
    ) -> tuple[ServerResponse, bytes]:
        """POST one optimize request; returns (envelope, raw body).

        Same retry semantics as :func:`post_optimize`; a connection
        failure additionally tears the keep-alive connection down so
        the next attempt reconnects fresh.
        """
        failures = 0
        while True:
            try:
                status, response_headers, body = await self._exchange(
                    "POST", "/optimize", request_payload
                )
            except _RETRYABLE_EXCEPTIONS:
                await self.close()
                failures += 1
                delay = (
                    retry.next_delay(failures, rng=rng)
                    if retry is not None
                    else None
                )
                if delay is None:
                    raise
                await asyncio.sleep(delay)
                continue
            if status == 429 and retry is not None:
                failures += 1
                delay = retry.next_delay(failures, rng=rng)
                if delay is not None:
                    await asyncio.sleep(
                        _retry_after_delay(response_headers, delay)
                    )
                    continue
            return ServerResponse.from_json(body), body

    async def metrics(self) -> dict[str, Any]:
        _status, body = await self.request("GET", "/metrics")
        envelope = ServerResponse.from_json(body)
        return envelope.result or {}
