"""Minimal HTTP/JSON clients for the optimizer server.

Two flavors, both stdlib-only:

* :func:`http_request` / :func:`post_optimize` — blocking, one socket
  per call (``Connection: close``); what synchronous examples and
  tests reach for;
* :class:`AsyncHttpClient` — asyncio streams with keep-alive, used by
  the load benchmark to drive many concurrent open-loop arrivals from
  one process.

Both return the raw response body alongside the parsed envelope so
callers can assert bitwise equality of coalesced responses.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any

from repro.serving.protocol import ProtocolError, ServerResponse


def _build_request(
    method: str,
    path: str,
    payload: Any | None,
    *,
    close: bool,
    headers: dict[str, str] | None = None,
) -> bytes:
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: repro\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
    return head.encode("latin-1") + body


def _parse_status_line(line: bytes) -> int:
    try:
        _version, status, *_reason = line.decode("latin-1").split(" ", 2)
        return int(status)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(
            f"malformed HTTP status line {line!r}"
        ) from error


# ----------------------------------------------------------------------
# Blocking client
# ----------------------------------------------------------------------
def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any | None = None,
    *,
    timeout: float = 30.0,
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes]:
    """One blocking HTTP exchange; returns (status, body bytes)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            _build_request(method, path, payload, close=True, headers=headers)
        )
        reader = sock.makefile("rb")
        status = _parse_status_line(reader.readline())
        length = 0
        while True:
            line = reader.readline()
            if not line:
                raise ProtocolError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = reader.read(length)
        return status, body


def post_optimize(
    host: str,
    port: int,
    request_payload: dict[str, Any],
    *,
    timeout: float = 30.0,
) -> tuple[ServerResponse, bytes]:
    """POST one optimize request; returns (envelope, raw body)."""
    _status, body = http_request(
        host, port, "POST", "/optimize", request_payload, timeout=timeout
    )
    return ServerResponse.from_json(body), body


def get_metrics(
    host: str, port: int, *, timeout: float = 30.0
) -> dict[str, Any]:
    """Fetch the server's combined metrics snapshot."""
    _status, body = http_request(
        host, port, "GET", "/metrics", timeout=timeout
    )
    envelope = ServerResponse.from_json(body)
    return envelope.result or {}


def get_metrics_text(
    host: str, port: int, *, timeout: float = 30.0
) -> str:
    """Fetch the server's metrics as Prometheus text exposition."""
    _status, body = http_request(
        host, port, "GET", "/metrics", timeout=timeout,
        headers={"Accept": "text/plain"},
    )
    return body.decode("utf-8")


# ----------------------------------------------------------------------
# Async client (keep-alive)
# ----------------------------------------------------------------------
class AsyncHttpClient:
    """One keep-alive connection to the server, asyncio flavored.

    Not safe for concurrent use from multiple tasks — HTTP/1.1 without
    pipelining is one exchange at a time per connection. Spawn one
    client per concurrent in-flight request (they are cheap).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncHttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncHttpClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, bytes]:
        """One HTTP exchange on the keep-alive connection."""
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(
            _build_request(method, path, payload, close=False)
        )
        await self._writer.drain()
        status = _parse_status_line(await self._reader.readline())
        length = 0
        while True:
            line = await self._reader.readline()
            if not line:
                raise ProtocolError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = (
            await self._reader.readexactly(length) if length else b""
        )
        return status, body

    async def optimize(
        self, request_payload: dict[str, Any]
    ) -> tuple[ServerResponse, bytes]:
        """POST one optimize request; returns (envelope, raw body)."""
        _status, body = await self.request(
            "POST", "/optimize", request_payload
        )
        return ServerResponse.from_json(body), body

    async def metrics(self) -> dict[str, Any]:
        _status, body = await self.request("GET", "/metrics")
        envelope = ServerResponse.from_json(body)
        return envelope.result or {}
