"""Per-server metrics: latency percentiles, coalescing, shedding.

:class:`ServingMetrics` is the front-end companion of
:class:`~repro.core.instrumentation.ServiceMetrics`: the service
aggregate counts what the optimizer *did* (requests, cache hits,
timeouts), this one counts what the server *experienced* (end-to-end
latency from first byte to response, responses by envelope code,
coalesce hit rate, sheds). Coalesce hits and sheds are additionally
threaded into the linked ``ServiceMetrics`` so a single service
snapshot describes the whole deployment.

Unlike the loop-confined coalescer/admission objects this class takes
a lock: latency observations come from connection handlers on the
loop, but ``snapshot()`` is also called from sync test/benchmark code
running on other threads.
"""

from __future__ import annotations

import threading

from repro.core.instrumentation import LatencyHistogram, ServiceMetrics


class ServingMetrics:
    """Aggregate counters for one :class:`AsyncOptimizerServer`."""

    def __init__(
        self,
        service_metrics: ServiceMetrics | None = None,
        *,
        max_latency_samples: int = 65536,
    ) -> None:
        # The histogram reference is immutable (it has its own internal
        # lock), but observe/snapshot calls still happen under _lock so
        # the sample count can never disagree with the counters — that
        # torn-snapshot race shipped once already; REP002 now enforces
        # the discipline on every attribute below.
        self.latency = LatencyHistogram(max_samples=max_latency_samples)  # guarded-by: _lock
        self._service_metrics = service_metrics
        self._lock = threading.Lock()
        self.connections = 0  # guarded-by: _lock
        self.requests = 0  # guarded-by: _lock
        self.responses_by_code: dict[str, int] = {}  # guarded-by: _lock
        self.coalesce_hits = 0  # guarded-by: _lock
        self.coalesce_leaders = 0  # guarded-by: _lock
        self.sheds = 0  # guarded-by: _lock
        self.deadline_sheds = 0  # guarded-by: _lock
        self.protocol_errors = 0  # guarded-by: _lock
        self.drain_rejects = 0  # guarded-by: _lock
        self.drops = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    def record_connection(self) -> None:
        with self._lock:
            self.connections += 1

    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_response(self, code: str, latency_ms: float) -> None:
        """Count one finished optimize cycle and its end-to-end latency.

        The histogram update happens *inside* this object's lock (the
        histogram's own lock nests within — same order everywhere, so
        no deadlock): a snapshot can then never observe a response
        count that disagrees with the latency histogram's count.
        """
        with self._lock:
            self.responses_by_code[code] = (
                self.responses_by_code.get(code, 0) + 1
            )
            self.latency.observe(latency_ms)

    def record_coalesce_hit(self) -> None:
        """One request attached to an in-flight twin (no new work)."""
        with self._lock:
            self.coalesce_hits += 1
        if self._service_metrics is not None:
            self._service_metrics.record_coalesce_hit()

    def record_coalesce_leader(self) -> None:
        """One request became the leader of its fingerprint."""
        with self._lock:
            self.coalesce_leaders += 1

    def record_shed(self, *, deadline: bool = False) -> None:
        """One request refused (queue full, or budget died queueing)."""
        with self._lock:
            self.sheds += 1
            if deadline:
                self.deadline_sheds += 1
        if self._service_metrics is not None:
            self._service_metrics.record_shed()

    def record_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def record_drain_reject(self) -> None:
        """One optimize request refused because the server is draining."""
        with self._lock:
            self.drain_rejects += 1

    def record_drop(self) -> None:
        """One response deliberately dropped by the chaos harness."""
        with self._lock:
            self.drops += 1

    # ------------------------------------------------------------------
    @property
    def coalesce_hit_rate(self) -> float:
        """Fraction of optimize requests served by coalescing."""
        with self._lock:
            total = self.coalesce_hits + self.coalesce_leaders
            return self.coalesce_hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """Point-in-time copy of all counters (safe to serialize)."""
        with self._lock:
            counters = {
                "connections": self.connections,
                "requests": self.requests,
                "responses_by_code": dict(self.responses_by_code),
                "coalesce_hits": self.coalesce_hits,
                "coalesce_leaders": self.coalesce_leaders,
                "sheds": self.sheds,
                "deadline_sheds": self.deadline_sheds,
                "protocol_errors": self.protocol_errors,
                "drain_rejects": self.drain_rejects,
                "drops": self.drops,
            }
            # Read inside the lock, matching record_response, so the
            # histogram count always equals the response-code totals.
            counters["latency"] = self.latency.snapshot()
        total = counters["coalesce_hits"] + counters["coalesce_leaders"]
        counters["coalesce_hit_rate"] = (
            counters["coalesce_hits"] / total if total else 0.0
        )
        return counters
