"""Admission control: bounded queue, in-flight cap, load shedding.

Two limits shape the server's behavior under overload:

* ``max_in_flight`` — how many optimizations run concurrently (the
  size of the executor feeding :class:`~repro.core.service.OptimizerService`);
* ``max_queue_depth`` — how many admitted requests may *wait* for an
  execution slot. Arrivals beyond it are shed immediately with a
  429-style response instead of building an unbounded backlog whose
  tail latencies nobody survives.

Only coalescing *leaders* pass through admission: followers piggyback
on a leader that already holds (or waits for) a slot, so a burst of
1000 identical requests costs one queue entry. Queue *time* is not
lost to accounting — the server stamps every request's arrival and
hands it to the service as ``admitted_epoch``, which is what makes
:class:`~repro.parallel.deadline.DeadlineScheduler` budgets end-to-end
(see :meth:`AdmissionController.slot`).

Like the coalescer, the controller is event-loop-confined: counters
are only touched from the server's loop, so they need no locks.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager


class AdmissionController:
    """Bounded admission queue in front of a slot semaphore."""

    def __init__(
        self, max_in_flight: int = 4, max_queue_depth: int = 16
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self._slots = asyncio.Semaphore(max_in_flight)
        #: Admitted requests waiting for (or about to take) a slot.
        self.queued = 0
        #: Requests currently holding an execution slot.
        self.running = 0
        self.peak_queue_depth = 0
        self.admitted = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def try_admit(self) -> bool:
        """Admit one request, or refuse it because the queue is full.

        The invariant is on *outstanding* work: at most
        ``max_in_flight`` running plus ``max_queue_depth`` waiting.
        ``max_queue_depth=0`` therefore means "run or shed, never
        wait". Admission only reserves the position; the caller must
        enter :meth:`slot` to actually run (exactly once per successful
        admission — :meth:`slot` releases the position).
        """
        if (
            self.queued + self.running
            >= self.max_in_flight + self.max_queue_depth
        ):
            self.shed += 1
            return False
        self.queued += 1
        backlog = self.queue_depth
        if backlog > self.peak_queue_depth:
            self.peak_queue_depth = backlog
        self.admitted += 1
        return True

    @asynccontextmanager
    async def slot(self):
        """Hold one execution slot; waiting here is queue time.

        The wait is intentionally *before* the optimization starts and
        *after* the arrival timestamp was taken, so a deadline
        scheduler sees queueing as spent budget.
        """
        await self._slots.acquire()
        self.queued -= 1
        self.running += 1
        try:
            yield
        finally:
            self.running -= 1
            self._slots.release()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted requests that must wait for a slot (the backlog)."""
        return max(0, self.queued + self.running - self.max_in_flight)

    def snapshot(self) -> dict[str, int]:
        """Point-in-time counters (safe to serialize)."""
        return {
            "max_in_flight": self.max_in_flight,
            "max_queue_depth": self.max_queue_depth,
            "running": self.running,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "admitted": self.admitted,
            "shed": self.shed,
        }
