"""Wire protocol of the serving layer: envelopes, codes, HTTP mapping.

One request/response cycle of :class:`~repro.serving.server.AsyncOptimizerServer`:

* the client ``POST``s a JSON body in the shape produced by
  :func:`repro.plans.serialize.request_to_dict` (queries either
  structurally or via the ``{"kind": "tpch", "number": N}`` shorthand);
* the server answers with a :class:`ServerResponse` envelope — a typed
  wrapper carrying a machine-readable ``code``, the serialized
  :func:`~repro.plans.serialize.result_to_dict` payload on success, an
  error message otherwise, plus serving metadata (whether the response
  was coalesced onto another request's optimization, the request
  fingerprint, server-side latency).

Codes map onto HTTP statuses (:data:`HTTP_STATUS`): admission-control
sheds answer ``429 Too Many Requests``, budget-expired requests
``503 Service Unavailable``, malformed payloads ``400``. The envelope
``code`` — not the HTTP status — is the API contract; the HTTP status
is a faithful projection for generic clients and load balancers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.request import OptimizationRequest
from repro.exceptions import ReproError
from repro.plans.serialize import request_from_dict

#: Machine-readable envelope codes (the API contract).
CODE_OK = "ok"
CODE_BAD_REQUEST = "bad_request"
CODE_NOT_FOUND = "not_found"
CODE_SHED = "shed"
CODE_DEADLINE_EXPIRED = "deadline_expired"
CODE_INTERNAL = "internal"
CODE_UNAVAILABLE = "unavailable"

#: Envelope code -> (HTTP status, reason phrase).
HTTP_STATUS: dict[str, tuple[int, str]] = {
    CODE_OK: (200, "OK"),
    CODE_BAD_REQUEST: (400, "Bad Request"),
    CODE_NOT_FOUND: (404, "Not Found"),
    CODE_SHED: (429, "Too Many Requests"),
    CODE_DEADLINE_EXPIRED: (503, "Service Unavailable"),
    CODE_INTERNAL: (500, "Internal Server Error"),
    CODE_UNAVAILABLE: (503, "Service Unavailable"),
}


class ProtocolError(ReproError):
    """Raised for malformed wire payloads (maps to ``bad_request``)."""


@dataclass(frozen=True)
class ServerResponse:
    """Typed response envelope of the optimize endpoint.

    ``result`` stays a plain dictionary on the envelope — the wire
    format — so responses serialize without touching plan objects;
    callers wanting an :class:`~repro.core.result.OptimizationResult`
    pass it through :func:`repro.plans.serialize.result_from_dict`.
    ``coalesced`` marks responses that awaited another in-flight
    request's optimization instead of running their own.
    """

    code: str = CODE_OK
    result: dict[str, Any] | None = None
    error: str | None = None
    coalesced: bool = False
    fingerprint: str | None = None
    latency_ms: float | None = None

    @property
    def ok(self) -> bool:
        """Whether the request was served with a result."""
        return self.code == CODE_OK

    @property
    def http_status(self) -> int:
        """HTTP status code this envelope travels under."""
        return HTTP_STATUS.get(self.code, HTTP_STATUS[CODE_INTERNAL])[0]

    @property
    def http_reason(self) -> str:
        """HTTP reason phrase for :attr:`http_status`."""
        return HTTP_STATUS.get(self.code, HTTP_STATUS[CODE_INTERNAL])[1]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize the envelope (``None`` fields are omitted)."""
        payload: dict[str, Any] = {
            "status": "ok" if self.ok else "error",
            "code": self.code,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.coalesced:
            payload["coalesced"] = True
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if self.latency_ms is not None:
            payload["latency_ms"] = self.latency_ms
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServerResponse":
        """Rebuild an envelope parsed from a response body."""
        try:
            return cls(
                code=payload["code"],
                result=payload.get("result"),
                error=payload.get("error"),
                coalesced=bool(payload.get("coalesced", False)),
                fingerprint=payload.get("fingerprint"),
                latency_ms=payload.get("latency_ms"),
            )
        except (KeyError, TypeError) as error:
            raise ProtocolError(
                f"malformed response envelope: {error}"
            ) from error

    @classmethod
    def from_json(cls, text: str | bytes) -> "ServerResponse":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ProtocolError(
                f"response is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ProtocolError("response envelope must be a JSON object")
        return cls.from_dict(payload)


def parse_optimize_body(body: bytes) -> OptimizationRequest:
    """Parse a ``POST /optimize`` body into a validated request.

    Raises :class:`ProtocolError` for anything the optimizer must never
    see: invalid JSON, non-object payloads, structurally broken queries
    or preferences, and requests the algorithm registry rejects.
    """
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise ProtocolError(
            f"request body is not valid JSON: {error}"
        ) from error
    try:
        return request_from_dict(payload)
    except ReproError as error:
        raise ProtocolError(str(error)) from error


def shed_response(fingerprint: str | None = None) -> ServerResponse:
    """Admission-control refusal (HTTP 429)."""
    return ServerResponse(
        code=CODE_SHED,
        error="server overloaded: admission queue is full, retry later",
        fingerprint=fingerprint,
    )


def deadline_expired_response(
    fingerprint: str | None = None,
) -> ServerResponse:
    """Budget exhausted while queueing (HTTP 503)."""
    return ServerResponse(
        code=CODE_DEADLINE_EXPIRED,
        error="request deadline expired while queued",
        fingerprint=fingerprint,
    )
