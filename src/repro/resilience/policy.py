"""Retry/backoff policy objects shared by the service and the client.

A :class:`RetryPolicy` answers one question — "may I try again, and
after how long?" — as a pure function of the attempt number, the
request's remaining deadline budget, and a caller-supplied random
source. Policies are immutable and picklable; randomness never hides
inside them, so replaying a seeded ``random.Random`` reproduces the
exact delay sequence (the property the chaos tests lean on).

Deadline awareness is the contract that makes retries safe under the
:class:`~repro.parallel.deadline.DeadlineScheduler`: a retry's backoff
sleep never exceeds the budget the request has left, and once less than
``min_remaining_s`` remains the policy refuses further attempts —
better to hand the caller the degraded fallback while there is still
time to compute it than to burn the last of the budget sleeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "CLIENT_RETRY_POLICY"]

#: Shared fallback RNG for callers that do not inject one. Module-level
#: so policies stay stateless/picklable.
_DEFAULT_RNG = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a deadline ceiling.

    ``max_attempts`` counts *total* tries, so ``max_attempts=3`` allows
    two retries after the first failure. Delay for retry ``n`` (1-based)
    is ``base_delay_s * multiplier**(n-1)`` capped at ``max_delay_s``,
    then jittered down by up to ``jitter`` (full jitter keeps retry
    storms from re-synchronizing: each client backs off a different
    amount). A ``remaining_s`` budget clamps the delay so the sleep can
    never outlive the request's deadline.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    #: Below this much remaining budget a retry is pointless — the
    #: attempt itself needs time, not just the backoff sleep.
    min_remaining_s: float = 0.001

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------
    def backoff_s(
        self, retry_number: int, rng: random.Random | None = None
    ) -> float:
        """Jittered backoff (seconds) before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ValueError(
                f"retry_number must be >= 1, got {retry_number}"
            )
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (retry_number - 1),
        )
        if self.jitter > 0.0 and delay > 0.0:
            rng = rng if rng is not None else _DEFAULT_RNG
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def next_delay(
        self,
        retry_number: int,
        *,
        remaining_s: float | None = None,
        rng: random.Random | None = None,
    ) -> float | None:
        """Backoff before retry ``retry_number``, or ``None`` for "stop".

        ``None`` means the retry budget is exhausted — either the
        attempt count ran out (``retry_number`` would exceed
        ``max_attempts - 1`` retries) or the request's remaining
        deadline budget (``remaining_s``, seconds) is too small to be
        worth another attempt. Otherwise the returned delay is clamped
        so sleeping it cannot exceed the remaining budget.
        """
        if retry_number >= self.max_attempts:
            return None
        delay = self.backoff_s(retry_number, rng)
        if remaining_s is not None:
            if remaining_s <= self.min_remaining_s:
                return None
            # Leave at least min_remaining_s of budget after the sleep.
            delay = min(delay, max(0.0, remaining_s - self.min_remaining_s))
        return delay


#: Service-side default: one backoff'd retry after the pool's own
#: immediate re-dispatch, short delays — a server must fail fast into
#: the degraded fallback rather than stall the admission queue.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=2, base_delay_s=0.02, max_delay_s=0.25
)

#: Client-side default for opt-in HTTP retries: more patient, since a
#: remote server restart takes longer than a worker respawn.
CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay_s=0.1, max_delay_s=2.0
)
