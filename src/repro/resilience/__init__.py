"""Failure handling for the serving → service → process-pool stack.

Three cooperating pieces, each usable alone:

* :mod:`repro.resilience.policy` — immutable retry/backoff policies
  (jittered exponential, deadline-aware) shared by the service dispatch
  path and the HTTP client.
* :mod:`repro.resilience.breaker` — the backend degradation ladder:
  a circuit breaker stepping ``processes`` → ``threads`` → ``inline``
  under repeated infrastructure failures, with half-open probes back.
* :mod:`repro.resilience.chaos` — deterministic, seedable fault
  injection (worker SIGKILL, slow worker, executor exception, pickling
  failure, socket drop) behind the ``REPRO_CHAOS`` env flag; zero
  overhead when disabled.
"""

from repro.resilience.breaker import BreakerDecision, CircuitBreaker
from repro.resilience.chaos import (
    CHAOS_ENV_VAR,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    Fault,
    apply_fault,
    chaos_from_env,
    parse_chaos_spec,
)
from repro.resilience.policy import (
    CLIENT_RETRY_POLICY,
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
)

__all__ = [
    "BreakerDecision",
    "CircuitBreaker",
    "CHAOS_ENV_VAR",
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "Fault",
    "apply_fault",
    "chaos_from_env",
    "parse_chaos_spec",
    "CLIENT_RETRY_POLICY",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
]
