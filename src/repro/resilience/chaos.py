"""Deterministic fault injection for the serving → service → pool stack.

Every recovery path in :mod:`repro.resilience` is only as trustworthy
as the failures it has actually survived, so this module makes the
failures reproducible: a :class:`ChaosInjector` draws faults from a
seeded RNG — the same seed replays the same fault sequence — and each
fault is applied at a specific seam:

========  =============================================================
kind      effect
========  =============================================================
kill      worker process SIGKILLs itself at task start (worker death —
          breaks the whole ``ProcessPoolExecutor``, the worst case)
slow      worker sleeps ``slow_seconds`` before working (stuck worker —
          what per-dispatch heartbeat timeouts exist to catch)
error     worker raises :class:`ChaosError` (executor exception)
pickle    worker returns an object whose pickling fails (result never
          reaches the parent; surfaces as ``PicklingError``)
drop      serving layer aborts the client socket before the response
          (connection reset mid-exchange — what client retries handle)
========  =============================================================

Zero overhead when disabled: owners hold ``None`` instead of an
injector, so the production path pays one ``is None`` check and draws
nothing. Enablement is explicit (constructor argument) or environmental
(:func:`chaos_from_env`, the ``REPRO_CHAOS`` variable) — never default.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import threading
import time
from dataclasses import dataclass, fields

from repro.exceptions import ReproError

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "Fault",
    "apply_fault",
    "chaos_from_env",
    "CHAOS_ENV_VAR",
]

#: Environment variable read by :func:`chaos_from_env`, e.g.
#: ``REPRO_CHAOS="kill=0.2,seed=7,max=10"``.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Fault kinds drawn at pool dispatch (in draw priority order).
DISPATCH_FAULTS = ("kill", "slow", "error", "pickle")


class ChaosError(ReproError):
    """Injected executor exception (a transient infrastructure fault)."""


@dataclass(frozen=True)
class Fault:
    """One fault decision, drawn in the parent, applied where it bites.

    Picklable by design: dispatch faults travel to the worker process
    inside the task arguments.
    """

    kind: str
    seconds: float = 0.0


@dataclass(frozen=True)
class ChaosConfig:
    """Injection probabilities (all default 0 = nothing ever fires).

    Probabilities are per *decision point*: each pool dispatch draws one
    dispatch fault (kill/slow/error/pickle share a single uniform draw,
    so their probabilities may sum to at most 1), each served response
    draws the socket drop independently. ``max_faults`` caps the total
    number of injected faults — the knob for "exactly one worker death"
    style tests.
    """

    seed: int = 0
    kill_prob: float = 0.0
    slow_prob: float = 0.0
    slow_seconds: float = 0.25
    error_prob: float = 0.0
    pickle_prob: float = 0.0
    drop_prob: float = 0.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in ("kill_prob", "slow_prob", "error_prob",
                     "pickle_prob", "drop_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        dispatch_total = (
            self.kill_prob + self.slow_prob
            + self.error_prob + self.pickle_prob
        )
        if dispatch_total > 1.0:
            raise ValueError(
                "dispatch fault probabilities must sum to <= 1, got "
                f"{dispatch_total}"
            )
        if self.slow_seconds < 0:
            raise ValueError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire under this config."""
        if self.max_faults == 0:
            return False
        return any(
            getattr(self, name) > 0.0
            for name in ("kill_prob", "slow_prob", "error_prob",
                         "pickle_prob", "drop_prob")
        )


class ChaosInjector:
    """Seeded fault source; one per process, shared across dispatches.

    Thread-safe: the serving layer dispatches from executor threads, so
    draws serialize on a lock. Determinism is per-injector — a fixed
    seed and a fixed sequence of draw calls reproduce the same faults.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)  # guarded-by: _lock
        self._lock = threading.Lock()
        self._injected = 0  # guarded-by: _lock
        self.injected_by_kind: dict[str, int] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    def _budget_left(self) -> bool:  # holds-lock: _lock
        return (
            self.config.max_faults is None
            or self._injected < self.config.max_faults
        )

    def _record(self, kind: str) -> None:  # holds-lock: _lock
        self._injected += 1
        self.injected_by_kind[kind] = (
            self.injected_by_kind.get(kind, 0) + 1
        )

    def draw_dispatch(self) -> Fault | None:
        """One fault decision for a pool dispatch (or ``None``)."""
        config = self.config
        with self._lock:
            if not self._budget_left():
                return None
            roll = self._rng.random()
            threshold = 0.0
            for kind, probability in (
                ("kill", config.kill_prob),
                ("slow", config.slow_prob),
                ("error", config.error_prob),
                ("pickle", config.pickle_prob),
            ):
                threshold += probability
                if probability > 0.0 and roll < threshold:
                    self._record(kind)
                    return Fault(kind, config.slow_seconds)
            return None

    def draw_drop(self) -> bool:
        """Whether to abort the client socket for this response."""
        with self._lock:
            if self.config.drop_prob <= 0.0 or not self._budget_left():
                return False
            if self._rng.random() < self.config.drop_prob:
                self._record("drop")
                return True
            return False

    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        with self._lock:
            return self._injected

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "seed": self.config.seed,
                "injected": self._injected,
                "by_kind": dict(self.injected_by_kind),
            }


# ----------------------------------------------------------------------
# Worker-side fault application
# ----------------------------------------------------------------------
class _Unpicklable:
    """A result whose pickling fails — the 'pickle' fault payload."""

    def __reduce__(self):
        raise pickle.PicklingError(
            "chaos: injected unpicklable worker result"
        )


def apply_fault(fault: Fault | None):
    """Apply a dispatch fault inside the worker process.

    Returns ``None`` for no fault (or the survivable ``slow`` fault,
    which sleeps and lets the task proceed); returns a poison object
    for ``pickle`` (the caller must return it verbatim so the result
    pickling fails); never returns for ``kill`` and ``error``.
    """
    if fault is None:
        return None
    if fault.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if fault.kind == "slow":
        time.sleep(fault.seconds)
        return None
    if fault.kind == "error":
        raise ChaosError("chaos: injected executor exception")
    if fault.kind == "pickle":
        return _Unpicklable()
    raise ValueError(f"unknown fault kind {fault.kind!r}")


# ----------------------------------------------------------------------
# Environment gating
# ----------------------------------------------------------------------
#: REPRO_CHAOS key -> ChaosConfig field (probabilities accept the short
#: fault name; everything else uses the field name).
_ENV_KEYS = {
    "kill": "kill_prob",
    "slow": "slow_prob",
    "error": "error_prob",
    "pickle": "pickle_prob",
    "drop": "drop_prob",
    "max": "max_faults",
    **{f.name: f.name for f in fields(ChaosConfig)},
}

_INT_FIELDS = {"seed", "max_faults"}


def parse_chaos_spec(spec: str) -> ChaosConfig:
    """Parse a ``key=value,...`` chaos spec (the ``REPRO_CHAOS`` format).

    Keys are the short fault names (``kill=0.2``) or ``ChaosConfig``
    field names (``slow_seconds=0.5``, ``seed=7``, ``max=10``). Raises
    ``ValueError`` on unknown keys or malformed values.
    """
    values: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, separator, raw = part.partition("=")
        key = key.strip().lower()
        if not separator:
            raise ValueError(
                f"malformed chaos spec entry {part!r}; expected key=value"
            )
        field_name = _ENV_KEYS.get(key)
        if field_name is None:
            raise ValueError(
                f"unknown chaos spec key {key!r}; known: "
                f"{sorted(set(_ENV_KEYS))}"
            )
        values[field_name] = (
            int(raw) if field_name in _INT_FIELDS else float(raw)
        )
    return ChaosConfig(**values)  # type: ignore[arg-type]


def chaos_from_env(environ=None) -> ChaosInjector | None:
    """Build an injector from ``REPRO_CHAOS``, or ``None`` when unset.

    An empty value (or one whose probabilities are all zero) also
    yields ``None`` so the production path keeps its single
    ``is None`` check as the only cost.
    """
    environ = environ if environ is not None else os.environ
    spec = environ.get(CHAOS_ENV_VAR, "").strip()
    if not spec:
        return None
    config = parse_chaos_spec(spec)
    if not config.enabled:
        return None
    return ChaosInjector(config)
