"""Circuit breaker implementing the backend degradation ladder.

The paper's anytime algorithms degrade *within* a run; this breaker
degrades *across* runs: when worker processes keep failing, the
:class:`~repro.core.service.OptimizerService` steps down a ladder of
ever-more-conservative backends — ``processes`` (real parallelism, real
failure modes) → ``threads`` (GIL-bound but crash-isolated from worker
death) → ``inline`` (nothing left to break but the interpreter itself).

State machine, per ladder level:

* **closed** (level 0, healthy): every request runs on the preferred
  backend; consecutive infrastructure failures count up.
* **open** (level > 0): requests run on the degraded backend. After
  ``cooldown_s`` the breaker goes **half-open**: it hands out exactly
  one *probe* at the next-healthier level. A successful probe recovers
  one level; a failed probe restarts the cooldown, and
  ``failure_threshold`` consecutive failed probes push one level
  further down (that is how ``threads`` eventually yields to
  ``inline`` even though thread backends cannot crash workers).

The breaker is thread-safe (service dispatch happens on executor
threads) and clock-injectable so tests drive the cooldown without
sleeping. Only *infrastructure* failures feed it — worker crashes,
heartbeat timeouts, broken pools — never optimizer results: a timeout
or a deadline miss is the paper's expected behavior, not a fault.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

__all__ = ["CircuitBreaker", "BreakerDecision"]


class BreakerDecision:
    """What the breaker told one dispatch to do (pass back on outcome)."""

    __slots__ = ("level", "backend", "probe")

    def __init__(self, level: int, backend: str, probe: bool) -> None:
        self.level = level
        self.backend = backend
        self.probe = probe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BreakerDecision(level={self.level}, "
            f"backend={self.backend!r}, probe={self.probe})"
        )


class CircuitBreaker:
    """Degradation ladder with half-open probing.

    ``ladder`` orders backends healthiest-first; ``level`` indexes the
    rung requests currently run on. ``failure_threshold`` consecutive
    failures at the current level trip one rung down; a successful
    probe recovers one rung up.
    """

    def __init__(
        self,
        ladder: Sequence[str] = ("processes", "threads", "inline"),
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if not ladder:
            raise ValueError("ladder must name at least one backend")
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.ladder = tuple(ladder)
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._now = time_source
        self._lock = threading.Lock()
        self._level = 0  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._probe_failures = 0  # guarded-by: _lock
        self._opened_at: float | None = None  # guarded-by: _lock
        self._probe_outstanding = False  # guarded-by: _lock
        #: Lifetime trip / recovery counters (for metrics snapshots).
        self.trips = 0  # guarded-by: _lock
        self.recoveries = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def backend(self) -> str:
        """Backend of the current ladder level."""
        with self._lock:
            return self.ladder[self._level]

    @property
    def tripped(self) -> bool:
        with self._lock:
            return self._level > 0

    # ------------------------------------------------------------------
    def decide(self) -> BreakerDecision:
        """Choose the backend for one dispatch.

        Healthy (level 0) always runs the preferred backend. Degraded
        levels run their rung's backend — except that once per elapsed
        cooldown, one caller receives a half-open *probe* at the
        next-healthier level. The caller must report the outcome via
        :meth:`record_success` / :meth:`record_failure` with the same
        decision so the probe slot is released.
        """
        with self._lock:
            if (
                self._level > 0
                and not self._probe_outstanding
                and self._opened_at is not None
                and self._now() - self._opened_at >= self.cooldown_s
            ):
                self._probe_outstanding = True
                probe_level = self._level - 1
                return BreakerDecision(
                    probe_level, self.ladder[probe_level], True
                )
            return BreakerDecision(
                self._level, self.ladder[self._level], False
            )

    def record_success(self, decision: BreakerDecision) -> bool:
        """Report a successful dispatch; returns True on recovery."""
        with self._lock:
            if decision.probe:
                self._probe_outstanding = False
                if decision.level < self._level:
                    self._level = decision.level
                    self.recoveries += 1
                    self._failures = 0
                    self._probe_failures = 0
                    self._opened_at = (
                        self._now() if self._level > 0 else None
                    )
                    return True
                return False
            if decision.level == self._level:
                self._failures = 0
            return False

    def record_failure(self, decision: BreakerDecision) -> bool:
        """Report an infrastructure failure; returns True if it tripped."""
        with self._lock:
            if decision.probe:
                self._probe_outstanding = False
                self._probe_failures += 1
                self._opened_at = self._now()  # restart the cooldown
                if (
                    self._probe_failures >= self.failure_threshold
                    and self._level < len(self.ladder) - 1
                ):
                    self._level += 1
                    self.trips += 1
                    self._probe_failures = 0
                    return True
                return False
            if decision.level != self._level:
                return False  # stale report from before a transition
            self._failures += 1
            if (
                self._failures >= self.failure_threshold
                and self._level < len(self.ladder) - 1
            ):
                self._level += 1
                self.trips += 1
                self._failures = 0
                self._probe_failures = 0
                self._opened_at = self._now()
                return True
            return False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Point-in-time state (safe to serialize)."""
        with self._lock:
            if self._level == 0:
                state = "closed"
            elif self._probe_outstanding:
                state = "half_open"
            else:
                state = "open"
            return {
                "state": state,
                "level": self._level,
                "backend": self.ladder[self._level],
                "consecutive_failures": self._failures,
                "trips": self.trips,
                "recoveries": self.recoveries,
            }
