"""A small iterator-model executor for optimizer plans.

Executes :class:`~repro.plans.plan.Plan` trees over synthetic rows from
:class:`~repro.engine.datagen.DataGenerator`. The paper did not execute
its extended operators ("we did not implement those operators in the
execution engine"); this module goes one step further so the repository
can validate its own cost substrate: tests compare executed against
estimated cardinalities, and the sampling scan's measured tuple loss
against the loss objective.

Supported:

* sequential scans, sampling scans (Bernoulli row sampling at the
  configured rate), index scans (executed as filtered scans — the
  physical access path only affects cost, not results);
* hash joins, sort-merge joins, nested-loop joins, and index-nested-loop
  joins (executed as hash lookups into the built inner, which is
  result-equivalent).

Filter predicates are *selectivity* predicates in the optimizer model,
so execution applies them as deterministic pseudo-random row filters
with matching probability — preserving the statistical contract without
needing a full expression language.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.engine.datagen import DataGenerator, Row
from repro.exceptions import ReproError
from repro.plans.operators import JoinMethod, ScanMethod
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.predicate import FilterPredicate, JoinPredicate
from repro.query.query import Query


class ExecutionError(ReproError):
    """Raised when a plan cannot be executed by the mini engine."""


def filter_passes(
    seed: int, alias: str, predicate: FilterPredicate, value: object
) -> bool:
    """Whether ``value`` passes a selectivity predicate's keyed draw.

    This is the engine's filter semantics in one place: the draw is
    keyed on the column *value*, so the same value passes or fails
    consistently across scans of the same table — matching how a real
    value-based predicate behaves. The calibration harness
    (:mod:`repro.workloads.calibrate`) reuses this exact draw to measure
    realized selectivities, so measured and executed filters agree by
    construction.
    """
    rng = random.Random(f"{seed}:{alias}:{predicate.column}:{value}")
    return rng.random() < predicate.selectivity


class WorkCounters:
    """Actual work performed by one plan execution.

    ``rows_scanned`` counts base-table rows read, ``rows_joined`` the
    operand rows flowing through join operators (split into
    ``rows_built`` for build/materialized inners and ``rows_probed``
    for streamed outers), ``rows_emitted`` the final output size. Tests
    correlate these against the cost model's estimates (higher estimated
    CPU should mean more executed work).
    """

    __slots__ = ("rows_scanned", "rows_joined", "rows_built",
                 "rows_probed", "rows_emitted")

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_joined = 0
        self.rows_built = 0
        self.rows_probed = 0
        self.rows_emitted = 0

    @property
    def total(self) -> int:
        """Aggregate work units."""
        return self.rows_scanned + self.rows_joined + self.rows_emitted


class Executor:
    """Executes plan trees over synthetic data."""

    def __init__(self, generator: DataGenerator, query: Query,
                 seed: int = 0) -> None:
        self.generator = generator
        self.query = query
        self.seed = seed
        #: Work counters of the most recent :meth:`execute` call.
        self.last_work: WorkCounters = WorkCounters()

    # ------------------------------------------------------------------
    def execute(self, plan: Plan) -> list[Row]:
        """Run the plan and return its output rows.

        Output rows are merged dictionaries whose keys are prefixed by
        the alias (``alias.column``) to keep self-joins unambiguous.
        Work performed is recorded in :attr:`last_work`.
        """
        self.last_work = WorkCounters()
        rows = self._execute(plan)
        self.last_work.rows_emitted = len(rows)
        return rows

    def _execute(self, plan: Plan) -> list[Row]:
        if isinstance(plan, ScanPlan):
            return self._execute_scan(plan)
        if isinstance(plan, JoinPlan):
            return self._execute_join(plan)
        raise ExecutionError(f"unsupported plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------
    def _execute_scan(self, plan: ScanPlan) -> list[Row]:
        rows = self.generator.rows(plan.table_name)
        if plan.spec.method is ScanMethod.SAMPLE:
            rate = plan.spec.sampling_rate
            rng = random.Random(f"{self.seed}:sample:{plan.alias}")
            rows = (row for row in rows if rng.random() < rate)
        filters = self.query.filters_on(plan.alias)
        output = []
        scanned = 0
        for row in rows:
            scanned += 1
            if self._passes_filters(plan.alias, row, filters):
                output.append(
                    {f"{plan.alias}.{k}": v for k, v in row.items()}
                )
        self.last_work.rows_scanned += scanned
        return output

    def _passes_filters(
        self,
        alias: str,
        row: Row,
        filters: tuple[FilterPredicate, ...],
    ) -> bool:
        """Apply selectivity predicates as deterministic random filters.

        The draw is keyed on the column *value*, so the same value
        passes or fails consistently across scans of the same table —
        matching how a real value-based predicate behaves.
        """
        for predicate in filters:
            if not filter_passes(self.seed, alias, predicate,
                                 row[predicate.column]):
                return False
        return True

    # ------------------------------------------------------------------
    def _execute_join(self, plan: JoinPlan) -> list[Row]:
        left_rows = self._execute(plan.left)
        if plan.spec.method is JoinMethod.INDEX_NESTED_LOOP:
            right_rows = self._execute_scan(_probe_as_scan(plan.right))
        else:
            right_rows = self._execute(plan.right)
        # The engine always builds on the right input and probes with
        # the left one (see :func:`_hash_join`).
        self.last_work.rows_joined += len(left_rows) + len(right_rows)
        self.last_work.rows_built += len(right_rows)
        self.last_work.rows_probed += len(left_rows)
        predicates = self._predicates_for(plan)
        if not predicates:
            # Cartesian product.
            return [
                {**left_row, **right_row}
                for left_row in left_rows
                for right_row in right_rows
            ]
        return _hash_join(left_rows, right_rows, predicates,
                          plan.left.aliases, plan.right.aliases)

    def _predicates_for(self, plan: JoinPlan) -> list[JoinPredicate]:
        left_aliases = plan.left.aliases
        right_aliases = plan.right.aliases
        predicates = []
        for join in self.query.joins:
            a, b = tuple(join.aliases)
            if (a in left_aliases and b in right_aliases) or (
                a in right_aliases and b in left_aliases
            ):
                predicates.append(join)
        return predicates


def _probe_as_scan(probe: ScanPlan) -> ScanPlan:
    """View an index-probe inner as a plain scan for execution."""
    if probe.probe_info is None:
        return probe
    return probe


def _hash_join(
    left_rows: Iterable[Row],
    right_rows: Iterable[Row],
    predicates: list[JoinPredicate],
    left_aliases: frozenset[str],
    right_aliases: frozenset[str],
) -> list[Row]:
    """Equi-join on all predicates via one composite hash key.

    All join operators produce the same result set, so the engine
    executes every method as a hash join (the plan's operator choice
    affects cost, not semantics).
    """

    def key_columns(aliases: frozenset[str]) -> list[str]:
        columns = []
        for predicate in predicates:
            for alias in predicate.aliases:
                if alias in aliases:
                    bound_alias, column = predicate.side(alias)
                    columns.append(f"{bound_alias}.{column}")
        return columns

    left_key_columns = key_columns(left_aliases)
    right_key_columns = key_columns(right_aliases)
    table: dict[tuple, list[Row]] = {}
    for row in right_rows:
        key = tuple(row[c] for c in right_key_columns)
        table.setdefault(key, []).append(row)
    output = []
    for row in left_rows:
        key = tuple(row[c] for c in left_key_columns)
        for match in table.get(key, ()):
            output.append({**row, **match})
    return output
