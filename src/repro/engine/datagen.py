"""Synthetic data generation for the execution engine.

The optimizer itself never touches rows — like the paper's prototype it
works purely on catalog statistics. This generator exists so the
(optional) execution engine can *validate* the substrate: it fabricates
rows whose statistical profile matches the catalog (cardinalities and
distinct counts), which lets tests check that estimated cardinalities
track executed cardinalities.

Rows are dictionaries keyed by column name. Values are deterministic
functions of a seed, the table and the row index, so tests are
reproducible without storing any data.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.catalog.column import DataType
from repro.catalog.schema import Schema
from repro.catalog.table import Table

Row = dict[str, object]


class DataGenerator:
    """Deterministic row generator matching catalog statistics."""

    def __init__(self, schema: Schema, seed: int = 0) -> None:
        self.schema = schema
        self.seed = seed

    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> Iterator[Row]:
        """Generate all rows of ``table_name``."""
        table = self.schema.table(table_name)
        rng = random.Random(f"{self.seed}:{table_name}")
        for row_index in range(table.row_count):
            yield self._make_row(table, row_index, rng)

    def materialize(self, table_name: str) -> list[Row]:
        """All rows of ``table_name`` as a list."""
        return list(self.rows(table_name))

    # ------------------------------------------------------------------
    def _make_row(self, table: Table, row_index: int, rng: random.Random) -> Row:
        row: Row = {}
        for column in table.columns:
            ndv = max(1, min(column.n_distinct, table.row_count))
            is_key = ndv >= table.row_count
            if is_key:
                # Key-like column: unique, dense values.
                value_index = row_index
            else:
                # Non-key column: uniform draw over the distinct values.
                value_index = rng.randrange(ndv)
            row[column.name] = _render(column.data_type, column.name,
                                       value_index)
        return row


def _render(data_type: DataType, column_name: str, value_index: int) -> object:
    """Turn a distinct-value index into a typed value."""
    if data_type in (DataType.INTEGER, DataType.BIGINT):
        return value_index
    if data_type is DataType.DECIMAL:
        return round(value_index + value_index / 100.0, 2)
    if data_type is DataType.DATE:
        # Days since an epoch; comparisons behave like dates.
        return value_index
    return f"{column_name}_{value_index}"
