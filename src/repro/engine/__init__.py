"""Optional execution substrate: synthetic data + iterator executor."""

from repro.engine.datagen import DataGenerator, Row
from repro.engine.executor import (
    ExecutionError,
    Executor,
    WorkCounters,
    filter_passes,
)

__all__ = [
    "DataGenerator",
    "ExecutionError",
    "Executor",
    "Row",
    "WorkCounters",
    "filter_passes",
]
