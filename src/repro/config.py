"""Optimizer configuration: operator space, parallelism, timeouts.

The defaults replicate the paper's extended Postgres plan space:
sampling scans over 1%..5% of a base table, joins parameterized by a
degree of parallelism of up to 4, and the two Postgres search-space
heuristics (no Cartesian products unless unavoidable, per-block
optimization) which are hard-wired in the enumerator.

The paper used a two-hour timeout on a 12-core Xeon running C code; the
default here is seconds-scale because pure Python is orders of magnitude
slower — the timeout *mechanism* (finish quickly, keeping a single plan
for untreated table sets) is identical.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.exceptions import OptimizerError
from repro.plans.operators import DEFAULT_SAMPLING_RATES, MAX_DOP, JoinMethod


class PlanShape(enum.Enum):
    """Shape of the enumerated join trees.

    The paper extends Ganguly et al.'s (left-deep) algorithm "to
    generate bushy plans in addition to left-deep plans"; the left-deep
    restriction is kept for ablation (smaller search space, possibly
    worse plans).
    """

    BUSHY = "bushy"
    LEFT_DEEP = "left_deep"


@dataclass(frozen=True)
class OptimizerConfig:
    """Plan-space and resource limits for one optimizer instance."""

    #: Degrees of parallelism offered for join operators.
    dop_values: tuple[int, ...] = (1, 2, 3, 4)

    #: Sampling rates offered by the sampling scan; empty disables sampling.
    sampling_rates: tuple[float, ...] = DEFAULT_SAMPLING_RATES

    #: Join methods available to the enumerator.
    join_methods: tuple[JoinMethod, ...] = (
        JoinMethod.HASH,
        JoinMethod.MERGE,
        JoinMethod.NESTED_LOOP,
        JoinMethod.INDEX_NESTED_LOOP,
    )

    #: Whether index scans are offered as base-table access paths.
    enable_index_scans: bool = True

    #: Join-tree shape: bushy (the paper's extension, default) or
    #: left-deep (the original Ganguly et al. / Selinger space).
    plan_shape: PlanShape = PlanShape.BUSHY

    #: Wall-clock optimization timeout in seconds; ``None`` disables it.
    timeout_seconds: float | None = None

    #: How many candidate plans to generate between timeout checks.
    timeout_check_interval: int = 256

    #: Whether plan enumeration runs the batched (numpy) hot path. The
    #: vectorized path produces bit-for-bit identical plan sets to the
    #: scalar per-candidate loop (a property-tested contract, see
    #: :mod:`repro.core.dp`); the flag exists for ablation and
    #: debugging, not because the paths can disagree.
    vectorized_enumeration: bool = True

    #: Whether the DP loop accumulates per-phase wall-clock timers
    #: (enumerate/kernel/prune/materialize) into its
    #: :class:`~repro.core.instrumentation.Counters`. Timing happens at
    #: block granularity only, so the overhead is a few clock reads per
    #: candidate batch; disable for the leanest possible hot path.
    phase_timers: bool = True

    # Fields deliberately excluded from fingerprint() — REP005 enforces
    # that every exclusion is listed here. Both flags change *how* the
    # DP runs (batched vs scalar, timed vs untimed), never which plans
    # come out, so cached results are valid across their settings.
    _FINGERPRINT_EXCLUDED = frozenset({
        "vectorized_enumeration",
        "phase_timers",
    })

    def __post_init__(self) -> None:
        if not self.dop_values:
            raise OptimizerError("dop_values must be non-empty")
        for dop in self.dop_values:
            if not 1 <= dop <= MAX_DOP:
                raise OptimizerError(f"DOP {dop} outside [1, {MAX_DOP}]")
        if len(set(self.dop_values)) != len(self.dop_values):
            raise OptimizerError("dop_values must be distinct")
        for rate in self.sampling_rates:
            if not 0.0 < rate < 1.0:
                raise OptimizerError(f"sampling rate {rate} outside (0, 1)")
        if not self.join_methods:
            raise OptimizerError("at least one join method is required")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise OptimizerError("timeout_seconds must be > 0")
        if self.timeout_check_interval < 1:
            raise OptimizerError("timeout_check_interval must be >= 1")

    @property
    def num_join_configs(self) -> int:
        """Number of join operator configurations (method x DOP)."""
        return len(self.join_methods) * len(self.dop_values)

    def fingerprint(self) -> str:
        """Stable canonical string for cache keys.

        Operator sets are order-normalized (sorted) so two configs that
        list the same join methods or DOPs in a different order
        canonicalize identically. All result-affecting fields
        participate — including the timeout, since it changes which
        plans a run can produce. ``vectorized_enumeration`` is
        deliberately excluded: the batched and scalar paths are
        bit-for-bit identical, so results cached under one are valid
        for the other. ``phase_timers`` is excluded for the same
        reason — it only changes what gets *measured*, never which
        plans are produced.
        """
        return (
            "cfg["
            f"dop={tuple(sorted(self.dop_values))!r};"
            f"rates={tuple(sorted(self.sampling_rates))!r};"
            f"joins={tuple(sorted(m.value for m in self.join_methods))!r};"
            f"index={self.enable_index_scans};"
            f"shape={self.plan_shape.value};"
            f"timeout={self.timeout_seconds!r};"
            f"interval={self.timeout_check_interval}"
            "]"
        )

    def with_timeout(self, timeout_seconds: float | None) -> "OptimizerConfig":
        """Copy of this configuration with a different timeout."""
        return dataclasses.replace(self, timeout_seconds=timeout_seconds)

    def without_sampling(self) -> "OptimizerConfig":
        """Copy of this configuration with sampling scans disabled.

        Used by the single-objective Selinger baseline: without sampling
        every plan for a table set has the same output cardinality, which
        is what makes scalar pruning exact (the classic single-objective
        setting; the original Postgres optimizer has no sampling scan).
        """
        return dataclasses.replace(self, sampling_rates=())


#: Full plan space (paper's setup), no timeout.
DEFAULT_CONFIG = OptimizerConfig()

#: Reduced plan space for fast unit tests and small benchmarks.
FAST_CONFIG = OptimizerConfig(
    dop_values=(1, 2),
    sampling_rates=(0.01, 0.05),
)

#: Single-objective-style plan space (no sampling, serial operators).
SERIAL_CONFIG = OptimizerConfig(
    dop_values=(1,),
    sampling_rates=(),
)
