"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class. The individual subclasses mirror the main
subsystems (catalog, query model, cost model, optimizer).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Raised for inconsistent schema or statistics definitions."""


class UnknownTableError(CatalogError):
    """Raised when a table name cannot be resolved in a schema."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(CatalogError):
    """Raised when a column name cannot be resolved in a table."""

    def __init__(self, table_name: str, column_name: str) -> None:
        super().__init__(f"unknown column: {table_name!r}.{column_name!r}")
        self.table_name = table_name
        self.column_name = column_name


class QueryModelError(ReproError):
    """Raised for malformed queries (bad aliases, dangling predicates...)."""


class CostModelError(ReproError):
    """Raised when cost estimation receives invalid inputs."""


class OptimizerError(ReproError):
    """Raised for invalid optimizer invocations (bad weights, bounds...)."""


class WorkerCrashError(ReproError):
    """Raised when a pool worker died (or hung past its heartbeat) and
    the at-most-once re-dispatch also failed. Transient by contract:
    callers may retry on a fresh pool or degrade to another backend."""


class RequestValidationError(OptimizerError):
    """Raised when an :class:`~repro.core.request.OptimizationRequest`
    fails declarative validation (bad field types, invalid deadline,
    capability mismatch with the chosen algorithm)."""


class InvalidPrecisionError(OptimizerError):
    """Raised when an approximation factor alpha < 1 is requested."""

    def __init__(self, alpha: float) -> None:
        super().__init__(f"approximation factor must be >= 1, got {alpha}")
        self.alpha = alpha
