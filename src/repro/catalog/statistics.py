"""Histogram-based selectivity estimation.

The TPC-H queries in this repository carry explicit selectivities taken
from the benchmark specification. For user-authored queries this module
provides what a production optimizer derives from ANALYZE-style
statistics: equi-depth histograms per column, and selectivity
estimation for equality and range predicates against them — so a
predicate can be written as *values* (``l_quantity < 24``) instead of a
hand-picked fraction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.catalog.table import Table
from repro.exceptions import CatalogError
from repro.query.predicate import FilterPredicate

#: Default number of buckets (Postgres' default_statistics_target / 10).
DEFAULT_BUCKETS = 10


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over a numeric column.

    ``bounds`` holds ``len(buckets) + 1`` ascending bucket boundaries;
    each bucket carries (approximately) the same number of rows.
    ``n_distinct`` feeds equality-selectivity estimation.
    """

    column_name: str
    bounds: tuple[float, ...]
    row_count: int
    n_distinct: int

    def __post_init__(self) -> None:
        if len(self.bounds) < 2:
            raise CatalogError("histogram needs at least one bucket")
        if list(self.bounds) != sorted(self.bounds):
            raise CatalogError("histogram bounds must be ascending")
        if self.row_count < 0 or self.n_distinct < 1:
            raise CatalogError("invalid histogram statistics")

    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        column_name: str,
        values: Sequence[float],
        buckets: int = DEFAULT_BUCKETS,
    ) -> "Histogram":
        """Build an equi-depth histogram from a value sample."""
        if not values:
            raise CatalogError("cannot build a histogram from no values")
        ordered = sorted(float(v) for v in values)
        buckets = max(1, min(buckets, len(ordered)))
        bounds = [ordered[0]]
        for i in range(1, buckets):
            bounds.append(ordered[i * len(ordered) // buckets])
        bounds.append(ordered[-1])
        # Collapse duplicate boundaries (heavily skewed samples).
        deduped = [bounds[0]]
        for bound in bounds[1:]:
            deduped.append(max(bound, deduped[-1]))
        return cls(
            column_name=column_name,
            bounds=tuple(deduped),
            row_count=len(ordered),
            n_distinct=len(set(ordered)),
        )

    @classmethod
    def uniform(
        cls,
        column_name: str,
        low: float,
        high: float,
        row_count: int,
        n_distinct: int,
        buckets: int = DEFAULT_BUCKETS,
    ) -> "Histogram":
        """Histogram of a uniformly distributed column (synthetic stats)."""
        if high < low:
            raise CatalogError("uniform histogram needs low <= high")
        step = (high - low) / buckets if buckets else 0.0
        bounds = tuple(low + step * i for i in range(buckets)) + (high,)
        return cls(
            column_name=column_name,
            bounds=bounds,
            row_count=row_count,
            n_distinct=max(1, n_distinct),
        )

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of equi-depth buckets."""
        return len(self.bounds) - 1

    @property
    def low(self) -> float:
        return self.bounds[0]

    @property
    def high(self) -> float:
        return self.bounds[-1]

    def less_than_selectivity(self, value: float) -> float:
        """Fraction of rows with column value < ``value``."""
        if value <= self.low:
            return 0.0
        if value > self.high:
            return 1.0
        position = bisect.bisect_right(self.bounds, value) - 1
        position = min(position, self.num_buckets - 1)
        bucket_low = self.bounds[position]
        bucket_high = self.bounds[position + 1]
        if bucket_high > bucket_low:
            within = (value - bucket_low) / (bucket_high - bucket_low)
        else:
            within = 0.5  # point bucket: assume half the ties qualify
        return (position + min(max(within, 0.0), 1.0)) / self.num_buckets

    def range_selectivity(self, low: float | None, high: float | None) -> float:
        """Fraction of rows with ``low <= value < high`` (None = open)."""
        upper = self.less_than_selectivity(high) if high is not None else 1.0
        lower = self.less_than_selectivity(low) if low is not None else 0.0
        return max(0.0, min(1.0, upper - lower))

    def equality_selectivity(self, value: float) -> float:
        """Fraction of rows equal to ``value`` (uniform-ndv assumption)."""
        if value < self.low or value > self.high:
            return 0.0
        return 1.0 / self.n_distinct


def histogram_from_rows(
    column_name: str,
    rows: Sequence[dict],
    buckets: int = DEFAULT_BUCKETS,
) -> Histogram:
    """Build an equi-depth histogram from generated table rows.

    Convenience bridge between :class:`repro.engine.datagen.DataGenerator`
    output (dict rows) and :meth:`Histogram.from_values` — the
    ANALYZE-over-a-sample step of data-driven calibration.
    """
    if not rows:
        raise CatalogError("cannot build a histogram from no rows")
    try:
        values = [row[column_name] for row in rows]
    except KeyError:
        raise CatalogError(
            f"rows have no column {column_name!r}"
        ) from None
    return Histogram.from_values(column_name, values, buckets=buckets)


def range_predicate(
    table: Table,
    alias: str,
    column_name: str,
    histogram: Histogram,
    low: float | None = None,
    high: float | None = None,
) -> FilterPredicate:
    """Build a filter predicate from a value range via the histogram.

    Selectivities are clamped to the query model's (0, 1] domain: an
    empty range is represented by the smallest representable fraction
    of one row.
    """
    if histogram.column_name != column_name:
        raise CatalogError(
            f"histogram is for {histogram.column_name!r}, not {column_name!r}"
        )
    table.column(column_name)  # validates the column exists
    selectivity = histogram.range_selectivity(low, high)
    floor = 1.0 / max(table.row_count, 1)
    selectivity = min(1.0, max(selectivity, floor))
    bounds_text = (
        f"{low if low is not None else '-inf'} <= {column_name} < "
        f"{high if high is not None else 'inf'}"
    )
    return FilterPredicate(
        alias=alias,
        column=column_name,
        selectivity=selectivity,
        description=bounds_text,
    )


def equality_predicate(
    table: Table,
    alias: str,
    column_name: str,
    histogram: Histogram,
    value: float,
) -> FilterPredicate:
    """Build an equality filter predicate via the histogram."""
    if histogram.column_name != column_name:
        raise CatalogError(
            f"histogram is for {histogram.column_name!r}, not {column_name!r}"
        )
    table.column(column_name)
    selectivity = histogram.equality_selectivity(value)
    floor = 1.0 / max(table.row_count, 1)
    selectivity = min(1.0, max(selectivity, floor))
    return FilterPredicate(
        alias=alias,
        column=column_name,
        selectivity=selectivity,
        description=f"{column_name} = {value}",
    )
