"""Index metadata (B-tree style) used for index-scan costing."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import CatalogError

#: Fan-out assumed for B-tree height estimation.
BTREE_FANOUT = 256

#: Entries per leaf page (key + pointer packing).
LEAF_ENTRIES_PER_PAGE = 350


@dataclass(frozen=True)
class Index:
    """A B-tree index over one or more columns of a base table.

    Only statistics needed by the cost model are kept: the table, the key
    columns (lookup uses the leading column), uniqueness, and the indexed
    row count from which height and leaf page counts are derived.
    """

    name: str
    table_name: str
    column_names: tuple[str, ...]
    row_count: int
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.column_names:
            raise CatalogError(f"index {self.name!r} must cover >= 1 column")
        if self.row_count < 0:
            raise CatalogError("index row_count must be >= 0")

    @property
    def leading_column(self) -> str:
        """First key column — the one usable for single-column lookups."""
        return self.column_names[0]

    @property
    def leaf_pages(self) -> int:
        """Estimated number of leaf pages."""
        return max(1, math.ceil(self.row_count / LEAF_ENTRIES_PER_PAGE))

    @property
    def height(self) -> int:
        """Estimated number of inner levels above the leaves (>= 1)."""
        if self.row_count <= LEAF_ENTRIES_PER_PAGE:
            return 1
        return max(1, math.ceil(math.log(self.leaf_pages, BTREE_FANOUT)) + 1)

    def covers(self, column_name: str) -> bool:
        """Whether ``column_name`` is the leading key of this index."""
        return self.leading_column == column_name
