"""Schema container: tables plus their indexes."""

from __future__ import annotations

from typing import Iterable

from repro.catalog.index import Index
from repro.catalog.table import Table
from repro.exceptions import CatalogError, UnknownTableError


class Schema:
    """A named collection of tables and indexes.

    The schema is the root object the optimizer is constructed over; it
    plays the role of the database catalog.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}
        self._indexes_by_table: dict[str, list[Index]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        """Register ``table``; raises on duplicate names."""
        if table.name in self._tables:
            raise CatalogError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table
        self._indexes_by_table.setdefault(table.name, [])
        return table

    def add_index(self, index: Index) -> Index:
        """Register ``index``; the indexed table and columns must exist."""
        if index.name in self._indexes:
            raise CatalogError(f"duplicate index {index.name!r}")
        table = self.table(index.table_name)
        for column_name in index.column_names:
            if not table.has_column(column_name):
                raise CatalogError(
                    f"index {index.name!r} references unknown column "
                    f"{index.table_name}.{column_name}"
                )
        self._indexes[index.name] = index
        self._indexes_by_table.setdefault(index.table_name, []).append(index)
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise ``UnknownTableError``."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether a table named ``name`` exists."""
        return name in self._tables

    @property
    def tables(self) -> tuple[Table, ...]:
        """All tables in registration order."""
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables in registration order."""
        return tuple(self._tables)

    @property
    def indexes(self) -> tuple[Index, ...]:
        """All indexes in registration order."""
        return tuple(self._indexes.values())

    def indexes_on(self, table_name: str) -> tuple[Index, ...]:
        """All indexes on ``table_name`` (may be empty)."""
        self.table(table_name)
        return tuple(self._indexes_by_table.get(table_name, ()))

    def index_on_column(self, table_name: str, column_name: str) -> Index | None:
        """An index whose leading key is ``column_name``, if any."""
        for index in self.indexes_on(table_name):
            if index.covers(column_name):
                return index
        return None

    def scaled(self, factor: float) -> "Schema":
        """Return a new schema with all tables scaled by ``factor``."""
        scaled = Schema(name=f"{self.name}@x{factor:g}")
        for table in self.tables:
            scaled.add_table(table.scaled(factor))
        for index in self.indexes:
            scaled.add_index(
                Index(
                    name=index.name,
                    table_name=index.table_name,
                    column_names=index.column_names,
                    row_count=scaled.table(index.table_name).row_count,
                    unique=index.unique,
                )
            )
        return scaled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.name!r}, tables={list(self._tables)})"


def build_schema(
    name: str,
    tables: Iterable[Table],
    indexes: Iterable[Index] = (),
) -> Schema:
    """Convenience constructor for a schema from iterables."""
    schema = Schema(name)
    for table in tables:
        schema.add_table(table)
    for index in indexes:
        schema.add_index(index)
    return schema
