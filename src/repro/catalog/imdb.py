"""IMDB schema (Join Order Benchmark subset) with scaled statistics.

The Join Order Benchmark (JOB, Leis et al., "How Good Are Query
Optimizers, Really?") runs over the IMDB dataset. This module models the
subset of its tables that the 1..8-join chain families in
:mod:`repro.workloads.families` touch: ``title`` and its satellite
fact tables (``movie_companies``, ``cast_info``, ``movie_info``) plus
the small dimension tables they reference.

Cardinalities default to a deliberately tiny scale (~2.5k titles) so the
mini executor in :mod:`repro.engine` can materialize whole join results
for calibration and validation; ``row_scale`` grows the fact tables
linearly (dimension tables like ``kind_type``/``role_type`` stay fixed,
matching the real dataset where they are enumerations).
"""

from __future__ import annotations

from repro.catalog.column import Column, DataType
from repro.catalog.index import Index
from repro.catalog.schema import Schema
from repro.catalog.table import Table

#: Base-table cardinalities at ``row_scale=1`` (mini-IMDB).
BASE_ROW_COUNTS = {
    "kind_type": 7,
    "company_type": 4,
    "role_type": 12,
    "company_name": 1_200,
    "name": 2_000,
    "title": 2_500,
    "movie_companies": 4_000,
    "cast_info": 6_000,
    "movie_info": 5_000,
}

#: Enumeration-like dimension tables that do not grow with the data.
FIXED_SIZE_TABLES = frozenset({"kind_type", "company_type", "role_type"})

_INT = DataType.INTEGER
_VAR = DataType.VARCHAR


def _rows(table: str, row_scale: float) -> int:
    base = BASE_ROW_COUNTS[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(base * row_scale))


def imdb_schema(row_scale: float = 1.0) -> Schema:
    """Build the mini-IMDB schema with statistics at ``row_scale``.

    Every table gets a primary-key index plus indexes on all foreign-key
    columns, mirroring the physical design JOB assumes.
    """
    if row_scale <= 0:
        raise ValueError(f"row_scale must be > 0, got {row_scale}")

    schema = Schema(name=f"imdb@x{row_scale:g}")
    kind_type = _rows("kind_type", row_scale)
    company_type = _rows("company_type", row_scale)
    role_type = _rows("role_type", row_scale)
    company_name = _rows("company_name", row_scale)
    name = _rows("name", row_scale)
    title = _rows("title", row_scale)
    movie_companies = _rows("movie_companies", row_scale)
    cast_info = _rows("cast_info", row_scale)
    movie_info = _rows("movie_info", row_scale)

    def col(name_: str, dtype: DataType, ndv: int, width: int = 0) -> Column:
        return Column(name=name_, data_type=dtype, n_distinct=max(1, ndv),
                      byte_width=width)

    schema.add_table(Table("kind_type", (
        col("id", _INT, kind_type),
        col("kind", _VAR, kind_type, width=15),
    ), row_count=kind_type))

    schema.add_table(Table("company_type", (
        col("id", _INT, company_type),
        col("kind", _VAR, company_type, width=32),
    ), row_count=company_type))

    schema.add_table(Table("role_type", (
        col("id", _INT, role_type),
        col("role", _VAR, role_type, width=32),
    ), row_count=role_type))

    schema.add_table(Table("company_name", (
        col("id", _INT, company_name),
        col("name", _VAR, company_name, width=40),
        col("country_code", _VAR, 60, width=6),
    ), row_count=company_name))

    schema.add_table(Table("name", (
        col("id", _INT, name),
        col("name", _VAR, name, width=40),
        col("gender", _VAR, 3, width=1),
    ), row_count=name))

    schema.add_table(Table("title", (
        col("id", _INT, title),
        col("title", _VAR, title, width=60),
        col("kind_id", _INT, kind_type),
        col("production_year", _INT, 120),
    ), row_count=title))

    schema.add_table(Table("movie_companies", (
        col("id", _INT, movie_companies),
        col("movie_id", _INT, title),
        col("company_id", _INT, company_name),
        col("company_type_id", _INT, company_type),
        col("note", _VAR, min(movie_companies, 800), width=40),
    ), row_count=movie_companies))

    schema.add_table(Table("cast_info", (
        col("id", _INT, cast_info),
        col("movie_id", _INT, title),
        col("person_id", _INT, name),
        col("role_id", _INT, role_type),
        col("nr_order", _INT, 100),
    ), row_count=cast_info))

    schema.add_table(Table("movie_info", (
        col("id", _INT, movie_info),
        col("movie_id", _INT, title),
        col("info_type_id", _INT, 110),
        col("info", _VAR, min(movie_info, 3_000), width=40),
    ), row_count=movie_info))

    _add_indexes(schema)
    return schema


#: (index name, table, key column, unique) — primary keys and foreign keys.
_INDEX_SPECS = (
    ("kind_type_pkey", "kind_type", "id", True),
    ("company_type_pkey", "company_type", "id", True),
    ("role_type_pkey", "role_type", "id", True),
    ("company_name_pkey", "company_name", "id", True),
    ("name_pkey", "name", "id", True),
    ("title_pkey", "title", "id", True),
    ("title_kind_id_idx", "title", "kind_id", False),
    ("movie_companies_pkey", "movie_companies", "id", True),
    ("movie_companies_movie_id_idx", "movie_companies", "movie_id", False),
    ("movie_companies_company_id_idx", "movie_companies", "company_id", False),
    ("movie_companies_company_type_id_idx", "movie_companies",
     "company_type_id", False),
    ("cast_info_pkey", "cast_info", "id", True),
    ("cast_info_movie_id_idx", "cast_info", "movie_id", False),
    ("cast_info_person_id_idx", "cast_info", "person_id", False),
    ("cast_info_role_id_idx", "cast_info", "role_id", False),
    ("movie_info_pkey", "movie_info", "id", True),
    ("movie_info_movie_id_idx", "movie_info", "movie_id", False),
)


def _add_indexes(schema: Schema) -> None:
    for name, table_name, column, unique in _INDEX_SPECS:
        schema.add_index(
            Index(
                name=name,
                table_name=table_name,
                column_names=(column,),
                row_count=schema.table(table_name).row_count,
                unique=unique,
            )
        )
