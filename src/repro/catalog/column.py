"""Column metadata used by the statistics-driven cost model.

The optimizer never touches actual data; it reasons about columns through
the statistics stored here (average byte width, number of distinct values,
null fraction), exactly like the statistics a production optimizer reads
from the system catalog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DataType(enum.Enum):
    """Logical column types (width defaults derive from these)."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    CHAR = "char"
    VARCHAR = "varchar"
    DATE = "date"

    @property
    def default_width(self) -> int:
        """Average stored width in bytes for the type."""
        return _DEFAULT_WIDTHS[self]


_DEFAULT_WIDTHS = {
    DataType.INTEGER: 4,
    DataType.BIGINT: 8,
    DataType.DECIMAL: 8,
    DataType.CHAR: 12,
    DataType.VARCHAR: 24,
    DataType.DATE: 4,
}


@dataclass(frozen=True)
class Column:
    """Statistics for one column of a base table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    data_type:
        Logical type; determines the default byte width.
    n_distinct:
        Estimated number of distinct values. Used for join selectivity
        estimation (``1 / max(ndv_left, ndv_right)``).
    byte_width:
        Average width in bytes; defaults to the type's default width.
    null_fraction:
        Fraction of NULL values in ``[0, 1]``.
    """

    name: str
    data_type: DataType
    n_distinct: int
    byte_width: int = field(default=0)
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.n_distinct < 1:
            raise ValueError(f"n_distinct must be >= 1, got {self.n_distinct}")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError(
                f"null_fraction must be in [0, 1], got {self.null_fraction}"
            )
        if self.byte_width == 0:
            object.__setattr__(self, "byte_width", self.data_type.default_width)
        if self.byte_width < 1:
            raise ValueError(f"byte_width must be >= 1, got {self.byte_width}")

    def scaled(self, factor: float) -> "Column":
        """Return a copy with ``n_distinct`` scaled by ``factor`` (>= 1)."""
        return Column(
            name=self.name,
            data_type=self.data_type,
            n_distinct=max(1, int(self.n_distinct * factor)),
            byte_width=self.byte_width,
            null_fraction=self.null_fraction,
        )
