"""TPC-H schema and statistics at a configurable scale factor.

The statistics (cardinalities, distinct counts, widths) follow the TPC-H
specification at scale factor 1 and scale linearly with the scale factor
for the large tables, mirroring what a database catalog would hold after
loading a TPC-H database and running ANALYZE.
"""

from __future__ import annotations

from repro.catalog.column import Column, DataType
from repro.catalog.index import Index
from repro.catalog.schema import Schema
from repro.catalog.table import Table

#: Base-table cardinalities at scale factor 1, per the TPC-H specification.
SF1_ROW_COUNTS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}

#: Tables whose cardinality does not scale with the scale factor.
FIXED_SIZE_TABLES = frozenset({"region", "nation"})

_INT = DataType.INTEGER
_DEC = DataType.DECIMAL
_CHR = DataType.CHAR
_VAR = DataType.VARCHAR
_DAT = DataType.DATE


def _rows(table: str, scale_factor: float) -> int:
    base = SF1_ROW_COUNTS[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(base * scale_factor))


def tpch_schema(scale_factor: float = 1.0) -> Schema:
    """Build the TPC-H schema with statistics at ``scale_factor``.

    Every table gets a primary-key index plus indexes on all foreign-key
    columns — the physical design the paper's Postgres setup relies on for
    index-nested-loop joins.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be > 0, got {scale_factor}")

    schema = Schema(name=f"tpch@sf{scale_factor:g}")
    region = _rows("region", scale_factor)
    nation = _rows("nation", scale_factor)
    supplier = _rows("supplier", scale_factor)
    customer = _rows("customer", scale_factor)
    part = _rows("part", scale_factor)
    partsupp = _rows("partsupp", scale_factor)
    orders = _rows("orders", scale_factor)
    lineitem = _rows("lineitem", scale_factor)

    def col(name: str, dtype: DataType, ndv: int, width: int = 0) -> Column:
        return Column(name=name, data_type=dtype, n_distinct=max(1, ndv),
                      byte_width=width)

    schema.add_table(Table("region", (
        col("r_regionkey", _INT, region),
        col("r_name", _CHR, region),
        col("r_comment", _VAR, region, width=60),
    ), row_count=region))

    schema.add_table(Table("nation", (
        col("n_nationkey", _INT, nation),
        col("n_name", _CHR, nation),
        col("n_regionkey", _INT, region),
        col("n_comment", _VAR, nation, width=60),
    ), row_count=nation))

    schema.add_table(Table("supplier", (
        col("s_suppkey", _INT, supplier),
        col("s_name", _CHR, supplier, width=18),
        col("s_address", _VAR, supplier, width=25),
        col("s_nationkey", _INT, nation),
        col("s_phone", _CHR, supplier, width=15),
        col("s_acctbal", _DEC, supplier),
        col("s_comment", _VAR, supplier, width=60),
    ), row_count=supplier))

    schema.add_table(Table("customer", (
        col("c_custkey", _INT, customer),
        col("c_name", _VAR, customer, width=18),
        col("c_address", _VAR, customer, width=25),
        col("c_nationkey", _INT, nation),
        col("c_phone", _CHR, customer, width=15),
        col("c_acctbal", _DEC, customer),
        col("c_mktsegment", _CHR, 5, width=10),
        col("c_comment", _VAR, customer, width=70),
    ), row_count=customer))

    schema.add_table(Table("part", (
        col("p_partkey", _INT, part),
        col("p_name", _VAR, part, width=32),
        col("p_mfgr", _CHR, 5, width=25),
        col("p_brand", _CHR, 25, width=10),
        col("p_type", _VAR, 150, width=20),
        col("p_size", _INT, 50),
        col("p_container", _CHR, 40, width=10),
        col("p_retailprice", _DEC, min(part, 50_000)),
        col("p_comment", _VAR, part, width=15),
    ), row_count=part))

    schema.add_table(Table("partsupp", (
        col("ps_partkey", _INT, part),
        col("ps_suppkey", _INT, supplier),
        col("ps_availqty", _INT, 10_000),
        col("ps_supplycost", _DEC, min(partsupp, 100_000)),
        col("ps_comment", _VAR, partsupp, width=120),
    ), row_count=partsupp))

    schema.add_table(Table("orders", (
        col("o_orderkey", _INT, orders),
        col("o_custkey", _INT, customer),
        col("o_orderstatus", _CHR, 3, width=1),
        col("o_totalprice", _DEC, min(orders, 1_200_000)),
        col("o_orderdate", _DAT, 2_406),
        col("o_orderpriority", _CHR, 5, width=15),
        col("o_clerk", _CHR, min(orders, 1_000), width=15),
        col("o_shippriority", _INT, 1),
        col("o_comment", _VAR, orders, width=48),
    ), row_count=orders))

    schema.add_table(Table("lineitem", (
        col("l_orderkey", _INT, orders),
        col("l_partkey", _INT, part),
        col("l_suppkey", _INT, supplier),
        col("l_linenumber", _INT, 7),
        col("l_quantity", _DEC, 50),
        col("l_extendedprice", _DEC, min(lineitem, 930_000)),
        col("l_discount", _DEC, 11),
        col("l_tax", _DEC, 9),
        col("l_returnflag", _CHR, 3, width=1),
        col("l_linestatus", _CHR, 2, width=1),
        col("l_shipdate", _DAT, 2_526),
        col("l_commitdate", _DAT, 2_466),
        col("l_receiptdate", _DAT, 2_554),
        col("l_shipinstruct", _CHR, 4, width=25),
        col("l_shipmode", _CHR, 7, width=10),
        col("l_comment", _VAR, lineitem, width=27),
    ), row_count=lineitem))

    _add_indexes(schema)
    return schema


#: (index name, table, key column, unique) — primary keys and foreign keys.
_INDEX_SPECS = (
    ("region_pkey", "region", "r_regionkey", True),
    ("nation_pkey", "nation", "n_nationkey", True),
    ("nation_regionkey_idx", "nation", "n_regionkey", False),
    ("supplier_pkey", "supplier", "s_suppkey", True),
    ("supplier_nationkey_idx", "supplier", "s_nationkey", False),
    ("customer_pkey", "customer", "c_custkey", True),
    ("customer_nationkey_idx", "customer", "c_nationkey", False),
    ("part_pkey", "part", "p_partkey", True),
    ("partsupp_partkey_idx", "partsupp", "ps_partkey", False),
    ("partsupp_suppkey_idx", "partsupp", "ps_suppkey", False),
    ("orders_pkey", "orders", "o_orderkey", True),
    ("orders_custkey_idx", "orders", "o_custkey", False),
    ("orders_orderdate_idx", "orders", "o_orderdate", False),
    ("lineitem_orderkey_idx", "lineitem", "l_orderkey", False),
    ("lineitem_partkey_idx", "lineitem", "l_partkey", False),
    ("lineitem_suppkey_idx", "lineitem", "l_suppkey", False),
    ("lineitem_shipdate_idx", "lineitem", "l_shipdate", False),
)


def _add_indexes(schema: Schema) -> None:
    for name, table_name, column, unique in _INDEX_SPECS:
        schema.add_index(
            Index(
                name=name,
                table_name=table_name,
                column_names=(column,),
                row_count=schema.table(table_name).row_count,
                unique=unique,
            )
        )
