"""Base-table statistics (cardinality, width, page count)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.column import Column
from repro.exceptions import CatalogError, UnknownColumnError

#: Storage page size in bytes (Postgres default).
PAGE_SIZE = 8192

#: Per-tuple storage overhead in bytes (header + item pointer), Postgres-like.
TUPLE_OVERHEAD = 28


@dataclass
class Table:
    """Statistics for one base table.

    The optimizer's cost model derives everything it needs — page counts,
    tuple widths, distinct counts — from this object. Rows themselves only
    exist in the optional execution engine.
    """

    name: str
    columns: tuple[Column, ...]
    row_count: int
    page_size: int = PAGE_SIZE
    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        if self.row_count < 0:
            raise CatalogError(f"row_count must be >= 0, got {self.row_count}")
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have columns")
        self._by_name = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._by_name[column.name] = column

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise ``UnknownColumnError``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def has_column(self, name: str) -> bool:
        """Whether the table contains a column named ``name``."""
        return name in self._by_name

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def tuple_width(self) -> int:
        """Average stored tuple width in bytes, including overhead."""
        return TUPLE_OVERHEAD + sum(c.byte_width for c in self.columns)

    @property
    def byte_size(self) -> int:
        """Estimated total table size in bytes."""
        return self.row_count * self.tuple_width

    @property
    def pages(self) -> int:
        """Number of storage pages occupied by the table (>= 1)."""
        if self.row_count == 0:
            return 1
        tuples_per_page = max(1, self.page_size // self.tuple_width)
        return max(1, math.ceil(self.row_count / tuples_per_page))

    def n_distinct(self, column_name: str) -> int:
        """Distinct-value count of a column, capped by the row count."""
        ndv = self.column(column_name).n_distinct
        return max(1, min(ndv, self.row_count)) if self.row_count else 1

    def scaled(self, factor: float) -> "Table":
        """Return a copy with row count (and key cardinalities) scaled."""
        if factor <= 0:
            raise CatalogError(f"scale factor must be > 0, got {factor}")
        return Table(
            name=self.name,
            columns=tuple(c.scaled(factor) for c in self.columns),
            row_count=max(1, int(self.row_count * factor)),
            page_size=self.page_size,
        )
