"""Catalog substrate: schema, table/column/index statistics, TPC-H, IMDB."""

from repro.catalog.column import Column, DataType
from repro.catalog.imdb import imdb_schema
from repro.catalog.index import Index
from repro.catalog.schema import Schema, build_schema
from repro.catalog.statistics import (
    Histogram,
    equality_predicate,
    histogram_from_rows,
    range_predicate,
)
from repro.catalog.table import PAGE_SIZE, Table
from repro.catalog.tpch import SF1_ROW_COUNTS, tpch_schema

__all__ = [
    "Column",
    "DataType",
    "Histogram",
    "Index",
    "PAGE_SIZE",
    "Schema",
    "SF1_ROW_COUNTS",
    "Table",
    "build_schema",
    "equality_predicate",
    "histogram_from_rows",
    "imdb_schema",
    "range_predicate",
    "tpch_schema",
]
