"""Experiment runner: execute algorithm variants over test cases.

One *variant* is an (algorithm, alpha) pair — e.g. ``EXA``, ``RTA(1.5)``.
The runner executes every variant on every test case and aggregates the
paper's metrics per (query, variant): timeout percentage, average
optimization time, average memory, average Pareto-plan count (last
completely treated table set), average iteration count, and the average
weighted cost as a percentage of the best weighted cost any variant
achieved on the same test case (the "W-Cost (%)" rows of Figures 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.core.service import OptimizerService
from repro.workload import TestCase

#: Anything that can execute an OptimizationRequest: the service (plan
#: cache + metrics) or the bare facade.
Engine = Union[OptimizerService, MultiObjectiveOptimizer]


@dataclass(frozen=True)
class Variant:
    """An algorithm configuration to benchmark."""

    label: str
    algorithm: str
    alpha: float = 1.0


#: The paper's Figure 9 line-up.
FIGURE9_VARIANTS = (
    Variant("EXA", "exa"),
    Variant("RTA(1.15)", "rta", 1.15),
    Variant("RTA(1.5)", "rta", 1.5),
    Variant("RTA(2)", "rta", 2.0),
)

#: The paper's Figure 10 line-up.
FIGURE10_VARIANTS = (
    Variant("EXA", "exa"),
    Variant("IRA(1.15)", "ira", 1.15),
    Variant("IRA(1.5)", "ira", 1.5),
    Variant("IRA(2)", "ira", 2.0),
)


@dataclass
class RunRecord:
    """Metrics of one (variant, test case) execution."""

    variant: Variant
    query_number: int
    case_index: int
    time_ms: float
    memory_kb: float
    pareto_plans: int
    plans_considered: int
    candidates_vectorized: int
    iterations: int
    timed_out: bool
    weighted_cost: float
    respects_bounds: bool

    @classmethod
    def from_result(
        cls, variant: Variant, case: TestCase, result: OptimizationResult
    ) -> "RunRecord":
        return cls(
            variant=variant,
            query_number=case.query_number,
            case_index=case.case_index,
            time_ms=result.optimization_time_ms,
            memory_kb=result.memory_kb,
            pareto_plans=result.pareto_last_complete,
            plans_considered=result.plans_considered,
            candidates_vectorized=result.candidates_vectorized,
            iterations=result.iterations,
            timed_out=result.timed_out,
            weighted_cost=result.weighted_cost,
            respects_bounds=result.respects_bounds,
        )


@dataclass
class RequestRecord:
    """Metrics of one pre-built request (workload-family batches).

    Family draws (:mod:`repro.workloads.families`) arrive as finished
    :class:`OptimizationRequest` objects keyed by name and fingerprint
    rather than TPC-H query numbers, so they get their own record type
    instead of forcing fake numbers into :class:`RunRecord`.
    """

    query_name: str
    fingerprint: str
    algorithm: str
    time_ms: float
    memory_kb: float
    pareto_plans: int
    iterations: int
    timed_out: bool
    weighted_cost: float

    @classmethod
    def from_result(
        cls, request: OptimizationRequest, result: OptimizationResult
    ) -> "RequestRecord":
        return cls(
            query_name=request.query_name,
            fingerprint=request.fingerprint(),
            algorithm=request.algorithm,
            time_ms=result.optimization_time_ms,
            memory_kb=result.memory_kb,
            pareto_plans=result.pareto_last_complete,
            iterations=result.iterations,
            timed_out=result.timed_out,
            weighted_cost=result.weighted_cost,
        )


def run_requests(
    engine: Engine, requests: Sequence[OptimizationRequest]
) -> list[RequestRecord]:
    """Execute pre-built requests (e.g. a family batch); keep order.

    Services run the batch through :meth:`OptimizerService.optimize_many`
    (plan cache, metrics hooks, batch backend); a bare optimizer
    executes sequentially.
    """
    if isinstance(engine, OptimizerService):
        results = engine.optimize_many(requests)
    else:
        results = [engine.execute(request) for request in requests]
    return [
        RequestRecord.from_result(request, result)
        for request, result in zip(requests, results)
    ]


@dataclass
class Aggregate:
    """Averages over the test cases of one (query, variant) cell."""

    variant: Variant
    query_number: int
    cases: int = 0
    timeout_pct: float = 0.0
    avg_time_ms: float = 0.0
    avg_memory_kb: float = 0.0
    avg_pareto_plans: float = 0.0
    avg_iterations: float = 0.0
    avg_weighted_cost_pct: float = 0.0
    records: list[RunRecord] = field(default_factory=list)


def run_case(
    engine: Engine, case: TestCase, variant: Variant
) -> RunRecord:
    """Execute one variant on one test case.

    ``engine`` may be an :class:`OptimizerService` (requests go through
    the plan cache and metrics hooks) or a bare
    :class:`MultiObjectiveOptimizer`.
    """
    request = case.to_request(
        algorithm=variant.algorithm,
        alpha=variant.alpha,
        tags=(variant.label, f"q{case.query_number}",
              f"case{case.case_index}"),
    )
    if isinstance(engine, OptimizerService):
        result = engine.submit(request)
    else:
        result = engine.execute(request)
    return RunRecord.from_result(variant, case, result)


def run_comparison(
    engine: Engine,
    cases: Sequence[TestCase],
    variants: Sequence[Variant],
) -> dict[str, Aggregate]:
    """Run all variants over all cases of *one* query; aggregate.

    The weighted-cost percentage of a record is relative to the minimum
    weighted cost over all variants on the same case (100% = matched the
    best plan produced by any algorithm) — this mirrors the paper's
    "weighted cost of the generated plan (as percentage of the optimal
    value over the plans generated by all algorithms for the same test
    case)".
    """
    if not cases:
        raise ValueError("no test cases supplied")
    query_number = cases[0].query_number
    records: dict[str, list[RunRecord]] = {v.label: [] for v in variants}
    effective_costs: dict[str, list[float]] = {v.label: [] for v in variants}
    best_per_case: list[float] = []
    for case in cases:
        case_records = [run_case(engine, case, v) for v in variants]
        case_effective = [
            _effective_cost(record, case.is_bounded, case_records)
            for record in case_records
        ]
        finite = [c for c in case_effective if c != float("inf")]
        best_per_case.append(min(finite) if finite else float("inf"))
        for variant, record, effective in zip(
            variants, case_records, case_effective
        ):
            records[variant.label].append(record)
            effective_costs[variant.label].append(effective)

    aggregates: dict[str, Aggregate] = {}
    for variant in variants:
        variant_records = records[variant.label]
        aggregates[variant.label] = _aggregate(
            variant, query_number, variant_records,
            effective_costs[variant.label], best_per_case,
        )
    return aggregates


def _effective_cost(
    record: RunRecord, bounded: bool, case_records: list[RunRecord]
) -> float:
    """Weighted cost under the paper's relative-cost semantics.

    For bounded instances, a plan violating the bounds has infinite
    relative cost whenever *any* variant found a bound-respecting plan
    (Definition 3); if no variant did, plain weighted cost is compared.
    """
    if not bounded:
        return record.weighted_cost
    if record.respects_bounds:
        return record.weighted_cost
    if any(r.respects_bounds for r in case_records):
        return float("inf")
    return record.weighted_cost


def _aggregate(
    variant: Variant,
    query_number: int,
    records: list[RunRecord],
    effective: list[float],
    best_per_case: list[float],
) -> Aggregate:
    count = len(records)
    cost_percentages = []
    for cost, best in zip(effective, best_per_case):
        if best > 0 and best != float("inf") and cost != float("inf"):
            cost_percentages.append(100.0 * cost / best)
    return Aggregate(
        variant=variant,
        query_number=query_number,
        cases=count,
        timeout_pct=100.0 * sum(r.timed_out for r in records) / count,
        avg_time_ms=_mean(r.time_ms for r in records),
        avg_memory_kb=_mean(r.memory_kb for r in records),
        avg_pareto_plans=_mean(r.pareto_plans for r in records),
        avg_iterations=_mean(r.iterations for r in records),
        avg_weighted_cost_pct=(
            _mean(cost_percentages) if cost_percentages else float("nan")
        ),
        records=records,
    )


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
