"""Ablation studies for design choices the paper calls out.

Three ablations, each corresponding to an explicit design argument in
the paper:

1. **Pruning variant** (Section 6.2): "It seems tempting to reduce the
   number of stored plans further by discarding all plans that a newly
   inserted plan approximately dominates. [...] the additional change
   would destroy near-optimality guarantees." We run the RTA with both
   pruning variants and measure the worst observed approximation factor
   against the EXA optimum.
2. **Internal precision** (Theorem 3): the RTA derives its internal
   pruning precision as ``alpha_U ** (1/|Q|)``. Pruning directly with
   ``alpha_U`` per level compounds to ``alpha_U^|Q|`` — faster but the
   guarantee degrades with query size.
3. **Refinement policy** (Section 7.2): the paper's
   ``alpha_U ** (2**(-i/(3l-3)))`` schedule against a fast-halving and
   a slow schedule, measuring iterations and total generated plans
   (redundant-work proxy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.experiments import BENCH_CONFIG, make_optimizer
from repro.core.exa import exact_moqo
from repro.core.ira import (
    PrecisionPolicy,
    halving_policy,
    ira,
    iteration_precision,
    slow_policy,
)
from repro.core.pruning import AggressivePlanSet, PlanSet
from repro.core.rta import rta
from repro.workload import TestCase, WorkloadGenerator


@dataclass
class PruningAblationRow:
    """Observed quality of one pruning variant on one test case."""

    variant: str
    query_number: int
    case_index: int
    approximation_factor: float
    frontier_size: int
    plans_considered: int


def pruning_variant_ablation(
    query_numbers: Sequence[int] = (3, 10),
    alpha_u: float = 2.0,
    cases: int = 3,
    seed: int = 7,
    timeout_seconds: float = 30.0,
) -> list[PruningAblationRow]:
    """RTA vs the guarantee-destroying aggressive pruning variant.

    The approximation factor is the plan's weighted cost divided by the
    EXA optimum for the same case; for the sound variant it must stay
    at or below ``alpha_u``.
    """
    optimizer = make_optimizer(timeout_seconds=timeout_seconds)
    generator = WorkloadGenerator(
        optimizer.schema, config=BENCH_CONFIG, seed=seed
    )
    rows: list[PruningAblationRow] = []
    for query_number in query_numbers:
        for case in generator.weighted_cases(query_number, 3, cases):
            rows.extend(
                _run_pruning_case(optimizer, case, alpha_u)
            )
    return rows


def _run_pruning_case(optimizer, case: TestCase, alpha_u: float):
    block = case.query.main_block
    exact = exact_moqo(
        block, optimizer.cost_model, case.preferences, optimizer.config
    )
    optimum = exact.weighted_cost
    rows = []
    for variant, factory_cls in (
        ("standard", PlanSet),
        ("aggressive", AggressivePlanSet),
    ):
        alpha_internal = alpha_u ** (1.0 / block.num_tables)
        result = rta(
            block,
            optimizer.cost_model,
            case.preferences.without_bounds(),
            alpha_u,
            optimizer.config,
            plan_set_factory=lambda: factory_cls(alpha=alpha_internal),
            _algorithm_label=f"rta-{variant}",
        )
        factor = (
            result.weighted_cost / optimum if optimum > 0 else 1.0
        )
        rows.append(
            PruningAblationRow(
                variant=variant,
                query_number=case.query_number,
                case_index=case.case_index,
                approximation_factor=factor,
                frontier_size=len(result.frontier),
                plans_considered=result.plans_considered,
            )
        )
    return rows


@dataclass
class PrecisionAblationRow:
    """One internal-precision variant on one test case."""

    variant: str
    query_number: int
    case_index: int
    approximation_factor: float
    plans_considered: int
    time_ms: float


def internal_precision_ablation(
    query_numbers: Sequence[int] = (3, 10),
    alpha_u: float = 2.0,
    cases: int = 3,
    seed: int = 11,
    timeout_seconds: float = 30.0,
) -> list[PrecisionAblationRow]:
    """``alpha_U ** (1/n)`` (sound) vs pruning directly with ``alpha_U``."""
    optimizer = make_optimizer(timeout_seconds=timeout_seconds)
    generator = WorkloadGenerator(
        optimizer.schema, config=BENCH_CONFIG, seed=seed
    )
    rows: list[PrecisionAblationRow] = []
    for query_number in query_numbers:
        for case in generator.weighted_cases(query_number, 3, cases):
            block = case.query.main_block
            exact = exact_moqo(
                block, optimizer.cost_model, case.preferences,
                optimizer.config,
            )
            optimum = exact.weighted_cost
            for variant, internal in (
                ("nth_root", alpha_u ** (1.0 / block.num_tables)),
                ("direct", alpha_u),
            ):
                result = rta(
                    block,
                    optimizer.cost_model,
                    case.preferences.without_bounds(),
                    alpha_u,
                    optimizer.config,
                    plan_set_factory=lambda: PlanSet(alpha=internal),
                    _algorithm_label=f"rta-{variant}",
                )
                rows.append(
                    PrecisionAblationRow(
                        variant=variant,
                        query_number=case.query_number,
                        case_index=case.case_index,
                        approximation_factor=(
                            result.weighted_cost / optimum
                            if optimum > 0
                            else 1.0
                        ),
                        plans_considered=result.plans_considered,
                        time_ms=result.optimization_time_ms,
                    )
                )
    return rows


@dataclass
class PolicyAblationRow:
    """One refinement policy on one bounded test case."""

    policy: str
    query_number: int
    case_index: int
    iterations: int
    plans_considered: int
    time_ms: float
    weighted_cost: float

REFINEMENT_POLICIES: dict[str, PrecisionPolicy] = {
    "paper": iteration_precision,
    "halving": halving_policy,
    "slow": slow_policy,
}


def refinement_policy_ablation(
    query_numbers: Sequence[int] = (3, 10),
    alpha_u: float = 1.5,
    cases: int = 3,
    num_bounds: int = 3,
    num_objectives: int = 3,
    seed: int = 13,
    timeout_seconds: float = 30.0,
) -> list[PolicyAblationRow]:
    """Compare refinement policies on bounded MOQO instances.

    Total ``plans_considered`` is the redundant-work proxy: a policy
    that refines too slowly re-generates nearly identical plan sets in
    many iterations.
    """
    optimizer = make_optimizer(timeout_seconds=timeout_seconds)
    generator = WorkloadGenerator(
        optimizer.schema, config=BENCH_CONFIG, seed=seed
    )
    rows: list[PolicyAblationRow] = []
    for query_number in query_numbers:
        test_cases = generator.bounded_cases(
            query_number, num_bounds=num_bounds, count=cases,
            num_objectives=num_objectives,
        )
        for case in test_cases:
            block = case.query.main_block
            for name, policy in REFINEMENT_POLICIES.items():
                result = ira(
                    block,
                    optimizer.cost_model,
                    case.preferences,
                    alpha_u,
                    optimizer.config,
                    precision_policy=policy,
                )
                rows.append(
                    PolicyAblationRow(
                        policy=name,
                        query_number=case.query_number,
                        case_index=case.case_index,
                        iterations=result.iterations,
                        plans_considered=result.plans_considered,
                        time_ms=result.optimization_time_ms,
                        weighted_cost=result.weighted_cost,
                    )
                )
    return rows
