"""One-command reproduction runner: ``python -m repro.bench.run_all``.

Runs every figure experiment in sequence at the configured scale,
prints the tables and writes them into a results directory. The same
experiments also run under pytest-benchmark (``pytest benchmarks/
--benchmark-only``) with shape assertions; this runner is for producing
the tables without the test harness.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.experiments import (
    figure3_experiment,
    figure4_experiment,
    figure5_experiment,
    figure7_data,
    figure9_experiment,
    figure10_experiment,
)
from repro.bench.reporting import (
    FIGURE5_METRICS,
    FIGURE9_METRICS,
    FIGURE10_METRICS,
    format_figure,
    format_series,
)
from repro.bench.running_example import (
    bounded_optimum,
    classify_vectors,
    figure8_pathology,
    pareto_frontier,
    weighted_optimum,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.run_all",
        description="Regenerate every figure of the paper's evaluation",
    )
    parser.add_argument(
        "--output", default="benchmarks/results", metavar="DIR",
        help="directory for the result tables",
    )
    parser.add_argument(
        "--cases", type=int, default=None,
        help="test cases per cell (paper: 20; default from env/3)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-query timeout (paper: 7200; default from env/2)",
    )
    parser.add_argument(
        "--figures", default="1,3,4,5,7,9,10", metavar="LIST",
        help="comma-separated figure numbers to run",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    output_dir = pathlib.Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    wanted = {part.strip() for part in args.figures.split(",") if part.strip()}

    def emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}")
        (output_dir / f"{name}.txt").write_text(text + "\n")

    def progress(message: str) -> None:
        print(f"  ... {message}", flush=True)

    started = time.perf_counter()
    if "1" in wanted:
        lines = [
            "Figures 1/2/6/8 — running example",
            f"[1a] weighted optimum:  {weighted_optimum()}",
            f"[1b] bounded optimum:   {bounded_optimum()}",
            f"[2]  Pareto frontier:   {pareto_frontier()}",
            f"[6]  classification:    "
            f"{ {k: len(v) for k, v in classify_vectors().items()} }",
            f"[8]  pathology:         {figure8_pathology()}",
        ]
        emit("run_all_fig1", "\n".join(lines))
    if "3" in wanted:
        outcome = figure3_experiment()
        lines = ["Figure 3 — plan evolution for TPC-H Q3"]
        for label, info in outcome.items():
            lines.append(f"--- {label} ---")
            lines.append(info["plan"].describe())
        emit("run_all_fig3", "\n".join(lines))
    if "4" in wanted:
        frontiers = figure4_experiment()
        lines = ["Figure 4 — approximate Pareto frontiers for Q5"]
        for alpha, points in frontiers.items():
            lines.append(f"alpha = {alpha}: {len(points)} frontier plans")
        emit("run_all_fig4", "\n".join(lines))
    if "5" in wanted:
        cells = figure5_experiment(
            cases=args.cases, timeout_seconds=args.timeout,
            progress=progress,
        )
        emit("run_all_fig5",
             format_figure("Figure 5 — EXA on TPC-H", cells,
                           FIGURE5_METRICS))
    if "7" in wanted:
        emit("run_all_fig7",
             format_series("Figure 7 — complexity curves", figure7_data()))
    if "9" in wanted:
        cells = figure9_experiment(
            cases=args.cases, timeout_seconds=args.timeout,
            progress=progress,
        )
        emit("run_all_fig9",
             format_figure("Figure 9 — weighted MOQO", cells,
                           FIGURE9_METRICS))
    if "10" in wanted:
        cells = figure10_experiment(
            cases=args.cases, timeout_seconds=args.timeout,
            progress=progress,
        )
        emit("run_all_fig10",
             format_figure("Figure 10 — bounded MOQO", cells,
                           FIGURE10_METRICS, parameter_label="b"))
    elapsed = time.perf_counter() - started
    print(f"\nall requested figures regenerated in {elapsed:.1f}s "
          f"-> {output_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
