"""The paper's running example (Figures 1, 2, 6 and 8).

The paper uses one fixed set of two-dimensional cost vectors (buffer
space, time) throughout Sections 3-7 to illustrate weighted MOQO,
bounded-weighted MOQO, the Pareto frontier, approximate dominance and
the bounded-approximation pathology. The exact coordinates are only
shown graphically; the vectors below are read off Figure 1 and chosen
so that every statement the paper makes about the example holds:

* with weights ``(1, 1)`` the weighted optimum is ``WEIGHTED_OPTIMUM``;
* adding the bounds makes a *different* plan optimal (Figure 1b);
* with ``alpha = 1.5`` several non-Pareto vectors fall into the
  approximately dominated area but not the dominated area (Figure 6);
* an ``alpha``-approximate Pareto set exists that contains no
  near-optimal plan once the bounds are applied (Figure 8).
"""

from __future__ import annotations

from repro.core.pareto import (
    approximately_dominated_by_set,
    dominated_by_set,
    pareto_filter,
)
from repro.cost.vector import respects_bounds, weighted_cost

#: (buffer space, time) cost vectors of the running example's plans.
#: ``(2.6, 0.7)`` is Pareto-optimal but approximately dominated (with
#: alpha = 1.5) by ``(3.0, 0.5)`` — the Figure 6 distinction between the
#: dominated and the approximately dominated area.
RUNNING_EXAMPLE_VECTORS: tuple[tuple[float, float], ...] = (
    (0.5, 2.5),
    (1.0, 1.5),
    (1.5, 2.75),
    (2.0, 1.0),
    (2.5, 2.0),
    (2.6, 0.7),
    (3.0, 0.5),
    (4.0, 2.25),
)

#: Weights of the weighted-MOQO illustration (Figure 1a).
RUNNING_EXAMPLE_WEIGHTS: tuple[float, float] = (1.0, 1.0)

#: Bounds of the bounded-weighted illustration (Figure 1b): the
#: weighted optimum violates the time bound, so a different plan wins.
RUNNING_EXAMPLE_BOUNDS: tuple[float, float] = (3.25, 1.3)


def weighted_optimum(
    vectors=RUNNING_EXAMPLE_VECTORS, weights=RUNNING_EXAMPLE_WEIGHTS
) -> tuple[float, float]:
    """Optimal cost vector under weights only (Figure 1a)."""
    return min(vectors, key=lambda c: weighted_cost(c, weights))


def bounded_optimum(
    vectors=RUNNING_EXAMPLE_VECTORS,
    weights=RUNNING_EXAMPLE_WEIGHTS,
    bounds=RUNNING_EXAMPLE_BOUNDS,
) -> tuple[float, float]:
    """Optimal cost vector under weights and bounds (Figure 1b)."""
    respecting = [c for c in vectors if respects_bounds(c, bounds)]
    pool = respecting if respecting else list(vectors)
    return min(pool, key=lambda c: weighted_cost(c, weights))


def pareto_frontier(vectors=RUNNING_EXAMPLE_VECTORS) -> list[tuple[float, ...]]:
    """Pareto frontier of the running example (Figure 2)."""
    return pareto_filter(vectors)


def classify_vectors(
    vectors=RUNNING_EXAMPLE_VECTORS, alpha: float = 1.5
) -> dict[str, list[tuple[float, ...]]]:
    """Partition vectors for the Figure 6 illustration.

    Every vector is compared against all *other* vectors (the EXA keeps
    a plan unless another plan dominates it; the RTA additionally drops
    plans another plan approximately dominates):

    * ``dominated`` — pruned by the EXA and the RTA;
    * ``approximately_dominated`` — kept by the EXA, prunable by the RTA
      with precision ``alpha`` (the area between the two frontiers of
      Figure 6);
    * ``kept`` — survives both pruning rules.
    """
    normalized = [tuple(float(x) for x in v) for v in vectors]
    frontier = pareto_filter(normalized)
    dominated: list[tuple[float, ...]] = []
    approximately: list[tuple[float, ...]] = []
    kept: list[tuple[float, ...]] = []
    for vector in normalized:
        others = [v for v in normalized if v != vector]
        if dominated_by_set(vector, others):
            dominated.append(vector)
        elif approximately_dominated_by_set(vector, others, alpha):
            approximately.append(vector)
        else:
            kept.append(vector)
    return {
        "pareto": frontier,
        "dominated": dominated,
        "approximately_dominated": approximately,
        "kept": kept,
    }


def figure8_pathology(alpha: float = 1.5) -> dict[str, object]:
    """A concrete instance of the Figure 8 pathology.

    Constructs a 2-vector example: ``kept`` approximately dominates
    ``discarded`` (so an alpha-approximate Pareto set may contain only
    ``kept``), yet only ``discarded`` respects the bounds — the
    approximate set then contains no bound-respecting plan at all,
    which is why the RTA alone cannot solve bounded MOQO and the IRA's
    iterative refinement is needed.
    """
    discarded = (2.0, 1.0)
    kept = (1.5, 1.2)
    bounds = (3.0, 1.05)
    return {
        "alpha": alpha,
        "kept": kept,
        "discarded": discarded,
        "bounds": bounds,
        "kept_approx_dominates": all(
            k <= d * alpha for k, d in zip(kept, discarded)
        ),
        "discarded_respects_bounds": respects_bounds(discarded, bounds),
        "kept_respects_bounds": respects_bounds(kept, bounds),
    }
