"""Experiment definitions for every figure of the paper's evaluation.

Scaling note (see DESIGN.md): the paper ran C code inside Postgres on a
12-core Xeon with a two-hour timeout. Pure Python is orders of magnitude
slower, so the default experiment scale is reduced along three
documented axes — operator space (:data:`BENCH_CONFIG`), test cases per
cell (:data:`DEFAULT_CASES`, paper: 20) and timeout
(:data:`DEFAULT_TIMEOUT_SECONDS`, paper: 7200 s). The *shape* of the
results (who times out, who wins, how metrics move with the number of
objectives/tables) is what the experiments reproduce. Environment
variables ``REPRO_BENCH_CASES``, ``REPRO_BENCH_TIMEOUT`` and
``REPRO_BENCH_QUERIES`` scale the runs up toward paper scale.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.catalog.tpch import tpch_schema
from repro.config import OptimizerConfig
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.preferences import Preferences
from repro.core.service import OptimizerService
from repro.core.rta import rta
from repro.cost.objectives import Objective
from repro.bench.runner import (
    Aggregate,
    FIGURE9_VARIANTS,
    FIGURE10_VARIANTS,
    Variant,
    run_comparison,
)
from repro.query.tpch_queries import PAPER_QUERY_ORDER, tpch_query
from repro.workload import WorkloadGenerator

#: Reduced operator space for Python-scale experiments: two DOP values
#: instead of four, two sampling rates instead of five. All operator
#: *families* of the paper's plan space remain present.
BENCH_CONFIG = OptimizerConfig(
    dop_values=(1, 2),
    sampling_rates=(0.01, 0.05),
)

#: Test cases per (query, objective-count) cell; the paper uses 20.
DEFAULT_CASES = int(os.environ.get("REPRO_BENCH_CASES", "3"))

#: Optimization timeout in seconds; stands in for the paper's 2 hours.
DEFAULT_TIMEOUT_SECONDS = float(os.environ.get("REPRO_BENCH_TIMEOUT", "2.0"))

#: Queries exercised by the heavyweight figure experiments, ordered like
#: the paper's x-axes (a spread over 1..8 join tables). ``all`` runs the
#: full 22-query workload.
_DEFAULT_BENCH_QUERIES = "1,6,12,14,3,10,5,8"


def bench_query_numbers() -> tuple[int, ...]:
    """Query numbers selected for the figure experiments."""
    raw = os.environ.get("REPRO_BENCH_QUERIES", _DEFAULT_BENCH_QUERIES)
    if raw.strip().lower() == "all":
        return PAPER_QUERY_ORDER
    chosen = tuple(int(part) for part in raw.split(",") if part.strip())
    order = {number: i for i, number in enumerate(PAPER_QUERY_ORDER)}
    return tuple(sorted(chosen, key=lambda n: order[n]))


def make_optimizer(
    timeout_seconds: float | None = None,
    scale_factor: float = 1.0,
    config: OptimizerConfig | None = None,
) -> MultiObjectiveOptimizer:
    """Optimizer over the TPC-H schema with the benchmark configuration."""
    if timeout_seconds is None:
        timeout_seconds = DEFAULT_TIMEOUT_SECONDS
    base = config or BENCH_CONFIG
    return MultiObjectiveOptimizer(
        tpch_schema(scale_factor), config=base.with_timeout(timeout_seconds)
    )


def make_service(
    timeout_seconds: float | None = None,
    scale_factor: float = 1.0,
    config: OptimizerConfig | None = None,
    cache_size: int = 0,
    backend: str = "threads",
    workers: int | None = None,
) -> OptimizerService:
    """Optimizer *service* over the TPC-H schema (benchmark config).

    The service front end adds request metrics and (optionally) the
    plan cache. Caching defaults to *off* here: a cache hit would
    replay the first run's timing counters as if they were a fresh
    sample and skew the figures' averaged optimization times. Pass
    ``cache_size > 0`` for non-timing workloads. ``backend`` and
    ``workers`` select the batch execution backend — the throughput
    benchmark compares ``"threads"`` against ``"processes"`` (close the
    service, or use it as a context manager, when requesting the
    process backend).
    """
    if timeout_seconds is None:
        timeout_seconds = DEFAULT_TIMEOUT_SECONDS
    base = config or BENCH_CONFIG
    return OptimizerService(
        tpch_schema(scale_factor),
        config=base.with_timeout(timeout_seconds),
        cache_size=cache_size,
        backend=backend,
        workers=workers,
    )


# ----------------------------------------------------------------------
# Figure 7 — analytic complexity curves
# ----------------------------------------------------------------------
def n_bushy(j: int, n: int) -> float:
    """Number of bushy plans: ``j^(2n-1) * (2(n-1))! / (n-1)!``."""
    return float(j) ** (2 * n - 1) * (
        math.factorial(2 * (n - 1)) / math.factorial(n - 1)
    )


def exa_time_complexity(j: int, n: int) -> float:
    """EXA worst-case time: ``O(N_bushy^2)`` (Theorem 2)."""
    return n_bushy(j, n) ** 2


def n_stored(m: float, n: int, alpha: float, num_objectives: int) -> float:
    """Plans the RTA stores per table set: ``(n log_alpha m)^(l-1)``.

    ``alpha`` here is the *internal* precision; Lemma 2.
    """
    return (n * math.log(m) / math.log(alpha)) ** (num_objectives - 1)


def rta_time_complexity(
    j: int, n: int, m: float, alpha_u: float, num_objectives: int
) -> float:
    """RTA worst-case time: ``O(j 3^n N_stored^3)`` (Theorem 5)."""
    alpha_internal = alpha_u ** (1.0 / n)
    return j * 3.0**n * n_stored(m, n, alpha_internal, num_objectives) ** 3


def selinger_time_complexity(j: int, n: int) -> float:
    """Selinger (bushy) worst-case time: ``O(j 3^n)``."""
    return j * 3.0**n


def figure7_data(
    n_range: Sequence[int] = tuple(range(2, 11)),
    j: int = 6,
    num_objectives: int = 3,
    m: float = 1e5,
    alphas: Sequence[float] = (1.05, 1.5),
) -> dict[str, list[float]]:
    """The four complexity curves of Figure 7 (paper setting: j=6, l=3,
    m=1e5)."""
    data: dict[str, list[float]] = {"n": [float(n) for n in n_range]}
    data["EXA"] = [exa_time_complexity(j, n) for n in n_range]
    for alpha in alphas:
        data[f"RTA({alpha})"] = [
            rta_time_complexity(j, n, m, alpha, num_objectives)
            for n in n_range
        ]
    data["Selinger"] = [selinger_time_complexity(j, n) for n in n_range]
    return data


# ----------------------------------------------------------------------
# Figure 3 — plan evolution under changing preferences (TPC-H Q3)
# ----------------------------------------------------------------------
def figure3_experiment(
    optimizer: MultiObjectiveOptimizer | None = None,
) -> dict[str, dict[str, object]]:
    """Reproduce Figure 3: Q3's optimal plan under three preference sets.

    (a) bound tuple loss to 0, weight only total time — the
        time-optimal no-sampling plan (hash joins);
    (b) add weight on buffer footprint — hash joins are replaced by
        operators with a small memory footprint;
    (c) additionally bound startup time — only pipelined
        (index-nested-loop) joins remain.
    """
    optimizer = optimizer or make_optimizer(timeout_seconds=30.0)
    objectives = (
        Objective.TOTAL_TIME,
        Objective.STARTUP_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    )
    query = tpch_query(3)
    scenarios: dict[str, Preferences] = {
        "a_time_optimal": Preferences.from_maps(
            objectives,
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.0},
        ),
        "b_buffer_weight": Preferences.from_maps(
            objectives,
            weights={
                Objective.TOTAL_TIME: 1.0,
                # Buffer is measured in bytes and time in page-fetch
                # units; this weight makes a hash table of a few MB cost
                # as much as re-reading it — enough relative importance
                # to push the optimizer off memory-hungry operators.
                Objective.BUFFER_FOOTPRINT: 0.1,
            },
            bounds={Objective.TUPLE_LOSS: 0.0},
        ),
        "c_startup_bound": Preferences.from_maps(
            objectives,
            weights={
                Objective.TOTAL_TIME: 1.0,
                Objective.BUFFER_FOOTPRINT: 0.1,
            },
            bounds={
                Objective.TUPLE_LOSS: 0.0,
                Objective.STARTUP_TIME: 100.0,
            },
        ),
    }
    outcome: dict[str, dict[str, object]] = {}
    for label, preferences in scenarios.items():
        algorithm = "ira" if preferences.has_bounds else "rta"
        result = optimizer.optimize(
            query, preferences, algorithm=algorithm, alpha=1.05
        )
        outcome[label] = {
            "plan": result.plan,
            "operators": result.plan.operator_labels() if result.plan else [],
            "cost": result.plan_cost,
            "preferences": preferences,
        }
    return outcome


# ----------------------------------------------------------------------
# Figure 4 — approximate Pareto frontiers for TPC-H Q5
# ----------------------------------------------------------------------
def figure4_experiment(
    alphas: Sequence[float] = (2.0, 1.25),
    timeout_seconds: float | None = None,
) -> dict[float, list[tuple[float, float, float]]]:
    """Approximate 3-D Pareto frontiers (loss, buffer, time) for Q5.

    Returns, per precision, the frontier's cost vectors; the
    finer-grained run yields more points (Figure 4b vs 4a).
    """
    optimizer = make_optimizer(timeout_seconds=timeout_seconds or 30.0)
    objectives = (
        Objective.TOTAL_TIME,
        Objective.BUFFER_FOOTPRINT,
        Objective.TUPLE_LOSS,
    )
    preferences = Preferences.from_maps(
        objectives, weights={Objective.TOTAL_TIME: 1.0}
    )
    query = tpch_query(5).main_block
    frontiers: dict[float, list[tuple[float, float, float]]] = {}
    for alpha in alphas:
        result = rta(
            query,
            optimizer.cost_model,
            preferences,
            alpha,
            optimizer.config,
        )
        # Re-order to (loss, buffer, time) like the paper's axes.
        frontiers[alpha] = sorted(
            (cost[2], cost[1], cost[0]) for cost in result.frontier_costs
        )
    return frontiers


# ----------------------------------------------------------------------
# Figures 5, 9, 10 — the workload experiments
# ----------------------------------------------------------------------
@dataclass
class FigureCell:
    """All aggregates of one (query, parameter) cell of a figure."""

    query_number: int
    parameter: int  # number of objectives (Figs 5/9) or bounds (Fig 10)
    aggregates: dict[str, Aggregate]


def figure5_experiment(
    query_numbers: Sequence[int] | None = None,
    objective_counts: Sequence[int] = (1, 3, 6, 9),
    cases: int | None = None,
    timeout_seconds: float | None = None,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> list[FigureCell]:
    """Figure 5: EXA performance vs number of objectives and tables."""
    variants = (Variant("EXA", "exa"),)
    return _workload_experiment(
        variants, query_numbers, objective_counts, cases, timeout_seconds,
        seed, bounded=None, progress=progress,
    )


def figure9_experiment(
    query_numbers: Sequence[int] | None = None,
    objective_counts: Sequence[int] = (3, 6, 9),
    cases: int | None = None,
    timeout_seconds: float | None = None,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> list[FigureCell]:
    """Figure 9: EXA vs RTA(1.15 / 1.5 / 2) on weighted MOQO."""
    return _workload_experiment(
        FIGURE9_VARIANTS, query_numbers, objective_counts, cases,
        timeout_seconds, seed, bounded=None, progress=progress,
    )


def figure10_experiment(
    query_numbers: Sequence[int] | None = None,
    bound_counts: Sequence[int] = (3, 6, 9),
    cases: int | None = None,
    timeout_seconds: float | None = None,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> list[FigureCell]:
    """Figure 10: EXA vs IRA(1.15 / 1.5 / 2) on bounded MOQO.

    All nine objectives are optimized; the parameter is the number of
    bounded objectives (3, 6 or 9), exactly like the paper.
    """
    return _workload_experiment(
        FIGURE10_VARIANTS, query_numbers, bound_counts, cases,
        timeout_seconds, seed, bounded="bounds", progress=progress,
    )


def _workload_experiment(
    variants: Sequence[Variant],
    query_numbers: Sequence[int] | None,
    parameters: Sequence[int],
    cases: int | None,
    timeout_seconds: float | None,
    seed: int,
    bounded: str | None,
    progress: Callable[[str], None] | None,
) -> list[FigureCell]:
    if query_numbers is None:
        query_numbers = bench_query_numbers()
    if cases is None:
        cases = DEFAULT_CASES
    service = make_service(timeout_seconds=timeout_seconds)
    # Bound generation must not be cut short by the benchmark timeout.
    generator = WorkloadGenerator(
        service.schema, config=BENCH_CONFIG, seed=seed
    )
    cells: list[FigureCell] = []
    for query_number in query_numbers:
        for parameter in parameters:
            if bounded == "bounds":
                test_cases = generator.bounded_cases(
                    query_number, num_bounds=parameter, count=cases
                )
            else:
                test_cases = generator.weighted_cases(
                    query_number, num_objectives=parameter, count=cases
                )
            aggregates = run_comparison(service, test_cases, variants)
            cells.append(FigureCell(query_number, parameter, aggregates))
            if progress is not None:
                summary = ", ".join(
                    f"{label}: {agg.avg_time_ms:.0f}ms"
                    f"{' T/O' if agg.timeout_pct > 0 else ''}"
                    for label, agg in aggregates.items()
                )
                progress(f"q{query_number} p={parameter}: {summary}")
    return cells
