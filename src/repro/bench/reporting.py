"""Textual reporting: render experiment results like the paper's figures.

The paper's Figures 5, 9 and 10 are bar-chart matrices — one row of
panels per metric, one bar group per (query, parameter). A terminal
harness renders the same information as tables: one table per metric,
variants as rows, (query, parameter) cells as columns.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.bench.experiments import FigureCell
from repro.bench.runner import Aggregate

#: metric label -> accessor on Aggregate.
_METRICS: dict[str, Callable[[Aggregate], float]] = {
    "timeouts (%)": lambda a: a.timeout_pct,
    "opt time (ms)": lambda a: a.avg_time_ms,
    "memory (KB)": lambda a: a.avg_memory_kb,
    "pareto plans": lambda a: a.avg_pareto_plans,
    "iterations": lambda a: a.avg_iterations,
    "w-cost (%)": lambda a: a.avg_weighted_cost_pct,
}

#: Metrics shown for each figure (papers' panel rows).
FIGURE5_METRICS = ("timeouts (%)", "opt time (ms)", "memory (KB)",
                   "pareto plans")
FIGURE9_METRICS = ("timeouts (%)", "opt time (ms)", "memory (KB)",
                   "pareto plans", "w-cost (%)")
FIGURE10_METRICS = ("timeouts (%)", "opt time (ms)", "memory (KB)",
                    "iterations", "w-cost (%)")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if value == float("inf"):
        return "inf"
    if value == 0:
        return "0"
    if abs(value) >= 1e5:
        return f"{value:.2e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_table(
    title: str,
    column_labels: Sequence[str],
    rows: Sequence[tuple[str, Sequence[float]]],
) -> str:
    """Render one metric table with aligned columns."""
    header = ["variant", *column_labels]
    body = [
        [label, *(_format_value(v) for v in values)] for label, values in rows
    ]
    widths = [
        max(len(str(line[i])) for line in [header, *body])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append(
            "  ".join(str(cell).rjust(w) for cell, w in zip(line, widths))
        )
    return "\n".join(lines)


def format_figure(
    title: str,
    cells: Sequence[FigureCell],
    metrics: Sequence[str],
    parameter_label: str = "l",
) -> str:
    """Render a full figure: one table per metric."""
    if not cells:
        return f"{title}\n(no data)"
    column_labels = [
        f"q{cell.query_number}/{parameter_label}={cell.parameter}"
        for cell in cells
    ]
    variant_labels = list(cells[0].aggregates)
    blocks = [title, ""]
    for metric in metrics:
        accessor = _METRICS[metric]
        rows = [
            (
                variant,
                [accessor(cell.aggregates[variant]) for cell in cells],
            )
            for variant in variant_labels
        ]
        blocks.append(format_table(metric, column_labels, rows))
        blocks.append("")
    return "\n".join(blocks)


def format_series(title: str, data: dict[str, list[float]],
                  x_key: str = "n") -> str:
    """Render aligned numeric series (used for the Figure 7 curves)."""
    xs = data[x_key]
    names = [k for k in data if k != x_key]
    rows = [(name, data[name]) for name in names]
    column_labels = [f"{x_key}={x:g}" for x in xs]
    return format_table(title, column_labels, rows)


def log_scale_summary(values: Sequence[float]) -> str:
    """Order-of-magnitude summary, e.g. ``1e2..1e6`` (for quick checks)."""
    finite = [v for v in values if 0 < v < float("inf")]
    if not finite:
        return "-"
    low = math.floor(math.log10(min(finite)))
    high = math.ceil(math.log10(max(finite)))
    return f"1e{low}..1e{high}"
