"""Plan substrate: operators, plan trees, plan-space enumeration."""

from repro.plans.operators import (
    DEFAULT_SAMPLING_RATES,
    MAX_DOP,
    JoinMethod,
    JoinSpec,
    ScanMethod,
    ScanSpec,
)
from repro.plans.plan import (
    PLAN_BYTES,
    JoinPlan,
    Plan,
    ProbeInfo,
    ScanPlan,
    count_joins,
    is_left_deep,
    plan_depth,
)
from repro.plans.plan_space import PlanSpace
from repro.plans.serialize import (
    plan_from_dict,
    plan_to_dict,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)

__all__ = [
    "plan_from_dict",
    "plan_to_dict",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "DEFAULT_SAMPLING_RATES",
    "JoinMethod",
    "JoinPlan",
    "JoinSpec",
    "MAX_DOP",
    "PLAN_BYTES",
    "Plan",
    "PlanSpace",
    "ProbeInfo",
    "ScanMethod",
    "ScanPlan",
    "ScanSpec",
    "count_joins",
    "is_left_deep",
    "plan_depth",
]
