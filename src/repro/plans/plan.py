"""Query-plan trees with attached cardinality and cost estimates.

Plans are immutable once built; the cost model constructs them and fills
in the 9-dimensional cost vector (see :mod:`repro.cost.objectives` for
the vector layout). ``__slots__`` keeps per-plan memory small — the exact
algorithm stores up to millions of plans, and the paper's memory analysis
assumes O(1) space per stored plan (operator ID plus sub-plan pointers),
which this layout matches.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.plans.operators import JoinSpec, ScanMethod, ScanSpec

#: Approximate bytes a stored plan occupies (node + 9-dim cost vector).
#: Used for the analytic memory accounting of the benchmark harness.
PLAN_BYTES = 200


class Plan:
    """Base class for plan nodes."""

    __slots__ = ("rows", "width", "cost", "loss")

    rows: float  #: estimated output cardinality (after sampling)
    width: int  #: estimated output tuple width in bytes
    cost: tuple[float, ...]  #: full 9-dimensional cost vector
    loss: float  #: accumulated tuple-loss fraction in [0, 1]

    @property
    def aliases(self) -> frozenset[str]:
        """Aliases of the table instances the plan joins."""
        raise NotImplementedError

    @property
    def output_bytes(self) -> float:
        """Estimated output size in bytes."""
        return self.rows * self.width

    def walk(self) -> Iterator["Plan"]:
        """Pre-order traversal of the plan tree."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line plan tree."""
        raise NotImplementedError

    def operator_labels(self) -> list[str]:
        """Labels of all operators in the tree (pre-order)."""
        labels = []
        for node in self.walk():
            if isinstance(node, ScanPlan):
                labels.append(node.spec.label)
            elif isinstance(node, JoinPlan):
                labels.append(node.spec.label)
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ScanPlan(Plan):
    """Leaf node: one access path for one base-table instance."""

    __slots__ = ("alias", "table_name", "spec", "probe_info")

    def __init__(
        self,
        alias: str,
        table_name: str,
        spec: ScanSpec,
        rows: float,
        width: int,
        cost: tuple[float, ...],
        loss: float,
        probe_info: "ProbeInfo | None" = None,
    ) -> None:
        self.alias = alias
        self.table_name = table_name
        self.spec = spec
        self.rows = rows
        self.width = width
        self.cost = cost
        self.loss = loss
        self.probe_info = probe_info

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset((self.alias,))

    @property
    def is_probe(self) -> bool:
        """Whether this leaf is an index-probe inner (IdxNL only)."""
        return self.spec.method is ScanMethod.INDEX_PROBE

    def walk(self) -> Iterator[Plan]:
        yield self

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}{self.spec.label} {self.table_name}"
            f"{' AS ' + self.alias if self.alias != self.table_name else ''}"
            f"  (rows={self.rows:.0f})"
        )


class ProbeInfo:
    """Per-probe quantities for an index-nested-loop inner.

    ``matched_rows`` is the expected number of heap rows fetched per
    probe (before residual filters); ``heap_pages`` the expected number
    of heap page fetches per probe; ``residual_quals`` the number of
    filter predicates re-checked after the fetch.
    """

    __slots__ = ("index_height", "matched_rows", "heap_pages", "residual_quals")

    def __init__(
        self,
        index_height: int,
        matched_rows: float,
        heap_pages: float,
        residual_quals: int,
    ) -> None:
        self.index_height = index_height
        self.matched_rows = matched_rows
        self.heap_pages = heap_pages
        self.residual_quals = residual_quals


class JoinPlan(Plan):
    """Inner node: a join of two sub-plans with a concrete configuration."""

    __slots__ = ("spec", "left", "right", "_aliases")

    def __init__(
        self,
        spec: JoinSpec,
        left: Plan,
        right: Plan,
        rows: float,
        width: int,
        cost: tuple[float, ...],
        loss: float,
    ) -> None:
        self.spec = spec
        self.left = left
        self.right = right
        self.rows = rows
        self.width = width
        self.cost = cost
        self.loss = loss
        # Computed lazily: most candidate plans are pruned immediately
        # and never need their alias set.
        self._aliases: frozenset[str] | None = None

    @property
    def aliases(self) -> frozenset[str]:
        if self._aliases is None:
            self._aliases = self.left.aliases | self.right.aliases
        return self._aliases

    def walk(self) -> Iterator[Plan]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.spec.label}  (rows={self.rows:.0f})"]
        lines.append(self.left.describe(indent + 1))
        lines.append(self.right.describe(indent + 1))
        return "\n".join(lines)


class PlanBlock:
    """Columnar (numpy) mirror of a sequence of plans for batched costing.

    The vectorized enumerator (:mod:`repro.core.dp`) costs whole
    ``spec x outer x inner`` candidate blocks at once; the batched cost
    kernels (:meth:`repro.cost.model.CostModel.join_cost_block`) read
    operand quantities from these arrays so the hot loop never touches
    plan objects. ``plans`` keeps the originals in the same order —
    surviving candidates carry ``(outer_idx, inner_idx)`` backpointers
    into it, so materialization is a cheap gather.

    ``log2_rows`` stores ``math.log2(max(rows, 2.0))`` per plan. It is
    precomputed here with the *same* ``math.log2`` call the scalar
    sort-merge cost formula makes (one call per stored plan instead of
    one per candidate), which both removes a transcendental from the
    kernel and keeps the batched path bit-for-bit identical to the
    scalar one — ``np.log2`` is not guaranteed to round like libm.
    """

    __slots__ = ("plans", "costs", "rows", "out_bytes", "log2_rows")

    def __init__(self, plans: Sequence["Plan"]) -> None:
        count = len(plans)
        self.plans: tuple[Plan, ...] = tuple(plans)
        self.costs = np.empty((count, 9))
        self.rows = np.empty(count)
        self.out_bytes = np.empty(count)
        self.log2_rows = np.empty(count)
        for position, plan in enumerate(self.plans):
            self.costs[position] = plan.cost
            rows = plan.rows
            self.rows[position] = rows
            self.out_bytes[position] = rows * plan.width
            self.log2_rows[position] = math.log2(max(rows, 2.0))

    def __len__(self) -> int:
        return len(self.plans)

    def slice(self, start: int, stop: int) -> "PlanBlock":
        """Zero-copy view of rows ``[start, stop)``.

        Used to chunk the outer axis of large candidate blocks; numpy
        slices are views, so no mirror data is duplicated.
        """
        block = object.__new__(PlanBlock)
        block.plans = self.plans[start:stop]
        block.costs = self.costs[start:stop]
        block.rows = self.rows[start:stop]
        block.out_bytes = self.out_bytes[start:stop]
        block.log2_rows = self.log2_rows[start:stop]
        return block


def plan_depth(plan: Plan) -> int:
    """Height of the plan tree (a single scan has depth 1)."""
    if isinstance(plan, JoinPlan):
        return 1 + max(plan_depth(plan.left), plan_depth(plan.right))
    return 1


def count_joins(plan: Plan) -> int:
    """Number of join operators in the plan."""
    return sum(1 for node in plan.walk() if isinstance(node, JoinPlan))


def is_left_deep(plan: Plan) -> bool:
    """Whether every join's right operand is a base-table access."""
    return all(
        isinstance(node.right, ScanPlan)
        for node in plan.walk()
        if isinstance(node, JoinPlan)
    )
