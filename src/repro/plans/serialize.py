"""Plan and result serialization: JSON dictionaries and back.

EXPLAIN-style structured output: plan trees and optimization results
rendered as plain dictionaries for logging, diffing across optimizer
versions, or feeding external visualization tools — plus the inverse
direction (:func:`plan_from_dict`, :func:`result_from_dict`) so plans
and results survive a round trip through JSON, e.g. when a result is
produced in one process or machine and inspected in another.

The round trip preserves everything cost comparisons and plan display
need (operators, cardinalities, the full nine-dimensional cost vectors,
run metrics). Two things are deliberately not reconstructed: per-probe
index statistics (``ScanPlan.probe_info`` — derived data the cost model
only reads while *building* plans) and the frontier's plan trees
(``result_to_dict`` stores frontier cost vectors only; rebuilding gives
``(cost, None)`` entries). For full-fidelity transport inside one
Python ecosystem use ``pickle`` — all plan/result types support it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.cost.objectives import ALL_OBJECTIVES, parse_objective
from repro.exceptions import ReproError
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (the core
    # package imports config, which imports this package).
    from repro.core.result import OptimizationResult


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialize a plan tree to nested dictionaries."""
    if not isinstance(plan, (ScanPlan, JoinPlan)):
        raise ReproError(
            f"cannot serialize plan node: {type(plan).__name__}"
        )
    cost = {
        objective.name.lower(): plan.cost[objective.index]
        for objective in ALL_OBJECTIVES
    }
    if isinstance(plan, ScanPlan):
        node: dict[str, Any] = {
            "node": "scan",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "table": plan.table_name,
            "alias": plan.alias,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
        }
        if plan.spec.method.value == "sample_scan":
            node["sampling_rate"] = plan.spec.sampling_rate
        if plan.spec.index_name is not None:
            node["index"] = plan.spec.index_name
        return node
    if isinstance(plan, JoinPlan):
        return {
            "node": "join",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "dop": plan.spec.dop,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    raise ReproError(  # pragma: no cover - guarded above
        f"cannot serialize plan node: {type(plan).__name__}"
    )


def plan_from_dict(node: dict[str, Any]) -> Plan:
    """Rebuild a plan tree serialized by :func:`plan_to_dict`.

    The accumulated tuple-loss fraction is recovered from the cost
    vector (the enumerator stores it as the tuple-loss dimension);
    ``probe_info`` is not reconstructed (see the module docstring).
    """
    try:
        kind = node["node"]
        cost = tuple(
            float(node["cost"][objective.name.lower()])
            for objective in ALL_OBJECTIVES
        )
        loss = cost[8]
        if kind == "scan":
            spec = ScanSpec(
                method=ScanMethod(node["method"]),
                sampling_rate=node.get("sampling_rate", 1.0),
                index_name=node.get("index"),
            )
            return ScanPlan(
                alias=node["alias"],
                table_name=node["table"],
                spec=spec,
                rows=node["rows"],
                width=node["width"],
                cost=cost,
                loss=loss,
            )
        if kind == "join":
            spec = JoinSpec(
                method=JoinMethod(node["method"]), dop=node["dop"]
            )
            return JoinPlan(
                spec,
                plan_from_dict(node["left"]),
                plan_from_dict(node["right"]),
                node["rows"],
                node["width"],
                cost,
                loss,
            )
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(f"malformed plan dictionary: {error}") from error
    raise ReproError(f"cannot deserialize plan node kind {kind!r}")


def result_to_dict(result: "OptimizationResult") -> dict[str, Any]:
    """Serialize an optimization result (run metrics + chosen plan)."""
    preferences = result.preferences
    return {
        "algorithm": result.algorithm,
        "query": result.query_name,
        "alpha": result.alpha,
        "objectives": [o.name.lower() for o in preferences.objectives],
        "weights": list(preferences.weights),
        "bounds": [
            None if b == float("inf") else b for b in preferences.bounds
        ],
        "weighted_cost": (
            None
            if result.weighted_cost == float("inf")
            else result.weighted_cost
        ),
        "respects_bounds": result.respects_bounds,
        "plan": plan_to_dict(result.plan) if result.plan else None,
        "plan_cost": (
            None if result.plan_cost is None else list(result.plan_cost)
        ),
        "frontier_size": len(result.frontier),
        "frontier": [list(cost) for cost in result.frontier_costs],
        "metrics": {
            "optimization_time_ms": result.optimization_time_ms,
            "memory_kb": result.memory_kb,
            "pareto_last_complete": result.pareto_last_complete,
            "plans_considered": result.plans_considered,
            "candidates_vectorized": result.candidates_vectorized,
            "iterations": result.iterations,
            "timed_out": result.timed_out,
            "deadline_hit": result.deadline_hit,
        },
    }


def result_from_dict(payload: dict[str, Any]) -> "OptimizationResult":
    """Rebuild a result serialized by :func:`result_to_dict`.

    Frontier entries come back as ``(cost, None)`` — the serialized form
    stores frontier *costs*, not the full plan trees (see the module
    docstring). Everything else round-trips, including preferences and
    run metrics.
    """
    from repro.core.preferences import Preferences
    from repro.core.result import OptimizationResult

    try:
        preferences = Preferences(
            objectives=tuple(
                parse_objective(name) for name in payload["objectives"]
            ),
            weights=tuple(payload["weights"]),
            bounds=tuple(
                float("inf") if bound is None else bound
                for bound in payload["bounds"]
            ),
        )
        metrics = payload["metrics"]
        return OptimizationResult(
            algorithm=payload["algorithm"],
            query_name=payload["query"],
            preferences=preferences,
            plan=(
                plan_from_dict(payload["plan"])
                if payload["plan"] is not None
                else None
            ),
            plan_cost=(
                tuple(payload["plan_cost"])
                if payload.get("plan_cost") is not None
                else None
            ),
            frontier=tuple(
                (tuple(cost), None) for cost in payload["frontier"]
            ),
            optimization_time_ms=metrics["optimization_time_ms"],
            memory_kb=metrics["memory_kb"],
            pareto_last_complete=metrics["pareto_last_complete"],
            plans_considered=metrics["plans_considered"],
            candidates_vectorized=metrics.get("candidates_vectorized", 0),
            timed_out=metrics["timed_out"],
            iterations=metrics["iterations"],
            alpha=payload["alpha"],
            deadline_hit=metrics.get("deadline_hit", False),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(f"malformed result dictionary: {error}") from error


def result_from_json(text: str) -> "OptimizationResult":
    """Rebuild a result from :func:`result_to_json` output."""
    return result_from_dict(json.loads(text))


def result_to_json(result: "OptimizationResult", indent: int = 2) -> str:
    """Serialize an optimization result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)
