"""Plan and result serialization to JSON-compatible dictionaries.

EXPLAIN-style structured output: plan trees and optimization results
rendered as plain dictionaries for logging, diffing across optimizer
versions, or feeding external visualization tools.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.cost.objectives import ALL_OBJECTIVES
from repro.exceptions import ReproError
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (the core
    # package imports config, which imports this package).
    from repro.core.result import OptimizationResult


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialize a plan tree to nested dictionaries."""
    if not isinstance(plan, (ScanPlan, JoinPlan)):
        raise ReproError(
            f"cannot serialize plan node: {type(plan).__name__}"
        )
    cost = {
        objective.name.lower(): plan.cost[objective.index]
        for objective in ALL_OBJECTIVES
    }
    if isinstance(plan, ScanPlan):
        node: dict[str, Any] = {
            "node": "scan",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "table": plan.table_name,
            "alias": plan.alias,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
        }
        if plan.spec.method.value == "sample_scan":
            node["sampling_rate"] = plan.spec.sampling_rate
        if plan.spec.index_name is not None:
            node["index"] = plan.spec.index_name
        return node
    if isinstance(plan, JoinPlan):
        return {
            "node": "join",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "dop": plan.spec.dop,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    raise ReproError(  # pragma: no cover - guarded above
        f"cannot serialize plan node: {type(plan).__name__}"
    )


def result_to_dict(result: "OptimizationResult") -> dict[str, Any]:
    """Serialize an optimization result (run metrics + chosen plan)."""
    preferences = result.preferences
    return {
        "algorithm": result.algorithm,
        "query": result.query_name,
        "alpha": result.alpha,
        "objectives": [o.name.lower() for o in preferences.objectives],
        "weights": list(preferences.weights),
        "bounds": [
            None if b == float("inf") else b for b in preferences.bounds
        ],
        "weighted_cost": (
            None
            if result.weighted_cost == float("inf")
            else result.weighted_cost
        ),
        "respects_bounds": result.respects_bounds,
        "plan": plan_to_dict(result.plan) if result.plan else None,
        "frontier_size": len(result.frontier),
        "frontier": [list(cost) for cost in result.frontier_costs],
        "metrics": {
            "optimization_time_ms": result.optimization_time_ms,
            "memory_kb": result.memory_kb,
            "pareto_last_complete": result.pareto_last_complete,
            "plans_considered": result.plans_considered,
            "iterations": result.iterations,
            "timed_out": result.timed_out,
        },
    }


def result_to_json(result: "OptimizationResult", indent: int = 2) -> str:
    """Serialize an optimization result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)
