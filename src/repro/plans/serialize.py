"""Plan and result serialization: JSON dictionaries and back.

EXPLAIN-style structured output: plan trees and optimization results
rendered as plain dictionaries for logging, diffing across optimizer
versions, or feeding external visualization tools — plus the inverse
direction (:func:`plan_from_dict`, :func:`result_from_dict`) so plans
and results survive a round trip through JSON, e.g. when a result is
produced in one process or machine and inspected in another.

The round trip preserves everything cost comparisons and plan display
need (operators, cardinalities, the full nine-dimensional cost vectors,
run metrics). Two things are deliberately not reconstructed: per-probe
index statistics (``ScanPlan.probe_info`` — derived data the cost model
only reads while *building* plans) and the frontier's plan trees
(``result_to_dict`` stores frontier cost vectors only; rebuilding gives
``(cost, None)`` entries). For full-fidelity transport inside one
Python ecosystem use ``pickle`` — all plan/result types support it.

The *request* direction (:func:`request_to_dict`,
:func:`request_from_dict` and the query/preference helpers underneath)
is the wire format of :mod:`repro.serving`: everything a remote client
needs to describe one optimization — query structure (or the
``{"kind": "tpch", "number": N}`` shorthand), preferences, algorithm,
precision, strictness, per-request timeout and tags — travels as plain
JSON. Per-request ``OptimizerConfig`` overrides deliberately do not:
a served request runs under the server's configuration, and silently
dropping an override would change what the fingerprint promises, so
``request_to_dict`` rejects requests that carry one.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.cost.objectives import ALL_OBJECTIVES, parse_objective
from repro.exceptions import ReproError
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import JoinPlan, Plan, ScanPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (the core
    # package imports config, which imports this package).
    from repro.core.preferences import Preferences
    from repro.core.request import OptimizationRequest
    from repro.core.result import OptimizationResult
    from repro.query.query import MultiBlockQuery, Query


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialize a plan tree to nested dictionaries."""
    if not isinstance(plan, (ScanPlan, JoinPlan)):
        raise ReproError(
            f"cannot serialize plan node: {type(plan).__name__}"
        )
    cost = {
        objective.name.lower(): plan.cost[objective.index]
        for objective in ALL_OBJECTIVES
    }
    if isinstance(plan, ScanPlan):
        node: dict[str, Any] = {
            "node": "scan",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "table": plan.table_name,
            "alias": plan.alias,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
        }
        if plan.spec.method.value == "sample_scan":
            node["sampling_rate"] = plan.spec.sampling_rate
        if plan.spec.index_name is not None:
            node["index"] = plan.spec.index_name
        return node
    if isinstance(plan, JoinPlan):
        return {
            "node": "join",
            "operator": plan.spec.label,
            "method": plan.spec.method.value,
            "dop": plan.spec.dop,
            "rows": plan.rows,
            "width": plan.width,
            "cost": cost,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    raise ReproError(  # pragma: no cover - guarded above
        f"cannot serialize plan node: {type(plan).__name__}"
    )


def plan_from_dict(node: dict[str, Any]) -> Plan:
    """Rebuild a plan tree serialized by :func:`plan_to_dict`.

    The accumulated tuple-loss fraction is recovered from the cost
    vector (the enumerator stores it as the tuple-loss dimension);
    ``probe_info`` is not reconstructed (see the module docstring).
    """
    try:
        kind = node["node"]
        cost = tuple(
            float(node["cost"][objective.name.lower()])
            for objective in ALL_OBJECTIVES
        )
        loss = cost[8]
        if kind == "scan":
            spec = ScanSpec(
                method=ScanMethod(node["method"]),
                sampling_rate=node.get("sampling_rate", 1.0),
                index_name=node.get("index"),
            )
            return ScanPlan(
                alias=node["alias"],
                table_name=node["table"],
                spec=spec,
                rows=node["rows"],
                width=node["width"],
                cost=cost,
                loss=loss,
            )
        if kind == "join":
            spec = JoinSpec(
                method=JoinMethod(node["method"]), dop=node["dop"]
            )
            return JoinPlan(
                spec,
                plan_from_dict(node["left"]),
                plan_from_dict(node["right"]),
                node["rows"],
                node["width"],
                cost,
                loss,
            )
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(f"malformed plan dictionary: {error}") from error
    raise ReproError(f"cannot deserialize plan node kind {kind!r}")


def result_to_dict(result: "OptimizationResult") -> dict[str, Any]:
    """Serialize an optimization result (run metrics + chosen plan)."""
    preferences = result.preferences
    return {
        "algorithm": result.algorithm,
        "query": result.query_name,
        "alpha": result.alpha,
        "objectives": [o.name.lower() for o in preferences.objectives],
        "weights": list(preferences.weights),
        "bounds": [
            None if b == float("inf") else b for b in preferences.bounds
        ],
        "weighted_cost": (
            None
            if result.weighted_cost == float("inf")
            else result.weighted_cost
        ),
        "respects_bounds": result.respects_bounds,
        "plan": plan_to_dict(result.plan) if result.plan else None,
        "plan_cost": (
            None if result.plan_cost is None else list(result.plan_cost)
        ),
        "frontier_size": len(result.frontier),
        "frontier": [list(cost) for cost in result.frontier_costs],
        "metrics": {
            "optimization_time_ms": result.optimization_time_ms,
            "memory_kb": result.memory_kb,
            "pareto_last_complete": result.pareto_last_complete,
            "plans_considered": result.plans_considered,
            "candidates_vectorized": result.candidates_vectorized,
            "iterations": result.iterations,
            "timed_out": result.timed_out,
            "deadline_hit": result.deadline_hit,
            "degraded": result.degraded,
            "phase_ms": dict(result.phase_ms),
        },
    }


def result_from_dict(payload: dict[str, Any]) -> "OptimizationResult":
    """Rebuild a result serialized by :func:`result_to_dict`.

    Frontier entries come back as ``(cost, None)`` — the serialized form
    stores frontier *costs*, not the full plan trees (see the module
    docstring). Everything else round-trips, including preferences and
    run metrics.
    """
    from repro.core.preferences import Preferences
    from repro.core.result import OptimizationResult

    try:
        preferences = Preferences(
            objectives=tuple(
                parse_objective(name) for name in payload["objectives"]
            ),
            weights=tuple(payload["weights"]),
            bounds=tuple(
                float("inf") if bound is None else bound
                for bound in payload["bounds"]
            ),
        )
        metrics = payload["metrics"]
        return OptimizationResult(
            algorithm=payload["algorithm"],
            query_name=payload["query"],
            preferences=preferences,
            plan=(
                plan_from_dict(payload["plan"])
                if payload["plan"] is not None
                else None
            ),
            plan_cost=(
                tuple(payload["plan_cost"])
                if payload.get("plan_cost") is not None
                else None
            ),
            frontier=tuple(
                (tuple(cost), None) for cost in payload["frontier"]
            ),
            optimization_time_ms=metrics["optimization_time_ms"],
            memory_kb=metrics["memory_kb"],
            pareto_last_complete=metrics["pareto_last_complete"],
            plans_considered=metrics["plans_considered"],
            candidates_vectorized=metrics.get("candidates_vectorized", 0),
            timed_out=metrics["timed_out"],
            iterations=metrics["iterations"],
            alpha=payload["alpha"],
            deadline_hit=metrics.get("deadline_hit", False),
            degraded=metrics.get("degraded", False),
            phase_ms={
                str(phase): float(value)
                for phase, value in (metrics.get("phase_ms") or {}).items()
            },
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(f"malformed result dictionary: {error}") from error


def result_from_json(text: str) -> "OptimizationResult":
    """Rebuild a result from :func:`result_to_json` output."""
    return result_from_dict(json.loads(text))


def result_to_json(result: "OptimizationResult", indent: int = 2) -> str:
    """Serialize an optimization result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


# ----------------------------------------------------------------------
# Request direction: queries, preferences, optimization requests
# ----------------------------------------------------------------------
def query_to_dict(query: "Query | MultiBlockQuery") -> dict[str, Any]:
    """Serialize a query (block or multi-block) structurally.

    The structural form lists table references, filters and joins
    verbatim; it references base tables by *name*, so deserializing is
    schema-independent and validation against an actual catalog happens
    when the query is optimized.
    """
    from repro.query.query import MultiBlockQuery, Query

    if isinstance(query, MultiBlockQuery):
        return {
            "kind": "multi_block",
            "name": query.name,
            "blocks": [query_to_dict(block) for block in query.blocks],
        }
    if not isinstance(query, Query):
        raise ReproError(
            f"cannot serialize query: {type(query).__name__}"
        )
    node: dict[str, Any] = {
        "kind": "block",
        "name": query.name,
        "tables": [
            {"alias": ref.alias, "table": ref.table_name}
            for ref in query.table_refs
        ],
        "filters": [
            {
                "alias": flt.alias,
                "column": flt.column,
                "selectivity": flt.selectivity,
                "description": flt.description,
            }
            for flt in query.filters
        ],
        "joins": [
            {
                "left_alias": join.left_alias,
                "left_column": join.left_column,
                "right_alias": join.right_alias,
                "right_column": join.right_column,
                "selectivity": join.selectivity,
            }
            for join in query.joins
        ],
    }
    return node


def query_from_dict(payload: dict[str, Any]) -> "Query | MultiBlockQuery":
    """Rebuild a query serialized by :func:`query_to_dict`.

    Also accepts the compact TPC-H shorthand
    ``{"kind": "tpch", "number": N}``, which wire clients use instead
    of shipping the full query structure.
    """
    from repro.query.predicate import (
        FilterPredicate,
        JoinPredicate,
        TableRef,
    )
    from repro.query.query import MultiBlockQuery, Query

    try:
        kind = payload["kind"]
        if kind == "tpch":
            from repro.query.tpch_queries import tpch_query

            return tpch_query(int(payload["number"]))
        if kind == "multi_block":
            return MultiBlockQuery(
                name=payload["name"],
                blocks=tuple(
                    query_from_dict(block) for block in payload["blocks"]
                ),
            )
        if kind == "block":
            return Query(
                name=payload["name"],
                table_refs=tuple(
                    TableRef(alias=ref["alias"], table_name=ref["table"])
                    for ref in payload["tables"]
                ),
                filters=tuple(
                    FilterPredicate(
                        alias=flt["alias"],
                        column=flt["column"],
                        selectivity=flt["selectivity"],
                        description=flt.get("description", ""),
                    )
                    for flt in payload["filters"]
                ),
                joins=tuple(
                    JoinPredicate(
                        left_alias=join["left_alias"],
                        left_column=join["left_column"],
                        right_alias=join["right_alias"],
                        right_column=join["right_column"],
                        selectivity=join.get("selectivity"),
                    )
                    for join in payload["joins"]
                ),
            )
    except ReproError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(f"malformed query dictionary: {error}") from error
    raise ReproError(f"cannot deserialize query kind {kind!r}")


def preferences_to_dict(preferences: "Preferences") -> dict[str, Any]:
    """Serialize preferences (objectives with aligned weights/bounds)."""
    return {
        "objectives": [o.name.lower() for o in preferences.objectives],
        "weights": list(preferences.weights),
        "bounds": [
            None if bound == float("inf") else bound
            for bound in preferences.bounds
        ],
    }


def preferences_from_dict(payload: dict[str, Any]) -> "Preferences":
    """Rebuild preferences serialized by :func:`preferences_to_dict`.

    ``weights``/``bounds`` also accept objective-name-keyed mappings
    (missing weights default to 0, missing bounds to unbounded) so
    hand-written wire requests stay terse.
    """
    from repro.core.preferences import Preferences

    try:
        objectives = tuple(
            parse_objective(name) for name in payload["objectives"]
        )
        weights = payload.get("weights", [])
        bounds = payload.get("bounds", [])
        if isinstance(weights, dict) or isinstance(bounds, dict):
            return Preferences.from_maps(
                objectives,
                weights={
                    parse_objective(name): float(value)
                    for name, value in (weights or {}).items()
                },
                bounds={
                    parse_objective(name): float(value)
                    for name, value in (bounds or {}).items()
                },
            )
        return Preferences(
            objectives=objectives,
            weights=tuple(float(w) for w in weights),
            bounds=tuple(
                float("inf") if bound is None else float(bound)
                for bound in bounds
            ),
        )
    except ReproError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as error:
        raise ReproError(
            f"malformed preferences dictionary: {error}"
        ) from error


def request_to_dict(request: "OptimizationRequest") -> dict[str, Any]:
    """Serialize an optimization request to its wire form.

    Requests carrying a per-request ``OptimizerConfig`` override are
    rejected: the wire format runs requests under the *server's*
    configuration (see the module docstring).
    """
    if request.config is not None:
        raise ReproError(
            "requests with a per-request config override cannot be "
            "serialized; wire requests run under the server's config"
        )
    return {
        "query": query_to_dict(request.query),
        "preferences": preferences_to_dict(request.preferences),
        "algorithm": request.algorithm,
        "alpha": request.alpha,
        "strict": request.strict,
        "timeout_seconds": request.timeout_seconds,
        "tags": list(request.tags),
    }


def request_from_dict(payload: dict[str, Any]) -> "OptimizationRequest":
    """Rebuild a request serialized by :func:`request_to_dict`.

    Validation runs twice, deliberately: field-shape errors surface here
    as :class:`~repro.exceptions.ReproError`, and the rebuilt request
    re-validates itself against the algorithm registry on construction
    (unknown algorithms, bad alpha, unsupported strictness), so a
    malformed wire request can never reach an optimizer.
    """
    from repro.core.request import DEFAULT_ALPHA, OptimizationRequest

    if not isinstance(payload, dict):
        raise ReproError(
            f"request payload must be an object, "
            f"got {type(payload).__name__}"
        )
    try:
        query = query_from_dict(payload["query"])
        preferences = preferences_from_dict(payload["preferences"])
        timeout = payload.get("timeout_seconds")
        return OptimizationRequest(
            query=query,
            preferences=preferences,
            algorithm=payload.get("algorithm", "rta"),
            alpha=payload.get("alpha", DEFAULT_ALPHA),
            strict=bool(payload.get("strict", False)),
            timeout_seconds=None if timeout is None else float(timeout),
            tags=tuple(payload.get("tags", ())),
        )
    except ReproError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise ReproError(
            f"malformed request dictionary: {error}"
        ) from error


def request_from_json(text: str) -> "OptimizationRequest":
    """Rebuild a request from :func:`request_to_json` output."""
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise ReproError(f"request is not valid JSON: {error}") from error
    return request_from_dict(payload)


def request_to_json(request: "OptimizationRequest", indent: int | None = None) -> str:
    """Serialize an optimization request to a JSON string."""
    return json.dumps(request_to_dict(request), indent=indent)
