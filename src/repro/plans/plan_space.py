"""Plan-space enumeration: access paths and join configurations.

This module encodes which operator configurations are *available* for a
given table instance or operand pair; the dynamic-programming enumerator
in :mod:`repro.core.dp` combines them bottom-up. Availability rules:

* every base table offers a sequential scan;
* sampling scans (one per configured rate) are offered for every base
  table — the paper's parameterized sampling operator;
* an index scan is offered when an index's leading column carries a
  filter predicate;
* hash, sort-merge and nested-loop joins are offered for any operand
  pair (each at every configured DOP);
* an index-nested-loop join is offered when the inner operand is a
  single base table with an index on a join-predicate column.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cost.model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config
    # imports operator constants from this package).
    from repro.config import OptimizerConfig
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import ScanPlan
from repro.query.predicate import JoinPredicate
from repro.query.query import Query


class PlanSpace:
    """Enumerates available operator configurations for one query block."""

    def __init__(self, cost_model: CostModel, config: "OptimizerConfig"):
        self.cost_model = cost_model
        self.schema = cost_model.schema
        self.config = config
        self._join_specs: tuple[JoinSpec, ...] = tuple(
            JoinSpec(method=method, dop=dop)
            for method in config.join_methods
            if method is not JoinMethod.INDEX_NESTED_LOOP
            for dop in config.dop_values
        )
        self._index_nl_specs: tuple[JoinSpec, ...] = tuple(
            JoinSpec(method=JoinMethod.INDEX_NESTED_LOOP, dop=dop)
            for dop in config.dop_values
            if JoinMethod.INDEX_NESTED_LOOP in config.join_methods
        )

    # ------------------------------------------------------------------
    def access_paths(self, query: Query, alias: str) -> list[ScanPlan]:
        """All access paths for one table instance of ``query``."""
        table_name = query.table_name(alias)
        table = self.schema.table(table_name)
        paths = [
            self.cost_model.scan_plan(
                query, alias, ScanSpec(method=ScanMethod.SEQ)
            )
        ]
        for rate in self.config.sampling_rates:
            paths.append(
                self.cost_model.scan_plan(
                    query,
                    alias,
                    ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=rate),
                )
            )
        if self.config.enable_index_scans:
            filtered_columns = {f.column for f in query.filters_on(alias)}
            for index in self.schema.indexes_on(table.name):
                if index.leading_column in filtered_columns:
                    paths.append(
                        self.cost_model.scan_plan(
                            query,
                            alias,
                            ScanSpec(
                                method=ScanMethod.INDEX,
                                index_name=index.name,
                            ),
                        )
                    )
        return paths

    # ------------------------------------------------------------------
    @property
    def generic_join_specs(self) -> tuple[JoinSpec, ...]:
        """Configurations applicable to any operand pair."""
        return self._join_specs

    @property
    def index_nl_specs(self) -> tuple[JoinSpec, ...]:
        """Index-nested-loop configurations (one per DOP)."""
        return self._index_nl_specs

    def index_probe_inners(
        self,
        query: Query,
        inner_alias: str,
        predicates: tuple[JoinPredicate, ...],
    ) -> list[ScanPlan]:
        """Index-probe plans usable as IdxNL inner for ``inner_alias``.

        One probe plan per join-predicate column of the inner table that
        carries an index with that leading column.
        """
        table_name = query.table_name(inner_alias)
        probes: list[ScanPlan] = []
        seen_indexes: set[str] = set()
        for predicate in predicates:
            if inner_alias not in predicate.aliases:
                continue
            _, inner_column = predicate.side(inner_alias)
            index = self.schema.index_on_column(table_name, inner_column)
            if index is not None and index.name not in seen_indexes:
                seen_indexes.add(index.name)
                probes.append(
                    self.cost_model.index_probe_plan(
                        query, inner_alias, index.name, inner_column
                    )
                )
        return probes
