"""Scan and join operator descriptors.

The plan space follows Section 4 of the paper: Postgres' operators are
extended with a parameterized sampling scan (1%..5% of a base table) and
join/sort operators parameterized by the degree of parallelism (DOP, up
to 4 cores per operation). An operator *configuration* (method plus
parameters) is what the paper counts when it reports "over 10 different
configurations ... for the scan and for the join operator respectively".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import OptimizerError

#: Maximum degree of parallelism per operation (paper: up to 4 cores).
MAX_DOP = 4

#: Sampling rates of the parameterized sampling scan (paper: 1%..5%).
DEFAULT_SAMPLING_RATES = (0.01, 0.02, 0.03, 0.04, 0.05)


class ScanMethod(enum.Enum):
    """Access-path families for base tables."""

    SEQ = "seq_scan"
    INDEX = "index_scan"
    SAMPLE = "sample_scan"
    #: Parameterized index probe — only valid as the inner of an
    #: index-nested-loop join.
    INDEX_PROBE = "index_probe"


class JoinMethod(enum.Enum):
    """Join operator families."""

    HASH = "hash_join"
    MERGE = "merge_join"
    NESTED_LOOP = "nested_loop"
    INDEX_NESTED_LOOP = "index_nested_loop"


@dataclass(frozen=True)
class ScanSpec:
    """A concrete scan configuration.

    ``sampling_rate`` is only meaningful for ``SAMPLE`` scans; ``index_name``
    only for ``INDEX`` and ``INDEX_PROBE`` scans.
    """

    method: ScanMethod
    sampling_rate: float = 1.0
    index_name: str | None = None

    def __post_init__(self) -> None:
        if self.method is ScanMethod.SAMPLE:
            if not 0.0 < self.sampling_rate < 1.0:
                raise OptimizerError(
                    f"sampling rate must be in (0, 1), got {self.sampling_rate}"
                )
        elif self.sampling_rate != 1.0:
            raise OptimizerError(
                f"{self.method.value} must not set a sampling rate"
            )
        if self.method in (ScanMethod.INDEX, ScanMethod.INDEX_PROBE):
            if self.index_name is None:
                raise OptimizerError(f"{self.method.value} requires an index")
        elif self.index_name is not None:
            raise OptimizerError(f"{self.method.value} must not use an index")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``SampleScan(2%)``."""
        if self.method is ScanMethod.SEQ:
            return "SeqScan"
        if self.method is ScanMethod.SAMPLE:
            return f"SampleScan({self.sampling_rate:.0%})"
        if self.method is ScanMethod.INDEX:
            return f"IndexScan({self.index_name})"
        return f"IndexProbe({self.index_name})"


@dataclass(frozen=True)
class JoinSpec:
    """A concrete join configuration: method plus degree of parallelism."""

    method: JoinMethod
    dop: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.dop <= MAX_DOP:
            raise OptimizerError(
                f"DOP must be in [1, {MAX_DOP}], got {self.dop}"
            )

    @property
    def label(self) -> str:
        """Short display label, e.g. ``HashJoin[dop=2]``."""
        names = {
            JoinMethod.HASH: "HashJoin",
            JoinMethod.MERGE: "SortMergeJoin",
            JoinMethod.NESTED_LOOP: "NestedLoopJoin",
            JoinMethod.INDEX_NESTED_LOOP: "IdxNLJoin",
        }
        suffix = f"[dop={self.dop}]" if self.dop > 1 else ""
        return names[self.method] + suffix
