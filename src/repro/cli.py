"""Command-line interface: optimize TPC-H queries from the terminal.

Examples::

    python -m repro.cli --query 3 --algorithm rta --alpha 1.5 \\
        --objectives total_time,buffer_footprint,tuple_loss \\
        --weight total_time=1 --weight tuple_loss=1e5

    python -m repro.cli --query 5 --algorithm ira --alpha 1.2 \\
        --objectives total_time,cores,tuple_loss \\
        --weight total_time=1 --bound tuple_loss=0 --plot total_time:cores

    # Serve the optimizer over HTTP/JSON (POST /optimize, GET /metrics):
    python -m repro.cli serve --port 8080 --fast --max-in-flight 4 \\
        --queue-limit 64 --deadline-timeout 2.0

    # Serve with request tracing, then summarize the recorded traces:
    python -m repro.cli serve --port 8080 --fast --trace-dir traces/
    python -m repro.cli trace traces/trace-*.jsonl --chrome trace.json

    # Draw a parameterized workload family, calibrate its selectivities
    # against generated data, and validate predicted vs executed work:
    python -m repro.cli workload --family tpch-chain --joins 3 \\
        --count 4 --calibrate --validate
    python -m repro.cli workload --family job-chain --joins 5 --optimize

    # Check the tree against the repo's static invariants (REP001-006):
    python -m repro.cli lint src/repro examples --format json
"""

from __future__ import annotations

import argparse
import asyncio
import cProfile
import dataclasses
import pstats
import sys

from repro.catalog.tpch import tpch_schema
from repro.config import DEFAULT_CONFIG, FAST_CONFIG
from repro.core.preferences import Preferences
from repro.core.registry import available_algorithms
from repro.core.request import OptimizationRequest
from repro.core.service import BACKENDS, OptimizerService
from repro.cost.objectives import Objective, parse_objective
from repro.query.tpch_queries import tpch_query
from repro.viz import frontier_scatter, frontier_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Many-objective query optimization on TPC-H "
            "(Trummer & Koch, SIGMOD 2014 reproduction)"
        ),
    )
    parser.add_argument(
        "--query", type=int, required=True, metavar="N",
        help="TPC-H query number (1..22)",
    )
    parser.add_argument(
        "--algorithm", choices=available_algorithms(), default="rta",
        help="optimization algorithm (default: rta)",
    )
    parser.add_argument(
        "--alpha", type=float, default=1.5,
        help="approximation precision alpha >= 1 (default: 1.5)",
    )
    parser.add_argument(
        "--objectives", required=True, metavar="O1,O2,...",
        help="comma-separated objective names (e.g. total_time,tuple_loss)",
    )
    parser.add_argument(
        "--weight", action="append", default=[], metavar="OBJ=W",
        help="weight for one objective (repeatable)",
    )
    parser.add_argument(
        "--bound", action="append", default=[], metavar="OBJ=B",
        help="upper bound for one objective (repeatable)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the statistics (default: 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="optimization timeout (default: none)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced operator space (faster, smaller plan space)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="threads",
        help="execution backend for batch work (default: threads; "
             "'processes' runs warm spawn-safe worker processes)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the chosen backend (default: auto)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="intra-query plan-space shards for exa/rta (default: off); "
             "the sharded frontier is identical to the unsharded one",
    )
    parser.add_argument(
        "--sweep-alpha", metavar="A1,A2,...", default=None,
        help="optimize the query at several precisions as one batch "
             "through the chosen backend; prints one summary per alpha",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="strict pruning closure (guarantees for any objective subset)",
    )
    parser.add_argument(
        "--no-vectorized", action="store_true",
        help="disable the batched enumeration hot path (ablation/debug; "
             "results are bit-for-bit identical either way)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="run the request under cProfile and print the report "
             "(or write the raw stats to PATH for snakeviz/pstats)",
    )
    parser.add_argument(
        "--frontier", action="store_true",
        help="print the full approximate Pareto frontier",
    )
    parser.add_argument(
        "--plot", metavar="X:Y", default=None,
        help="ASCII scatter of the frontier over two objectives",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the optimizer over HTTP/JSON: POST /optimize takes "
            "the repro.plans.serialize request format, GET /metrics "
            "reports coalescing/shedding/latency counters"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks an ephemeral port; default: 8080)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=1.0,
        help="TPC-H scale factor for the statistics (default: 1)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced operator space (faster, smaller plan space)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="threads",
        help="service execution backend (default: threads; 'processes' "
             "sidesteps the GIL with warm worker processes)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for the process backend (default: auto)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, metavar="N",
        help="plan-cache capacity (default: 256; 0 disables)",
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=4, metavar="N",
        help="concurrent optimizations (default: 4)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="admitted requests allowed to wait for a slot before new "
             "arrivals are shed with 429 (default: 64; 0 = never queue)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-optimization timeout baked into the config",
    )
    parser.add_argument(
        "--deadline-timeout", type=float, default=None, metavar="SECONDS",
        help="enable the deadline scheduler with this default end-to-end "
             "budget; queueing time counts against it",
    )
    parser.add_argument(
        "--shed-expired", action="store_true",
        help="503 requests whose budget died while queueing instead of "
             "running the single-plan fallback for them",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace every request: append spans to DIR/trace-<pid>.jsonl "
             "(summarize with `repro trace`)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, give in-flight optimizations this long "
             "to finish before cancelling them; a forced drain exits "
             "nonzero (default: 10)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="enable fault injection, e.g. 'seed=7,kill=0.1,drop=0.05' "
             "(same spec format as the REPRO_CHAOS env var; for "
             "resilience testing only)",
    )
    return parser


def serve_main(argv: list[str]) -> int:
    """Entry point of the ``serve`` subcommand."""
    import signal

    from repro.parallel.deadline import DeadlineScheduler
    from repro.resilience.chaos import ChaosInjector, parse_chaos_spec
    from repro.serving.server import AsyncOptimizerServer

    args = build_serve_parser().parse_args(argv)
    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    scheduler = None
    try:
        if args.deadline_timeout is not None:
            config = config.with_timeout(args.deadline_timeout)
            scheduler = DeadlineScheduler()
        elif args.timeout is not None:
            config = config.with_timeout(args.timeout)
        chaos = None
        if args.chaos is not None:
            chaos_config = parse_chaos_spec(args.chaos)
            if chaos_config.enabled:
                chaos = ChaosInjector(chaos_config)
        service = OptimizerService(
            tpch_schema(args.scale_factor), config=config,
            cache_size=args.cache_size, backend=args.backend,
            workers=args.workers, scheduler=scheduler,
            chaos=chaos,
        )
        server = AsyncOptimizerServer(
            service,
            host=args.host, port=args.port,
            max_in_flight=args.max_in_flight,
            max_queue_depth=args.queue_limit,
            owns_service=True,
            shed_expired=args.shed_expired,
            trace_dir=args.trace_dir,
        )
    except Exception as error:  # bad flags -> CLI error, no traceback
        raise SystemExit(str(error))

    async def run() -> int:
        # Graceful drain on SIGTERM/SIGINT. Handlers go in *before* the
        # banner prints: supervisors (and the CLI test) treat the banner
        # as "ready", and a signal landing between banner and handler
        # would otherwise kill the process with the default disposition.
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        handled: list[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # e.g. Windows event loops
        host, port = await server.start()
        print(f"repro optimizer serving on http://{host}:{port}")
        print("  POST /optimize   GET /metrics   GET /healthz")
        print(f"  backend={args.backend} max_in_flight={args.max_in_flight} "
              f"queue_limit={args.queue_limit} "
              f"deadline={'on' if scheduler else 'off'}")
        if args.trace_dir:
            print(f"  tracing to {args.trace_dir}/trace-*.jsonl "
                  f"(summarize with `repro trace`)")
        if service.chaos is not None:
            print(f"  CHAOS ENABLED: {args.chaos or 'REPRO_CHAOS env'}")
        # The started server accepts connections on its own, so the
        # main coroutine just waits for the first signal, then drains
        # with the configured timeout.
        try:
            if handled:
                await stop_event.wait()
                print(
                    f"signal received, draining "
                    f"(timeout {args.drain_timeout:g}s)"
                )
                clean = await server.stop(
                    drain_timeout=args.drain_timeout
                )
                if not clean:
                    print("drain timed out: in-flight work cancelled")
                    return 1
                return 0
            await server.serve_forever()
            return 0
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Summarize JSONL trace files recorded by `repro serve "
            "--trace-dir`: per-request phase breakdown "
            "(queue/coalesce/cache/dispatch/enumerate/kernel/prune/"
            "materialize) and optional Chrome trace-event export"
        ),
    )
    parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="one or more trace-*.jsonl files",
    )
    parser.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also write the spans as Chrome trace-event JSON "
             "(load in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only print the first N request summaries",
    )
    return parser


def trace_main(argv: list[str]) -> int:
    """Entry point of the ``trace`` subcommand."""
    import json as json_module

    from repro.obs.trace import (
        format_trace_summaries,
        read_spans_jsonl,
        spans_to_chrome_trace,
        summarize_spans,
    )

    args = build_trace_parser().parse_args(argv)
    spans = []
    for path in args.files:
        try:
            spans.extend(read_spans_jsonl(path))
        except OSError as error:
            raise SystemExit(f"cannot read {path}: {error}")
        except ValueError as error:
            raise SystemExit(f"malformed trace file {path}: {error}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as sink:
            json_module.dump(spans_to_chrome_trace(spans), sink)
        print(f"chrome trace written to {args.chrome} "
              f"({len(spans)} spans; open in Perfetto)")
        print()
    summaries = summarize_spans(spans)
    if args.limit is not None:
        summaries = summaries[: args.limit]
    print(format_trace_summaries(summaries))
    return 0


def build_workload_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro workload",
        description=(
            "Draw parameterized query families (TPC-H chains, JOB-style "
            "IMDB chains), calibrate cost-model selectivities against "
            "generated data, and validate predicted vs executed work"
        ),
    )
    parser.add_argument(
        "--family", choices=("tpch-chain", "job-chain"), required=True,
        help="workload family to draw from",
    )
    parser.add_argument(
        "--joins", type=int, default=3, metavar="N",
        help="join count: extra joins beyond lineitem for tpch-chain, "
             "chain length 1..8 for job-chain (default: 3)",
    )
    parser.add_argument(
        "--shape", choices=("chain", "star", "cycle"), default="chain",
        help="tpch-chain join-graph shape (default: chain; cycle "
             "requires --joins 4)",
    )
    parser.add_argument(
        "--selectivity", type=float, default=0.3, metavar="S",
        help="anchor-filter selectivity knob in (0, 1] (default: 0.3)",
    )
    parser.add_argument(
        "--count", type=int, default=4, metavar="N",
        help="number of requests to draw (default: 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="family seed (same seed => identical fingerprints)",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=None, metavar="SF",
        help="tpch-chain statistics scale (default: execution-scale "
             "0.0002 so --calibrate/--validate stay fast)",
    )
    parser.add_argument(
        "--row-scale", type=float, default=1.0, metavar="X",
        help="job-chain fact-table scale (default: 1)",
    )
    parser.add_argument(
        "--algorithm", choices=available_algorithms(), default="rta",
        help="algorithm for the emitted requests (default: rta)",
    )
    parser.add_argument(
        "--sample-size", type=int, default=512, metavar="N",
        help="rows sampled per table for --calibrate (default: 512)",
    )
    parser.add_argument(
        "--max-plans", type=int, default=12, metavar="N",
        help="join orders executed per query for --validate (default: 12)",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="measure per-predicate selectivities from generated data "
             "and report q-errors (feeds --validate/--optimize)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="execute alternative join orders and report rank agreement "
             "between estimated and executed work",
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="run the drawn requests through OptimizerService "
             "(optimize_many) and print one summary per request",
    )
    return parser


def workload_main(argv: list[str]) -> int:
    """Entry point of the ``workload`` subcommand."""
    from repro.cost.model import CostModel
    from repro.workloads import (
        calibrate_family,
        make_family,
        summarize,
        validate_family,
    )

    args = build_workload_parser().parse_args(argv)
    try:
        if args.family == "tpch-chain":
            knobs = dict(
                extra_joins=args.joins, shape=args.shape,
                selectivity=args.selectivity,
            )
            if args.scale_factor is not None:
                knobs["scale_factor"] = args.scale_factor
        else:
            knobs = dict(
                joins=args.joins, selectivity=args.selectivity,
                row_scale=args.row_scale,
            )
        family = make_family(
            args.family, seed=args.seed, algorithm=args.algorithm, **knobs
        )
        requests = family.requests(args.count)
    except Exception as error:  # bad knobs -> CLI error, no traceback
        raise SystemExit(str(error))

    print(f"family {family.knob_fingerprint()} seed={args.seed}")
    for request in requests:
        block = request.query.main_block
        print(f"  {request.query_name}: {block.num_tables} tables, "
              f"{len(block.joins)} joins, {len(block.filters)} filters, "
              f"fingerprint {request.fingerprint()[:16]}")

    calibration = None
    if args.calibrate:
        result = calibrate_family(
            family, count=args.count, sample_size=args.sample_size
        )
        calibration = result.statistics
        overridden = sum(r.overridden for r in result.reports)
        print()
        print(f"calibration over {len(result.reports)} predicates "
              f"({result.sample_size} rows/table sample, "
              f"{overridden} catalog estimates overridden):")
        print(f"  median q-error  catalog={result.median_q_error(False):.3f} "
              f"calibrated={result.median_q_error(True):.3f}")
        print(f"  max q-error     catalog={result.max_q_error(False):.3f} "
              f"calibrated={result.max_q_error(True):.3f}")
        for report in result.reports:
            marker = "*" if report.overridden else " "
            print(f"  {marker} {report.kind:6s} {report.description:48s} "
                  f"est {report.catalog:.4f} -> {report.calibrated:.4f} "
                  f"actual {report.actual:.4f} "
                  f"(q {report.q_error_catalog:.2f} -> "
                  f"{report.q_error_calibrated:.2f})")

    if args.validate:
        cost_model = (
            CostModel(family.schema, calibration=calibration)
            if calibration is not None else None
        )
        reports = validate_family(
            family, count=args.count, cost_model=cost_model,
            max_plans=args.max_plans,
        )
        metrics = summarize(reports)
        label = "calibrated" if calibration is not None else "catalog"
        print()
        print(f"validation ({label} estimates, "
              f"{args.max_plans} join orders/query):")
        for report in reports:
            print(f"  {report.query_name}: {len(report.measurements)} of "
                  f"{report.structures_total} orders executed, "
                  f"tau={report.kendall_tau:+.3f} "
                  f"top-1 regret={report.top1_regret:.1%}")
        print(f"  mean tau={metrics['mean_kendall_tau']:+.3f} "
              f"min tau={metrics['min_kendall_tau']:+.3f} "
              f"max top-1 regret={metrics['max_top1_regret']:.1%}")

    if args.optimize:
        service = OptimizerService(
            family.schema,
            cost_model=CostModel(family.schema, calibration=calibration),
        )
        try:
            results = service.optimize_many(requests)
        finally:
            service.close()
        print()
        print(f"optimized {len(results)} requests:")
        for result in results:
            print(f"  {result.summary()}")
    return 0


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis over the repo's invariants: determinism "
            "(REP001), lock discipline (REP002), spawn safety (REP003), "
            "async hygiene (REP004), fingerprint completeness (REP005), "
            "cache purity (REP006). Exit 0 = clean, 1 = violations, "
            "2 = analyzer error."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro", "examples"],
        metavar="PATH",
        help="files or directories to analyze "
             "(default: src/repro examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="ignore findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings to FILE as the new baseline "
             "and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def lint_main(argv: list[str]) -> int:
    """Entry point of the ``lint`` subcommand."""
    from repro.analysis import (
        Analyzer,
        AnalyzerError,
        all_rules,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )
    from repro.analysis.baseline import apply_baseline

    args = build_lint_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0
    try:
        report = Analyzer(rules).run(args.paths)
        if args.baseline is not None:
            report = apply_baseline(report, load_baseline(args.baseline))
        if args.write_baseline is not None:
            write_baseline(args.write_baseline, report.violations)
            print(f"baseline with {len(report.violations)} entries "
                  f"written to {args.write_baseline}")
            return 0
    except AnalyzerError as error:
        print(f"repro lint: internal analyzer error: {error}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report, rules))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


def _parse_assignments(pairs: list[str], label: str) -> dict[Objective, float]:
    parsed: dict[Objective, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"malformed --{label} {pair!r}; expected OBJ=VALUE")
        try:
            parsed[parse_objective(name)] = float(value)
        except ValueError as error:
            raise SystemExit(f"bad --{label} {pair!r}: {error}")
    return parsed


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "workload":
        return workload_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        objectives = tuple(
            parse_objective(name)
            for name in args.objectives.split(",")
            if name.strip()
        )
    except ValueError as error:
        raise SystemExit(str(error))
    weights = _parse_assignments(args.weight, "weight")
    bounds = _parse_assignments(args.bound, "bound")
    try:
        preferences = Preferences.from_maps(objectives, weights, bounds)
        query = tpch_query(args.query)
    except Exception as error:  # surfaced as CLI errors, not tracebacks
        raise SystemExit(str(error))

    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    try:
        config = config.with_timeout(args.timeout)
        if args.no_vectorized:
            config = dataclasses.replace(
                config, vectorized_enumeration=False
            )
    except Exception as error:  # e.g. negative --timeout
        raise SystemExit(str(error))
    service = OptimizerService(
        tpch_schema(args.scale_factor), config=config,
        backend=args.backend, workers=args.workers,
    )
    try:
        request = OptimizationRequest(
            query=query,
            preferences=preferences,
            algorithm=args.algorithm,
            alpha=args.alpha,
            strict=args.strict,
            tags=(f"cli:q{args.query}",),
        )
    except Exception as error:  # invalid request -> CLI error, no traceback
        raise SystemExit(str(error))
    if args.sweep_alpha and args.shards:
        raise SystemExit("--sweep-alpha and --shards are mutually exclusive")
    profiler = cProfile.Profile() if args.profile is not None else None
    if profiler is not None:
        profiler.enable()
    try:
        if args.sweep_alpha:
            try:
                alphas = tuple(
                    float(part)
                    for part in args.sweep_alpha.split(",")
                    if part.strip()
                )
                if not alphas:
                    raise ValueError("no values")
                batch = [request.replace(alpha=a) for a in alphas]
            except ValueError as error:
                raise SystemExit(f"bad --sweep-alpha: {error}")
            results = service.optimize_many(batch)
            print(f"alpha sweep over {alphas} ({args.backend} backend):")
            for alpha, sweep_result in zip(alphas, results):
                print(f"  alpha={alpha:<6} {sweep_result.summary()}")
            print()
            result = results[-1]
        elif args.shards:
            result = service.submit_sharded(request, num_shards=args.shards)
        else:
            result = service.submit(request)
    except Exception as error:
        raise SystemExit(str(error))
    finally:
        if profiler is not None:
            profiler.disable()
        service.close()

    if profiler is not None:
        if args.profile == "-":
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(30)
        else:
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile} "
                  f"(inspect with `python -m pstats` or snakeviz)")
        phase_summary = result.phase_summary()
        if phase_summary:
            print(phase_summary)
        print()

    print(result.summary())
    print()
    if result.plan is not None:
        print(result.plan.describe())
        print()
        for objective in objectives:
            print(f"  {objective.name.lower():20s} "
                  f"{result.cost_of(objective):12.6g} {objective.unit}")
    if args.frontier:
        print()
        print(f"approximate Pareto frontier ({len(result.frontier)} plans):")
        print(frontier_table(result, limit=50))
    if args.plot:
        x_name, _, y_name = args.plot.partition(":")
        try:
            x_objective = parse_objective(x_name)
            y_objective = parse_objective(y_name)
            print()
            print(frontier_scatter(result, x_objective, y_objective))
        except Exception as error:
            raise SystemExit(f"--plot failed: {error}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
