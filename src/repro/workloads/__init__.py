"""Workload families + cost-model ground-truthing.

Three pieces close the predict-vs-execute loop (ROADMAP item 3):

* :mod:`repro.workloads.families` — seeded, parameterized TPC-H and
  JOB-style request generators with stable fingerprints;
* :mod:`repro.workloads.calibrate` — data-driven selectivity
  calibration through :class:`~repro.engine.datagen.DataGenerator`,
  producing a :class:`CalibratedStatistics` overlay the
  :class:`~repro.cost.model.CostModel` consumes, with per-predicate
  q-error reports;
* :mod:`repro.workloads.validate` — executes optimizer-ranked join
  orders through the mini engine's
  :class:`~repro.engine.executor.WorkCounters` and scores rank
  agreement (Kendall tau-b, top-1 regret).
"""

from repro.workloads.calibrate import (
    CalibratedStatistics,
    CalibrationResult,
    Calibrator,
    PredicateReport,
    calibrate_family,
    q_error,
)
from repro.workloads.families import (
    FAMILIES,
    Family,
    job_chain_family,
    make_family,
    tpch_chain_family,
)
from repro.workloads.validate import (
    PlanMeasurement,
    ValidationReport,
    build_plan,
    enumerate_structures,
    kendall_tau,
    predicted_work,
    summarize,
    validate_family,
    validate_query,
)

__all__ = [
    "CalibratedStatistics",
    "CalibrationResult",
    "Calibrator",
    "FAMILIES",
    "Family",
    "PlanMeasurement",
    "PredicateReport",
    "ValidationReport",
    "build_plan",
    "calibrate_family",
    "enumerate_structures",
    "job_chain_family",
    "kendall_tau",
    "make_family",
    "predicted_work",
    "q_error",
    "summarize",
    "tpch_chain_family",
    "validate_family",
    "validate_query",
]
