"""Predicted-vs-actual validation: estimated cost against executed work.

The optimizer ranks plans by estimated cardinalities; the mini engine
(:mod:`repro.engine`) counts the work plans actually perform. This
harness closes the loop for a query:

1. enumerate alternative join orders over the query's join graph
   (canonical physical shape: sequential scans, hash joins, DOP 1 — the
   executor's work counters are invariant to operator choice, so join
   *order* is exactly the dimension where estimates can misrank);
2. predict each plan's executed work from the cost model's estimated
   cardinalities, mirroring the executor's counter semantics;
3. execute every plan over generated data and record
   :class:`~repro.engine.executor.WorkCounters`;
4. score rank agreement: Kendall tau-b between predicted and executed
   work, and the top-1 regret (how much more work the predicted-best
   plan does than the executed-best plan).

Passing a calibrated cost model (``CostModel(schema, calibration=...)``)
reruns the same harness with data-driven selectivities — the
``benchmarks/test_cost_accuracy.py`` gate asserts this measurably helps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.schema import Schema
from repro.cost.model import CostModel
from repro.engine.datagen import DataGenerator
from repro.engine.executor import Executor, WorkCounters
from repro.exceptions import OptimizerError
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import JoinPlan, Plan, ScanPlan
from repro.query.join_graph import JoinGraph
from repro.query.query import MultiBlockQuery, Query

#: Default cap on executed alternatives per query.
DEFAULT_MAX_PLANS = 12


def enumerate_structures(graph: JoinGraph) -> list:
    """All unordered join-order structures of the query's join graph.

    A structure is an alias bitmask for a single table or a nested
    ``(left, right)`` pair; each unordered tree appears exactly once
    (the split enumeration anchors the lowest bit on the left).

    For connected queries every subtree is required to be a connected
    subgraph — the csg-cmp restriction the optimizer itself enumerates
    under. This both matches the plan space under test and keeps
    execution tractable: a disconnected subtree forces a Cartesian
    product whose materialization dwarfs every real join. Disconnected
    queries fall back to unrestricted splits so enumeration stays
    complete.
    """
    connected_only = graph.is_connected(graph.full_mask)
    memo: dict[int, list] = {}

    def recurse(mask: int) -> list:
        cached = memo.get(mask)
        if cached is not None:
            return cached
        if mask & (mask - 1) == 0:  # single bit: leaf
            result = [mask]
        elif connected_only and not graph.is_connected(mask):
            result = []
        else:
            result = [
                (left_structure, right_structure)
                for left, right in graph.splits(mask)
                for left_structure in recurse(left)
                for right_structure in recurse(right)
            ]
        memo[mask] = result
        return result

    return recurse(graph.full_mask)


def _structure_mask(structure) -> int:
    if isinstance(structure, int):
        return structure
    return _structure_mask(structure[0]) | _structure_mask(structure[1])


def build_plan(
    cost_model: CostModel,
    query: Query,
    graph: JoinGraph,
    structure,
    sampling: Mapping[str, float] | None = None,
) -> Plan:
    """Materialize a structure as a canonical cost-annotated plan.

    Scans are sequential (or Bernoulli-sampling at ``sampling[alias]``),
    joins are hash joins at DOP 1 — the executor's counters only depend
    on join order and sampling, so this canonical shape isolates exactly
    the estimated quantities under test.
    """
    if isinstance(structure, int):
        alias = next(iter(graph.aliases_of(structure)))
        rate = (sampling or {}).get(alias)
        if rate is None:
            spec = ScanSpec(method=ScanMethod.SEQ)
        else:
            spec = ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=rate)
        return cost_model.scan_plan(query, alias, spec)
    left = build_plan(cost_model, query, graph, structure[0], sampling)
    right = build_plan(cost_model, query, graph, structure[1], sampling)
    predicates = graph.predicates_between(
        _structure_mask(structure[0]), _structure_mask(structure[1])
    )
    return cost_model.join_plan(
        query, JoinSpec(method=JoinMethod.HASH, dop=1), left, right,
        predicates,
    )


def predicted_work(cost_model: CostModel, plan: Plan) -> float:
    """Estimated executed work, mirroring the WorkCounters semantics.

    ``rows_scanned`` is the (sampled) base-table cardinality — exact by
    construction; ``rows_joined`` sums both join operand cardinalities
    and ``rows_emitted`` is the root cardinality — both taken from the
    cost model's estimates, which is where selectivity errors surface.
    """
    if isinstance(plan, ScanPlan):
        row_count = cost_model.schema.table(plan.table_name).row_count
        return row_count * plan.spec.sampling_rate
    if isinstance(plan, JoinPlan):
        return (
            predicted_work(cost_model, plan.left)
            + predicted_work(cost_model, plan.right)
            + plan.left.rows
            + plan.right.rows
        )
    raise OptimizerError(f"unsupported plan node: {type(plan).__name__}")


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall tau-b rank correlation (tie-corrected, in [-1, 1])."""
    if len(xs) != len(ys):
        raise OptimizerError("kendall_tau needs equal-length sequences")
    concordant = discordant = ties_x = ties_y = 0
    for i in range(len(xs)):
        for j in range(i + 1, len(xs)):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            if dx == 0.0 and dy == 0.0:
                continue
            if dx == 0.0:
                ties_x += 1
            elif dy == 0.0:
                ties_y += 1
            elif (dx > 0.0) == (dy > 0.0):
                concordant += 1
            else:
                discordant += 1
    denominator = (
        (concordant + discordant + ties_x)
        * (concordant + discordant + ties_y)
    ) ** 0.5
    if denominator == 0.0:
        return 0.0
    return (concordant - discordant) / denominator


@dataclass(frozen=True)
class PlanMeasurement:
    """One executed alternative: its plan, prediction and actual work."""

    plan: Plan
    predicted: float
    counters: WorkCounters

    @property
    def executed(self) -> int:
        """Actual work units (WorkCounters.total)."""
        return self.counters.total


@dataclass(frozen=True)
class ValidationReport:
    """Rank agreement between estimated and executed work for one query."""

    query_name: str
    measurements: tuple[PlanMeasurement, ...]
    structures_total: int

    @property
    def predicted(self) -> tuple[float, ...]:
        return tuple(m.predicted for m in self.measurements)

    @property
    def executed(self) -> tuple[int, ...]:
        return tuple(m.executed for m in self.measurements)

    @property
    def kendall_tau(self) -> float:
        """Tau-b between predicted and executed work over alternatives."""
        return kendall_tau(self.predicted, self.executed)

    @property
    def best_executed(self) -> int:
        """Least executed work over all measured alternatives."""
        return min(self.executed)

    @property
    def predicted_best(self) -> PlanMeasurement:
        """The alternative the estimates rank first."""
        return min(self.measurements, key=lambda m: m.predicted)

    @property
    def top1_regret(self) -> float:
        """Excess work ratio of the predicted-best plan (0 = optimal).

        ``executed(predicted-best) / min(executed) - 1`` — e.g. 0.25
        means the estimate-chosen order did 25% more work than the best
        measured order.
        """
        best = self.best_executed
        if best == 0:
            return 0.0
        return self.predicted_best.executed / best - 1.0


def validate_query(
    schema: Schema,
    query: Query | MultiBlockQuery,
    cost_model: CostModel | None = None,
    data_seed: int = 0,
    executor_seed: int = 0,
    max_plans: int = DEFAULT_MAX_PLANS,
    sample_seed: int = 0,
) -> ValidationReport:
    """Execute alternative join orders of ``query`` and score agreement.

    When the structure count exceeds ``max_plans``, a seeded sample is
    executed (deterministic across runs and processes). A calibrated
    ``cost_model`` reruns predictions with data-driven selectivities.
    """
    if isinstance(query, MultiBlockQuery):
        if query.has_subqueries:
            raise OptimizerError(
                "validation runs over single-block queries"
            )
        query = query.main_block
    if max_plans < 1:
        raise OptimizerError(f"max_plans must be >= 1, got {max_plans}")
    if cost_model is None:
        cost_model = CostModel(schema)
    graph = JoinGraph(query)
    structures = enumerate_structures(graph)
    total = len(structures)
    if total > max_plans:
        structures = random.Random(
            f"validate:{query.name}:{sample_seed}"
        ).sample(structures, max_plans)
    generator = DataGenerator(schema, seed=data_seed)
    executor = Executor(generator, query, seed=executor_seed)
    measurements = []
    for structure in structures:
        plan = build_plan(cost_model, query, graph, structure)
        executor.execute(plan)
        measurements.append(
            PlanMeasurement(
                plan=plan,
                predicted=predicted_work(cost_model, plan),
                counters=executor.last_work,
            )
        )
    return ValidationReport(
        query_name=query.name,
        measurements=tuple(measurements),
        structures_total=total,
    )


def validate_family(
    family,
    count: int = 4,
    cost_model: CostModel | None = None,
    data_seed: int = 0,
    executor_seed: int = 0,
    max_plans: int = DEFAULT_MAX_PLANS,
) -> list[ValidationReport]:
    """Validation reports for the first ``count`` draws of a family."""
    return [
        validate_query(
            family.schema,
            family.query(i),
            cost_model=cost_model,
            data_seed=data_seed,
            executor_seed=executor_seed,
            max_plans=max_plans,
        )
        for i in range(count)
    ]


def summarize(reports: Sequence[ValidationReport]) -> dict[str, float]:
    """Aggregate rank-agreement metrics over a batch of reports."""
    if not reports:
        raise OptimizerError("no validation reports to summarize")
    taus = sorted(r.kendall_tau for r in reports)
    regrets = sorted(r.top1_regret for r in reports)
    return {
        "queries": float(len(reports)),
        "mean_kendall_tau": sum(taus) / len(taus),
        "min_kendall_tau": taus[0],
        "median_top1_regret": regrets[len(regrets) // 2],
        "max_top1_regret": regrets[-1],
    }
