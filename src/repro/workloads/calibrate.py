"""Data-driven selectivity calibration with q-error reporting.

The catalog's selectivity estimates are *nominal*: filter predicates
carry a spec-style fraction and equality joins use ``1 / max(ndv)``. The
mini engine realizes filters as value-keyed Bernoulli draws
(:func:`repro.engine.executor.filter_passes`), so on a low-ndv column
the realized fraction can sit far from the nominal one — the classic
estimate-vs-data gap a real optimizer closes with ANALYZE.

This module closes the loop the same way: it samples generated rows
through :class:`~repro.engine.datagen.DataGenerator`, *measures* each
predicate's realized selectivity on the sample, and packs the
measurements into a :class:`CalibratedStatistics` overlay that
:class:`~repro.cost.model.CostModel` consumes (the duck-typed overlay
protocol of :mod:`repro.cost.cardinality`). Accuracy is reported as
**q-error** — ``max(est / act, act / est)`` — per predicate, against
ground truth measured over the full generated tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.catalog.schema import Schema
from repro.cost import cardinality
from repro.engine.datagen import DataGenerator, Row
from repro.engine.executor import filter_passes
from repro.exceptions import OptimizerError
from repro.query.predicate import FilterPredicate, JoinPredicate
from repro.query.query import MultiBlockQuery, Query

#: Default number of sampled rows per table for calibration.
DEFAULT_SAMPLE_SIZE = 512

#: Significance threshold (in standard deviations of the sampling
#: distribution) a measurement must clear to override the catalog
#: estimate. Below it the measurement is indistinguishable from the
#: catalog value, so overriding would only inject sampling noise —
#: this matters most for key/foreign-key joins, whose catalog
#: ``1 / max(ndv)`` estimate is already essentially exact.
SIGNIFICANCE_SIGMAS = 3.0


def q_error(estimated: float, actual: float) -> float:
    """The q-error ``max(est / act, act / est)`` (>= 1, 1 is exact)."""
    if estimated <= 0.0 or actual <= 0.0:
        return float("inf")
    return max(estimated / actual, actual / estimated)


@dataclass(frozen=True)
class PredicateReport:
    """Estimation accuracy of one predicate.

    ``catalog`` is the uncalibrated estimate, ``calibrated`` the
    sample-measured one, ``actual`` the full-data ground truth.
    """

    kind: str  # "filter" or "join"
    description: str
    catalog: float
    calibrated: float
    actual: float
    #: Whether the sample measurement was significant enough to replace
    #: the catalog estimate (False: calibrated == catalog).
    overridden: bool = True

    @property
    def q_error_catalog(self) -> float:
        """q-error of the uncalibrated (catalog) estimate."""
        return q_error(self.catalog, self.actual)

    @property
    def q_error_calibrated(self) -> float:
        """q-error of the sample-calibrated estimate."""
        return q_error(self.calibrated, self.actual)


class CalibratedStatistics:
    """Measured selectivities keyed by predicate (cost-model overlay).

    Implements the duck-typed overlay protocol of
    :mod:`repro.cost.cardinality`: lookups answer ``None`` for
    predicates that were never calibrated, so a partial overlay
    gracefully falls back to catalog estimates.
    """

    def __init__(self) -> None:
        self._filters: dict[FilterPredicate, float] = {}
        self._joins: dict[JoinPredicate, float] = {}

    # -- overlay protocol ------------------------------------------------
    def filter_selectivity(self, predicate: FilterPredicate) -> float | None:
        """Measured selectivity of ``predicate`` or ``None``."""
        return self._filters.get(predicate)

    def join_selectivity(self, predicate: JoinPredicate) -> float | None:
        """Measured selectivity of ``predicate`` or ``None``."""
        return self._joins.get(predicate)

    # -- construction ----------------------------------------------------
    def record_filter(self, predicate: FilterPredicate, value: float) -> None:
        """Record a measured filter selectivity."""
        self._filters[predicate] = value

    def record_join(self, predicate: JoinPredicate, value: float) -> None:
        """Record a measured join selectivity."""
        self._joins[predicate] = value

    def __len__(self) -> int:
        return len(self._filters) + len(self._joins)


@dataclass(frozen=True)
class CalibrationResult:
    """Overlay plus per-predicate accuracy reports."""

    statistics: CalibratedStatistics
    reports: tuple[PredicateReport, ...]
    sample_size: int

    def median_q_error(self, calibrated: bool) -> float:
        """Median q-error across predicates (calibrated or catalog)."""
        if not self.reports:
            raise OptimizerError("no predicates were calibrated")
        values = sorted(
            r.q_error_calibrated if calibrated else r.q_error_catalog
            for r in self.reports
        )
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0

    def max_q_error(self, calibrated: bool) -> float:
        """Worst-case q-error across predicates."""
        if not self.reports:
            raise OptimizerError("no predicates were calibrated")
        return max(
            r.q_error_calibrated if calibrated else r.q_error_catalog
            for r in self.reports
        )


class Calibrator:
    """Measures predicate selectivities over generated data.

    ``data_seed`` must match the :class:`DataGenerator` seed and
    ``executor_seed`` the :class:`~repro.engine.executor.Executor` seed
    used for any later execution, so measured filters reproduce the
    engine's exact Bernoulli draws.
    """

    def __init__(
        self,
        schema: Schema,
        data_seed: int = 0,
        executor_seed: int = 0,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> None:
        if sample_size < 1:
            raise OptimizerError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.schema = schema
        self.executor_seed = executor_seed
        self.sample_size = sample_size
        self.generator = DataGenerator(schema, seed=data_seed)
        self._full_tables: dict[str, list[Row]] = {}
        self._samples: dict[str, list[Row]] = {}

    # ------------------------------------------------------------------
    def _full(self, table_name: str) -> list[Row]:
        rows = self._full_tables.get(table_name)
        if rows is None:
            rows = self.generator.materialize(table_name)
            self._full_tables[table_name] = rows
        return rows

    def _sample(self, table_name: str) -> list[Row]:
        rows = self._samples.get(table_name)
        if rows is None:
            rows = self._full(table_name)[: self.sample_size]
            self._samples[table_name] = rows
        return rows

    # ------------------------------------------------------------------
    def _count_filter(
        self, predicate: FilterPredicate, rows: Sequence[Row]
    ) -> int:
        """Rows of ``rows`` passing the engine's exact value-keyed draw."""
        return sum(
            1
            for row in rows
            if filter_passes(self.executor_seed, predicate.alias, predicate,
                             row[predicate.column])
        )

    def measure_filter(
        self, predicate: FilterPredicate, rows: Sequence[Row]
    ) -> float:
        """Realized selectivity of a filter over ``rows``.

        Replays the engine's exact value-keyed draw. Zero passes clamp
        to half a row so downstream q-errors stay finite.
        """
        return max(self._count_filter(predicate, rows), 0.5) / len(rows)

    @staticmethod
    def _count_join_pairs(
        predicate: JoinPredicate,
        left_rows: Sequence[Row],
        right_rows: Sequence[Row],
    ) -> int:
        """Matching pairs of an equality join over row sets.

        Counts via value histograms (no quadratic pair loop).
        """
        left_counts = Counter(row[predicate.left_column] for row in left_rows)
        right_counts = Counter(
            row[predicate.right_column] for row in right_rows
        )
        return sum(
            count * right_counts[value]
            for value, count in left_counts.items()
            if value in right_counts
        )

    def measure_join(
        self,
        predicate: JoinPredicate,
        left_rows: Sequence[Row],
        right_rows: Sequence[Row],
    ) -> float:
        """Realized selectivity of an equality join over row sets.

        Normalizes matching pairs by ``|L| * |R|``; zero matches clamp
        to half a pair so downstream q-errors stay finite.
        """
        pairs = self._count_join_pairs(predicate, left_rows, right_rows)
        return max(pairs, 0.5) / (len(left_rows) * len(right_rows))

    # ------------------------------------------------------------------
    def calibrate(
        self, queries: Iterable[Query | MultiBlockQuery]
    ) -> CalibrationResult:
        """Calibrate every distinct predicate of ``queries``.

        Estimates come from the row *sample*; ground truth (for the
        q-error reports) from the full generated tables. Duplicate
        predicates across queries are measured once.
        """
        statistics = CalibratedStatistics()
        reports: list[PredicateReport] = []
        seen_filters: set[FilterPredicate] = set()
        seen_joins: set[JoinPredicate] = set()
        for item in queries:
            blocks = item.blocks if isinstance(item, MultiBlockQuery) else (item,)
            for block in blocks:
                for predicate in block.filters:
                    if predicate in seen_filters:
                        continue
                    seen_filters.add(predicate)
                    reports.append(
                        self._calibrate_filter(block, predicate, statistics)
                    )
                for predicate in block.joins:
                    if predicate in seen_joins:
                        continue
                    seen_joins.add(predicate)
                    reports.append(
                        self._calibrate_join(block, predicate, statistics)
                    )
        return CalibrationResult(
            statistics=statistics,
            reports=tuple(reports),
            sample_size=self.sample_size,
        )

    def _calibrate_filter(
        self,
        query: Query,
        predicate: FilterPredicate,
        statistics: CalibratedStatistics,
    ) -> PredicateReport:
        table_name = query.table_name(predicate.alias)
        sample = self._sample(table_name)
        passed = self._count_filter(predicate, sample)
        measured = max(passed, 0.5) / len(sample)
        actual = self.measure_filter(predicate, self._full(table_name))
        # Binomial significance test: override the catalog estimate only
        # when the measured pass count is inconsistent with it.
        nominal = predicate.selectivity
        sigma = (len(sample) * nominal * (1.0 - nominal)) ** 0.5
        overridden = abs(passed - len(sample) * nominal) > (
            SIGNIFICANCE_SIGMAS * max(sigma, 0.5)
        )
        if overridden:
            statistics.record_filter(predicate, measured)
        return PredicateReport(
            kind="filter",
            description=(
                f"{predicate.alias}.{predicate.column} "
                f"(nominal {predicate.selectivity:g})"
            ),
            catalog=nominal,
            calibrated=measured if overridden else nominal,
            actual=actual,
            overridden=overridden,
        )

    def _calibrate_join(
        self,
        query: Query,
        predicate: JoinPredicate,
        statistics: CalibratedStatistics,
    ) -> PredicateReport:
        left_table = query.table_name(predicate.left_alias)
        right_table = query.table_name(predicate.right_alias)
        left_sample = self._sample(left_table)
        right_sample = self._sample(right_table)
        pairs = self._count_join_pairs(predicate, left_sample, right_sample)
        total = len(left_sample) * len(right_sample)
        measured = max(pairs, 0.5) / total
        actual = self.measure_join(
            predicate, self._full(left_table), self._full(right_table)
        )
        catalog = cardinality.join_predicate_selectivity(
            self.schema, query, predicate
        )
        # Poisson significance test on the matching-pair count: the
        # catalog's 1/max(ndv) rule is exact for the generator's dense
        # keys, so only a clearly inconsistent measurement overrides it.
        expected = catalog * total
        overridden = abs(pairs - expected) > (
            SIGNIFICANCE_SIGMAS * max(expected, 1.0) ** 0.5
        )
        if overridden:
            statistics.record_join(predicate, measured)
        return PredicateReport(
            kind="join",
            description=(
                f"{predicate.left_alias}.{predicate.left_column} = "
                f"{predicate.right_alias}.{predicate.right_column}"
            ),
            catalog=catalog,
            calibrated=measured if overridden else catalog,
            actual=actual,
            overridden=overridden,
        )


def calibrate_family(
    family,
    count: int = 8,
    data_seed: int = 0,
    executor_seed: int = 0,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> CalibrationResult:
    """Calibrate all predicates drawn by the first ``count`` requests.

    Convenience wrapper over :class:`Calibrator` for
    :class:`~repro.workloads.families.Family` streams.
    """
    calibrator = Calibrator(
        family.schema,
        data_seed=data_seed,
        executor_seed=executor_seed,
        sample_size=sample_size,
    )
    return calibrator.calibrate(family.query(i) for i in range(count))
