"""Parameterized query families over TPC-H and IMDB (JOB-style).

A *family* is a seeded, parameterized stream of
:class:`~repro.core.request.OptimizationRequest`s. Two families ship:

* ``tpch-chain`` — TPC-H join queries anchored on ``lineitem`` with a
  controllable extra-join count and shape (``chain``/``star``/``cycle``),
  following the Q01-with-extra-joins pattern of the vldb_experiments
  harness;
* ``job-chain`` — JOB-style 1..8-join chain queries over the mini-IMDB
  schema (:mod:`repro.catalog.imdb`), following the
  Learned-Optimizers-Benchmarking-Suite enumeration.

Draws are reproducible and *position-independent*: request ``i`` is a
pure function of (family knobs, seed, ``i``), so two processes with the
same seed produce identical request fingerprints regardless of how many
requests each one draws (spawn-safe — no shared RNG state).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.catalog.imdb import imdb_schema
from repro.catalog.schema import Schema
from repro.catalog.tpch import tpch_schema
from repro.config import OptimizerConfig
from repro.core.preferences import Preferences
from repro.core.request import DEFAULT_ALPHA, OptimizationRequest
from repro.cost.objectives import ALL_OBJECTIVES
from repro.exceptions import OptimizerError
from repro.query.predicate import FilterPredicate, JoinPredicate, TableRef
from repro.query.query import Query

#: Default tiny scale for execution-backed studies: the mini engine
#: materializes whole join results, so calibration/validation runs use a
#: lineitem of ~1200 rows instead of 6M.
TPCH_EXECUTION_SCALE = 0.0002

#: TPC-H chain from the anchor: (table, join edge added with it).
#: The first four edges grow the order-side chain lineitem → orders →
#: customer → nation → region; the last two grow the part-side chain
#: lineitem → partsupp → part (lineitem becomes an interior node).
_TPCH_CHAIN_STEPS = (
    ("orders", JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey")),
    ("customer", JoinPredicate("orders", "o_custkey", "customer", "c_custkey")),
    ("nation", JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey")),
    ("region", JoinPredicate("nation", "n_regionkey", "region", "r_regionkey")),
    ("partsupp", JoinPredicate("lineitem", "l_partkey", "partsupp", "ps_partkey")),
    ("part", JoinPredicate("partsupp", "ps_partkey", "part", "p_partkey")),
)

#: TPC-H star: every spoke joins the lineitem hub directly.
_TPCH_STAR_STEPS = (
    ("orders", JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey")),
    ("supplier", JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey")),
    ("partsupp", JoinPredicate("lineitem", "l_partkey", "partsupp", "ps_partkey")),
    ("part", JoinPredicate("lineitem", "l_partkey", "part", "p_partkey")),
)

#: TPC-H cycle: a genuine FK circuit closed back into lineitem
#: (lineitem → orders → customer → nation ← supplier ← lineitem).
_TPCH_CYCLE_STEPS = (
    ("orders", JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey")),
    ("customer", JoinPredicate("orders", "o_custkey", "customer", "c_custkey")),
    ("nation", JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey")),
    ("supplier", JoinPredicate("nation", "n_nationkey", "supplier", "s_nationkey")),
)
_TPCH_CYCLE_CLOSER = JoinPredicate("supplier", "s_suppkey",
                                   "lineitem", "l_suppkey")

#: Secondary TPC-H filter columns: low-ndv columns whose value-keyed
#: Bernoulli realization deviates most from the nominal selectivity —
#: exactly where data calibration has something to correct.
_TPCH_EXTRA_FILTERS = {
    "orders": "o_orderstatus",       # ndv 3
    "customer": "c_mktsegment",      # ndv 5
    "part": "p_brand",               # ndv 25
}

#: JOB chain: (new table alias, table name, join edge) per join count.
_JOB_STEPS = (
    ("cn", "company_name",
     JoinPredicate("mc", "company_id", "cn", "id")),
    ("t", "title",
     JoinPredicate("mc", "movie_id", "t", "id")),
    ("ct", "company_type",
     JoinPredicate("mc", "company_type_id", "ct", "id")),
    ("kt", "kind_type",
     JoinPredicate("t", "kind_id", "kt", "id")),
    ("ci", "cast_info",
     JoinPredicate("t", "id", "ci", "movie_id")),
    ("n", "name",
     JoinPredicate("ci", "person_id", "n", "id")),
    ("rt", "role_type",
     JoinPredicate("ci", "role_id", "rt", "id")),
    ("mi", "movie_info",
     JoinPredicate("t", "id", "mi", "movie_id")),
)

#: Maximum JOB chain length (Snippet 3's 1..8-join enumeration).
MAX_JOB_JOINS = len(_JOB_STEPS)

_JOB_EXTRA_FILTERS = {
    "t": "production_year",          # ndv 120
    "ci": "role_id",                 # ndv 12
    "cn": "country_code",            # ndv 60
}


class Family:
    """A seeded, parameterized stream of optimization requests.

    ``query_builder(index, rng)`` must be a pure function of its inputs;
    the per-index RNG is derived from the family fingerprint so draws
    are identical across processes and independent of draw order.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        query_builder: Callable[[int, random.Random], Query],
        seed: int = 0,
        algorithm: str = "rta",
        alpha: float = DEFAULT_ALPHA,
        config: OptimizerConfig | None = None,
        knobs: dict | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.seed = seed
        self.algorithm = algorithm
        self.alpha = alpha
        self.config = config
        self.knobs = dict(knobs or {})
        self._query_builder = query_builder

    # ------------------------------------------------------------------
    def knob_fingerprint(self) -> str:
        """Canonical text form of the family's identity and knobs."""
        knob_text = ",".join(
            f"{key}={self.knobs[key]!r}" for key in sorted(self.knobs)
        )
        return f"{self.name}[{knob_text}]@{self.schema.name}"

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"{self.knob_fingerprint()}:{self.seed}:{index}")

    def _draw(self, index: int) -> tuple[Query, Preferences]:
        """Query and preferences of draw ``index`` from one RNG stream.

        Preferences follow the paper's setup: 2..4 objectives sampled
        from the nine, weights uniform — drawn after the query's own
        draws on the same per-index stream.
        """
        if index < 0:
            raise OptimizerError(f"request index must be >= 0, got {index}")
        rng = self._rng(index)
        query = self._query_builder(index, rng)
        count = rng.randint(2, 4)
        objectives = tuple(sorted(rng.sample(ALL_OBJECTIVES, count),
                                  key=lambda o: o.index))
        weights = tuple(rng.uniform(0.1, 1.0) for _ in objectives)
        return query, Preferences(objectives=objectives, weights=weights)

    # ------------------------------------------------------------------
    def query(self, index: int) -> Query:
        """The ``index``-th query of the family (deterministic)."""
        return self._draw(index)[0]

    def preferences(self, index: int) -> Preferences:
        """Seeded preferences for request ``index``."""
        return self._draw(index)[1]

    def request(self, index: int) -> OptimizationRequest:
        """The ``index``-th request (stable fingerprint across processes)."""
        query, preferences = self._draw(index)
        return OptimizationRequest(
            query=query,
            preferences=preferences,
            algorithm=self.algorithm,
            alpha=self.alpha,
            config=self.config,
            tags=(f"family:{self.name}", f"draw{index}"),
        )

    def requests(self, count: int) -> list[OptimizationRequest]:
        """The first ``count`` requests in draw order."""
        if count < 0:
            raise OptimizerError(f"count must be >= 0, got {count}")
        return [self.request(i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Family({self.knob_fingerprint()}, seed={self.seed})"


# ----------------------------------------------------------------------
# TPC-H chain/star/cycle family
# ----------------------------------------------------------------------
def _tpch_steps(shape: str, extra_joins: int):
    if shape == "chain":
        limit = len(_TPCH_CHAIN_STEPS)
        if not 1 <= extra_joins <= limit:
            raise OptimizerError(
                f"tpch-chain chain shape supports 1..{limit} extra joins, "
                f"got {extra_joins}"
            )
        return _TPCH_CHAIN_STEPS[:extra_joins], None
    if shape == "star":
        limit = len(_TPCH_STAR_STEPS)
        if not 1 <= extra_joins <= limit:
            raise OptimizerError(
                f"tpch-chain star shape supports 1..{limit} extra joins, "
                f"got {extra_joins}"
            )
        return _TPCH_STAR_STEPS[:extra_joins], None
    if shape == "cycle":
        if extra_joins != len(_TPCH_CYCLE_STEPS):
            raise OptimizerError(
                f"tpch-chain cycle shape is a fixed 5-table circuit "
                f"(extra_joins={len(_TPCH_CYCLE_STEPS)}), got {extra_joins}"
            )
        return _TPCH_CYCLE_STEPS, _TPCH_CYCLE_CLOSER
    raise OptimizerError(
        f"unknown tpch-chain shape {shape!r} (chain, star or cycle)"
    )


def tpch_chain_family(
    schema: Schema | None = None,
    extra_joins: int = 3,
    shape: str = "chain",
    selectivity: float = 0.3,
    seed: int = 0,
    scale_factor: float = TPCH_EXECUTION_SCALE,
    algorithm: str = "rta",
    alpha: float = DEFAULT_ALPHA,
    config: OptimizerConfig | None = None,
) -> Family:
    """TPC-H family: ``lineitem`` plus ``extra_joins`` joined tables.

    ``selectivity`` sets the anchor filter on ``lineitem.l_quantity``;
    secondary filters on low-ndv columns of the joined tables draw their
    selectivities per request from the seeded stream. ``schema``
    overrides the default execution-scale TPC-H catalog.
    """
    if schema is None:
        schema = tpch_schema(scale_factor)
    if not 0.0 < selectivity <= 1.0:
        raise OptimizerError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    steps, closer = _tpch_steps(shape, extra_joins)

    def build(index: int, rng: random.Random) -> Query:
        refs = [TableRef("lineitem", "lineitem")]
        joins = []
        filters = [
            FilterPredicate("lineitem", "l_quantity", selectivity,
                            "quantity filter"),
        ]
        for table, join in steps:
            refs.append(TableRef(table, table))
            joins.append(join)
            column = _TPCH_EXTRA_FILTERS.get(table)
            if column is not None:
                filters.append(
                    FilterPredicate(
                        table, column,
                        round(rng.uniform(0.2, 0.9), 4),
                        f"{column} filter",
                    )
                )
        if closer is not None:
            joins.append(closer)
        return Query(
            name=f"tpch-{shape}-j{extra_joins}-d{index}",
            table_refs=tuple(refs),
            filters=tuple(filters),
            joins=tuple(joins),
        )

    return Family(
        name="tpch-chain",
        schema=schema,
        query_builder=build,
        seed=seed,
        algorithm=algorithm,
        alpha=alpha,
        config=config,
        knobs={
            "extra_joins": extra_joins,
            "shape": shape,
            "selectivity": selectivity,
        },
    )


# ----------------------------------------------------------------------
# JOB-style chain family
# ----------------------------------------------------------------------
def job_chain_family(
    schema: Schema | None = None,
    joins: int = 4,
    selectivity: float = 0.3,
    seed: int = 0,
    row_scale: float = 1.0,
    algorithm: str = "rta",
    alpha: float = DEFAULT_ALPHA,
    config: OptimizerConfig | None = None,
) -> Family:
    """JOB-style family: ``movie_companies`` chains of 1..8 joins.

    Join ``k`` adds table ``k`` of the fixed JOB traversal
    (company_name, title, company_type, kind_type, cast_info, name,
    role_type, movie_info). ``selectivity`` sets the anchor filter on
    ``mc.company_type_id``; secondary filters draw per request.
    """
    if schema is None:
        schema = imdb_schema(row_scale)
    if not 1 <= joins <= MAX_JOB_JOINS:
        raise OptimizerError(
            f"job-chain supports 1..{MAX_JOB_JOINS} joins, got {joins}"
        )
    if not 0.0 < selectivity <= 1.0:
        raise OptimizerError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    steps = _JOB_STEPS[:joins]

    def build(index: int, rng: random.Random) -> Query:
        refs = [TableRef("mc", "movie_companies")]
        join_predicates = []
        filters = [
            FilterPredicate("mc", "company_type_id", selectivity,
                            "company type filter"),
        ]
        for alias, table, join in steps:
            refs.append(TableRef(alias, table))
            join_predicates.append(join)
            column = _JOB_EXTRA_FILTERS.get(alias)
            if column is not None:
                filters.append(
                    FilterPredicate(
                        alias, column,
                        round(rng.uniform(0.2, 0.9), 4),
                        f"{column} filter",
                    )
                )
        return Query(
            name=f"job-chain-j{joins}-d{index}",
            table_refs=tuple(refs),
            filters=tuple(filters),
            joins=tuple(join_predicates),
        )

    return Family(
        name="job-chain",
        schema=schema,
        query_builder=build,
        seed=seed,
        algorithm=algorithm,
        alpha=alpha,
        config=config,
        knobs={"joins": joins, "selectivity": selectivity},
    )


#: Registry of family constructors by CLI name.
FAMILIES: dict[str, Callable[..., Family]] = {
    "tpch-chain": tpch_chain_family,
    "job-chain": job_chain_family,
}


def make_family(name: str, **knobs) -> Family:
    """Build a family by registry name (``tpch-chain`` / ``job-chain``)."""
    try:
        constructor = FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise OptimizerError(
            f"unknown workload family {name!r} (known: {known})"
        ) from None
    return constructor(**knobs)
