"""Test-case generation replicating the paper's experimental setup.

Section 8: "Every test case is characterized by a set of considered
objectives (selected randomly out of the nine implemented objectives),
by weights on the selected objectives (chosen randomly from [0, 1] with
uniform distribution), and (only for bounded MOQO) by bounds on a subset
of the selected objectives. Bounds for objectives with a-priori bounded
value domain (e.g., tuple loss with domain [0, 1]) are chosen with
uniform distribution from that domain. Bounds for objectives with
non-bounded value domains (e.g., time) are chosen by multiplying the
minimal possible value for the given objective and query by a factor
chosen from [1, 2] with uniform distribution."

The per-objective minimal values come from single-objective Selinger
runs (combined over query blocks for multi-block queries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.optimizer import combine_block_costs
from repro.core.preferences import INFINITY, Preferences
from repro.core.request import DEFAULT_ALPHA, OptimizationRequest
from repro.core.selinger import selinger
from repro.cost.model import CostModel
from repro.cost.objectives import ALL_OBJECTIVES, Objective
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import OptimizerError
from repro.query.query import MultiBlockQuery
from repro.query.tpch_queries import tpch_query


@dataclass(frozen=True)
class TestCase:
    """One randomized MOQO problem instance over a TPC-H query."""

    query_number: int
    query: MultiBlockQuery
    preferences: Preferences
    case_index: int

    @property
    def is_bounded(self) -> bool:
        """Whether the instance carries finite bounds."""
        return self.preferences.has_bounds

    def to_request(
        self,
        algorithm: str = "rta",
        alpha: float = DEFAULT_ALPHA,
        *,
        strict: bool = False,
        config: OptimizerConfig | None = None,
        timeout_seconds: float | None = None,
        tags: tuple[str, ...] | None = None,
    ) -> OptimizationRequest:
        """Package this test case for :class:`~repro.core.service.OptimizerService`.

        The default tags identify the case within a batch
        (``q<query>``/``case<index>``) so metrics hooks can attribute
        per-request records back to the workload.
        """
        if tags is None:
            tags = (f"q{self.query_number}", f"case{self.case_index}")
        return OptimizationRequest(
            query=self.query,
            preferences=self.preferences,
            algorithm=algorithm,
            alpha=alpha,
            strict=strict,
            config=config,
            timeout_seconds=timeout_seconds,
            tags=tags,
        )


class WorkloadGenerator:
    """Deterministic (seeded) generator of the paper's test cases."""

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        seed: int = 0,
    ) -> None:
        self.schema = schema
        self.config = config
        self.seed = seed
        self.cost_model = CostModel(schema, params)
        self._rng = random.Random(seed)
        #: cache of per-(query, objective) minimal costs.
        self._minimums: dict[tuple[int, Objective], float] = {}

    # ------------------------------------------------------------------
    def family(self, name: str, **knobs):
        """A parameterized query family sharing this generator's seed.

        Dispatches to :func:`repro.workloads.families.make_family`; the
        ``tpch-chain`` family defaults to this generator's schema (pass
        ``schema=...`` to override; ``job-chain`` builds its own IMDB
        schema). The family draws from its own per-index streams, so it
        does not perturb this generator's TPC-H case sequence.
        """
        from repro.workloads.families import make_family

        knobs.setdefault("seed", self.seed)
        if name == "tpch-chain":
            knobs.setdefault("schema", self.schema)
        return make_family(name, **knobs)

    def family_requests(self, name: str, count: int, **knobs):
        """The first ``count`` requests of family ``name`` (see
        :meth:`family`); ready for ``OptimizerService.optimize_many``."""
        return self.family(name, **knobs).requests(count)

    # ------------------------------------------------------------------
    def weighted_case(
        self, query_number: int, num_objectives: int, case_index: int = 0
    ) -> TestCase:
        """A weighted MOQO test case (Figure 9 setup)."""
        objectives = self._pick_objectives(num_objectives)
        weights = tuple(self._rng.uniform(0.0, 1.0) for _ in objectives)
        preferences = Preferences(objectives=objectives, weights=weights)
        return TestCase(
            query_number=query_number,
            query=tpch_query(query_number),
            preferences=preferences,
            case_index=case_index,
        )

    def bounded_case(
        self,
        query_number: int,
        num_bounds: int,
        num_objectives: int | None = None,
        case_index: int = 0,
    ) -> TestCase:
        """A bounded-weighted MOQO test case (Figure 10 setup).

        Figure 10 always optimizes all nine objectives and varies the
        number of bounds; ``num_objectives`` can override that for
        smaller studies.
        """
        if num_objectives is None:
            num_objectives = len(ALL_OBJECTIVES)
        if num_bounds > num_objectives:
            raise OptimizerError(
                f"cannot bound {num_bounds} of {num_objectives} objectives"
            )
        objectives = self._pick_objectives(num_objectives)
        weights = tuple(self._rng.uniform(0.0, 1.0) for _ in objectives)
        bounded = self._rng.sample(range(len(objectives)), num_bounds)
        bounds = [INFINITY] * len(objectives)
        for position in bounded:
            bounds[position] = self._draw_bound(
                query_number, objectives[position]
            )
        preferences = Preferences(
            objectives=objectives, weights=weights, bounds=tuple(bounds)
        )
        return TestCase(
            query_number=query_number,
            query=tpch_query(query_number),
            preferences=preferences,
            case_index=case_index,
        )

    def weighted_cases(
        self, query_number: int, num_objectives: int, count: int
    ) -> list[TestCase]:
        """``count`` weighted test cases (the paper uses 20)."""
        return [
            self.weighted_case(query_number, num_objectives, case_index=i)
            for i in range(count)
        ]

    def bounded_cases(
        self, query_number: int, num_bounds: int, count: int,
        num_objectives: int | None = None,
    ) -> list[TestCase]:
        """``count`` bounded test cases (the paper uses 20)."""
        return [
            self.bounded_case(
                query_number, num_bounds, num_objectives, case_index=i
            )
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    def _pick_objectives(self, count: int) -> tuple[Objective, ...]:
        if not 1 <= count <= len(ALL_OBJECTIVES):
            raise OptimizerError(
                f"number of objectives must be in 1..{len(ALL_OBJECTIVES)}"
            )
        chosen = self._rng.sample(ALL_OBJECTIVES, count)
        return tuple(sorted(chosen, key=lambda o: o.index))

    def _draw_bound(self, query_number: int, objective: Objective) -> float:
        domain = objective.bounded_domain
        if domain is not None:
            return self._rng.uniform(*domain)
        minimum = self.minimum_cost(query_number, objective)
        return minimum * self._rng.uniform(1.0, 2.0)

    def minimum_cost(self, query_number: int, objective: Objective) -> float:
        """Minimal combined cost of ``objective`` for one TPC-H query."""
        key = (query_number, objective)
        cached = self._minimums.get(key)
        if cached is not None:
            return cached
        query = tpch_query(query_number)
        block_costs = []
        for block in query.blocks:
            result = selinger(block, self.cost_model, objective, self.config)
            full = [0.0] * len(ALL_OBJECTIVES)
            # Selinger prunes over (objective,) or (startup, total);
            # rebuild a full vector with just this objective filled in.
            full[objective.index] = result.plan_cost[0]
            block_costs.append(tuple(full))
        combined = combine_block_costs(block_costs, ALL_OBJECTIVES)
        value = combined[objective.index]
        self._minimums[key] = value
        return value
