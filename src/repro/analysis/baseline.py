"""Committed-baseline support: grandfather known findings, gate new ones.

A baseline file records the findings that existed when the gate was
introduced so CI can fail only on *new* violations. Entries are keyed
on ``(rule, path, message)`` — deliberately line-insensitive so code
motion neither resurrects grandfathered findings nor orphans entries.

For this repo the committed ``lint-baseline.json`` is empty by policy:
every real finding was either fixed or suppressed inline with a
reason. The mechanism exists for downstream forks adopting the gate on
a dirty tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import AnalysisReport, AnalyzerError, Violation

#: Schema version stamped into baseline files.
BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file into a set of violation keys."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise AnalyzerError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise AnalyzerError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or "entries" not in payload:
        raise AnalyzerError(
            f"baseline {path} has no 'entries' list"
        )
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise AnalyzerError(f"baseline {path} 'entries' is not a list")
    keys: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise AnalyzerError(f"baseline {path} has a non-object entry")
        try:
            keys.add(f"{entry['rule']}|{entry['path']}|{entry['message']}")
        except KeyError as error:
            raise AnalyzerError(
                f"baseline {path} entry missing key {error}"
            ) from error
    return keys


def write_baseline(path: str | Path, violations: list[Violation]) -> None:
    """Serialize current findings as the new baseline."""
    entries = [
        {"rule": v.rule, "path": v.path, "message": v.message}
        for v in sorted(violations, key=lambda v: v.baseline_key())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(report: AnalysisReport, keys: set[str]) -> AnalysisReport:
    """Drop baselined findings from a report (counts them as baselined)."""
    kept: list[Violation] = []
    for violation in report.violations:
        if violation.baseline_key() in keys:
            report.baselined += 1
        else:
            kept.append(violation)
    report.violations = kept
    return report
