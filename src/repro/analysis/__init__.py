"""Static analysis: executable invariants for the reproduction's contracts.

The repo's correctness rests on contracts no type checker knows about:
bitwise-deterministic frontiers, fingerprint-complete cache keys,
lock-disciplined metrics, spawn-safe picklability, non-blocking event
loops, and a plan cache that never stores degraded results. Each was
originally tribal knowledge enforced by review; each has had (or nearly
had) a real bug. This package turns them into AST-checked rules:

========  ==============================================================
REP001    determinism — unseeded RNG, wall-clock reads, unordered set
          iteration in result-affecting modules
REP002    lock discipline — ``# guarded-by: <lock>`` attributes touched
          outside a ``with self.<lock>`` block
REP003    spawn safety — lambdas/closures submitted to process pools
REP004    async hygiene — blocking calls inside ``async def`` bodies
REP005    fingerprint completeness — dataclass fields invisible to
          ``fingerprint()`` and absent from ``_FINGERPRINT_EXCLUDED``
REP006    cache purity — plan-cache stores unguarded by
          ``timed_out``/``deadline_hit`` checks
========  ==============================================================

Run it as ``repro lint [paths...]`` (exit 0 clean, 1 violations,
2 analyzer error). Suppress a finding with a mandatory reason::

    deadline = time.perf_counter() + 5  # lint-allow: REP001 budget clock

or for a whole file with ``# lint-allow-file: REP00X <reason>``.
A suppression without a reason is itself a violation (LINT000).
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    AnalyzerError,
    FileContext,
    Rule,
    Violation,
    all_rules,
    register_rule,
)
from repro.analysis.report import render_json, render_text

# Importing the rules package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (registration)

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "AnalyzerError",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "register_rule",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_text",
]
