"""Suppression comments: per-line and per-file, with mandatory reasons.

Two forms are recognized, both requiring a non-empty reason string so
every silenced finding documents *why* it is safe:

* ``# lint-allow: REP001 <reason>`` — silences the named rule(s) for
  findings reported on that physical line (the first line of the
  flagged statement). Multiple ids separate with commas:
  ``# lint-allow: REP001,REP004 <reason>``.
* ``# lint-allow-file: REP002 <reason>`` — silences the rule for the
  whole file; conventionally placed near the top.

A suppression whose reason is missing (or whose rule list is
malformed) does not silence anything — it is reported as a ``LINT000``
violation instead, so a hollow suppression can never sneak a real
finding past CI.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Rule-id shape accepted in suppression comments (REP001, LINT000...).
_RULE_ID = r"[A-Z]{3,8}\d{3}"

_LINE_RE = re.compile(
    rf"#\s*lint-allow:\s*(?P<rules>{_RULE_ID}(?:\s*,\s*{_RULE_ID})*)"
    r"(?P<reason>.*)$"
)
_FILE_RE = re.compile(
    rf"#\s*lint-allow-file:\s*(?P<rules>{_RULE_ID}(?:\s*,\s*{_RULE_ID})*)"
    r"(?P<reason>.*)$"
)
#: A suppression-looking comment that matched neither form exactly
#: (e.g. a typo'd rule id) — flagged rather than silently ignored.
_NEARLY_RE = re.compile(r"#\s*lint-allow(-file)?\b")


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    #: line -> {rule_id: reason}
    by_line: dict[int, dict[str, str]] = field(default_factory=dict)
    #: rule_id -> reason (file-wide)
    by_file: dict[str, str] = field(default_factory=dict)
    #: (line, message) pairs for malformed/reason-less suppressions.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def silences(self, rule_id: str, line: int) -> bool:
        """Whether a well-formed suppression covers this finding."""
        if rule_id in self.by_file:
            return True
        return rule_id in self.by_line.get(line, {})


def collect_comments(source: str) -> dict[int, str]:
    """Map line number -> comment text (``#`` included) for one file.

    Tokenizing (rather than string-splitting) means ``#`` inside string
    literals is never mistaken for a comment. Tokenization errors in
    otherwise-parseable files are impossible; callers parse first.
    """
    comments: dict[int, str] = {}
    reader = io.StringIO(source).readline
    for token in tokenize.generate_tokens(reader):
        if token.type == tokenize.COMMENT:
            comments[token.start[0]] = token.string
    return comments


def parse_suppressions(comments: dict[int, str]) -> Suppressions:
    """Extract line/file suppressions (and malformed ones) from comments."""
    parsed = Suppressions()
    for line, comment in comments.items():
        file_match = _FILE_RE.search(comment)
        line_match = None if file_match else _LINE_RE.search(comment)
        match = file_match or line_match
        if match is None:
            if _NEARLY_RE.search(comment):
                parsed.malformed.append(
                    (line, f"unparseable suppression comment {comment!r}")
                )
            continue
        reason = match.group("reason").strip().lstrip("-").strip()
        rules = [r.strip() for r in match.group("rules").split(",")]
        if not reason:
            parsed.malformed.append(
                (
                    line,
                    "suppression for "
                    + ",".join(rules)
                    + " is missing its mandatory reason string",
                )
            )
            continue
        for rule_id in rules:
            if file_match is not None:
                parsed.by_file[rule_id] = reason
            else:
                parsed.by_line.setdefault(line, {})[rule_id] = reason
    return parsed
