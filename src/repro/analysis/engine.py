"""Analyzer engine: file contexts, the rule registry, the driver.

The engine is deliberately stdlib-only (``ast`` + ``tokenize``): rules
receive a :class:`FileContext` with the parsed tree (parent links
attached), the comment map, an import-alias resolver for qualified
names, and the file's suppression state. The :class:`Analyzer` walks a
set of paths, applies every registered rule, filters suppressed
findings, and folds malformed suppressions in as ``LINT000``
violations (which themselves cannot be suppressed).

Error model: anything that prevents analysis from *running* — missing
paths, unreadable or syntactically invalid files, a rule crashing —
raises :class:`AnalyzerError`. The CLI maps that to exit code 2,
distinct from exit code 1 (violations found), so a red CI job is
immediately diagnosable as "the tree is dirty" vs "the linter broke".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.suppressions import (
    Suppressions,
    collect_comments,
    parse_suppressions,
)

#: Rule id used for malformed/reason-less suppression comments.
SUPPRESSION_RULE_ID = "LINT000"


class AnalyzerError(Exception):
    """Analysis could not run (distinct from "violations were found")."""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def baseline_key(self) -> str:
        """Identity used by the committed baseline.

        Deliberately line-insensitive (rule + file + message): unrelated
        edits that shift line numbers must not resurrect baselined
        findings or orphan baseline entries.
        """
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: Path, display_path: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        #: Path as reported in findings (posix separators).
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.comments: dict[int, str] = collect_comments(source)
        self.suppressions: Suppressions = parse_suppressions(self.comments)
        self._aliases = self._collect_import_aliases(tree)
        self._attach_parents(tree)

    # ------------------------------------------------------------------
    @staticmethod
    def _attach_parents(tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._repro_parent = node  # type: ignore[attr-defined]

    @staticmethod
    def parent(node: ast.AST) -> ast.AST | None:
        return getattr(node, "_repro_parent", None)

    @classmethod
    def ancestors(cls, node: ast.AST) -> Iterator[ast.AST]:
        current = cls.parent(node)
        while current is not None:
            yield current
            current = cls.parent(current)

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_import_aliases(tree: ast.Module) -> dict[str, str]:
        """Map local names to the dotted names they import.

        ``import time as _time`` -> ``{"_time": "time"}``;
        ``from concurrent.futures import ProcessPoolExecutor as PPE`` ->
        ``{"PPE": "concurrent.futures.ProcessPoolExecutor"}``.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative imports stay unresolved
                    continue
                for item in node.names:
                    local = item.asname or item.name
                    aliases[local] = f"{node.module}.{item.name}"
        return aliases

    def dotted_name(self, node: ast.AST) -> str | None:
        """Literal dotted form of a Name/Attribute chain, if it is one.

        ``self.cache.put`` -> ``"self.cache.put"``; anything rooted in a
        call or subscript returns ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def qualified_name(self, node: ast.AST) -> str | None:
        """Import-resolved dotted name of a Name/Attribute chain.

        With ``import time as _time``, ``_time.perf_counter`` resolves
        to ``"time.perf_counter"``; unresolvable roots fall back to the
        literal dotted name.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        resolved = self._aliases.get(root, root)
        return f"{resolved}.{rest}" if rest else resolved


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run."""

    files_checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


class Rule:
    """Base class for invariant rules.

    Subclasses set ``rule_id``/``name``/``description`` and implement
    :meth:`check`. ``path_markers`` (optional) restricts the rule to
    files whose display path contains any of the markers — rules
    encoding module-specific contracts (determinism, async hygiene)
    scope themselves this way while staying testable on fixture trees
    that mimic the layout.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    #: Substrings of the display path this rule applies to; empty means
    #: every file.
    path_markers: tuple[str, ...] = ()

    def __init__(self, path_markers: tuple[str, ...] | None = None) -> None:
        if path_markers is not None:
            self.path_markers = tuple(path_markers)

    def applies_to(self, ctx: FileContext) -> bool:
        if not self.path_markers:
            return True
        return any(marker in ctx.display_path for marker in self.path_markers)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            rule=self.rule_id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, id-ordered."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def registered_rule_classes() -> dict[str, type[Rule]]:
    return dict(_REGISTRY)


class Analyzer:
    """Run a set of rules over a set of paths."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = (
            list(rules) if rules is not None else all_rules()
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise AnalyzerError(f"no such file or directory: {path}")
            if path.is_file():
                candidates = [path]
            else:
                candidates = sorted(path.rglob("*.py"))
            for candidate in candidates:
                if "__pycache__" in candidate.parts:
                    continue
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                yield candidate

    def _load(self, path: Path) -> FileContext:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise AnalyzerError(f"cannot read {path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise AnalyzerError(
                f"cannot parse {path}: {error.msg} (line {error.lineno})"
            ) from error
        return FileContext(path, path.as_posix(), source, tree)

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str | Path]) -> AnalysisReport:
        """Analyze every ``.py`` file under ``paths``.

        Raises :class:`AnalyzerError` for anything that prevents the
        analysis itself (missing path, unparseable file, crashing rule);
        returns a report otherwise — finding violations is a *normal*
        outcome, not an error.
        """
        report = AnalysisReport()
        for path in self._iter_python_files(paths):
            ctx = self._load(path)
            report.files_checked += 1
            for line, message in ctx.suppressions.malformed:
                report.violations.append(
                    Violation(
                        rule=SUPPRESSION_RULE_ID,
                        path=ctx.display_path,
                        line=line,
                        col=0,
                        message=message,
                    )
                )
            for rule in self.rules:
                if not rule.applies_to(ctx):
                    continue
                try:
                    findings = list(rule.check(ctx))
                except AnalyzerError:
                    raise
                except Exception as error:
                    raise AnalyzerError(
                        f"rule {rule.rule_id} crashed on {path}: "
                        f"{type(error).__name__}: {error}"
                    ) from error
                for finding in findings:
                    if ctx.suppressions.silences(finding.rule, finding.line):
                        report.suppressed += 1
                    else:
                        report.violations.append(finding)
        report.violations.sort(
            key=lambda v: (v.path, v.line, v.col, v.rule)
        )
        return report
