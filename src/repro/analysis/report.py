"""Reporters: human-readable text and machine-parseable JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport, Rule

#: Bumped when the JSON shape changes incompatibly.
REPORT_VERSION = 1


def render_text(report: AnalysisReport) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [violation.render() for violation in report.violations]
    noun = "violation" if len(report.violations) == 1 else "violations"
    summary = (
        f"{len(report.violations)} {noun} "
        f"({report.suppressed} suppressed, {report.baselined} baselined) "
        f"in {report.files_checked} files"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, rules: list[Rule]) -> str:
    """Full report as a JSON document (stable schema, see tests)."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "files_checked": report.files_checked,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in rules
        ],
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in report.violations
        ],
        "counts": {
            "violations": len(report.violations),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
        },
    }
    return json.dumps(payload, indent=2)
