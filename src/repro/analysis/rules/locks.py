"""REP002: lock discipline — guarded attributes stay under their lock.

PR 7 shipped a real torn-snapshot race: ``ServingMetrics`` updated a
counter under ``self._lock`` but appended the latency sample outside
it, so a concurrent ``snapshot()`` could observe the count without the
sample. This rule makes the convention checkable:

* Declare the invariant where the attribute is born::

      self.requests = 0  # guarded-by: _lock

  or on a class-level (dataclass) field::

      requests: int = 0  # guarded-by: _lock

* Every other ``self.<attr>`` access inside the class must then sit
  lexically inside ``with self.<lock>:``.

Exemptions: ``__init__``/``__post_init__`` (construction precedes
sharing); methods whose name ends in ``_locked`` (caller holds the
lock, matching the existing ``_percentile_locked`` idiom); methods
carrying ``# holds-lock: <lock>`` on their ``def`` line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(?P<lock>[A-Za-z_]\w*)")

_EXEMPT_METHODS = {"__init__", "__post_init__"}


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "REP002"
    name = "lock-discipline"
    description = (
        "attributes annotated '# guarded-by: <lock>' must only be "
        "accessed inside 'with self.<lock>'"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    # ------------------------------------------------------------------
    def _check_class(self, ctx: FileContext,
                     classdef: ast.ClassDef) -> Iterable[Violation]:
        guarded, declaration_lines = self._collect_guarded(ctx, classdef)
        if not guarded:
            return
        for node in ast.walk(classdef):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded):
                continue
            if node.lineno in declaration_lines:
                continue
            lock = guarded[node.attr]
            if self._is_exempt(ctx, node, lock):
                continue
            yield self.violation(
                ctx, node,
                f"'{node.attr}' is guarded-by '{lock}' but accessed "
                f"outside 'with self.{lock}'",
            )

    def _collect_guarded(
        self, ctx: FileContext, classdef: ast.ClassDef
    ) -> tuple[dict[str, str], set[int]]:
        """Attribute -> lock name, plus the declaration lines to skip."""
        guarded: dict[str, str] = {}
        declaration_lines: set[int] = set()
        # Class-level (dataclass) fields annotated on their own line.
        for stmt in classdef.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                match = _GUARDED_RE.search(ctx.comments.get(stmt.lineno, ""))
                if match:
                    guarded[stmt.target.id] = match.group("lock")
                    declaration_lines.add(stmt.lineno)
        # ``self.x = ...`` declarations (conventionally in __init__).
        for node in ast.walk(classdef):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
            else:
                continue
            match = _GUARDED_RE.search(ctx.comments.get(node.lineno, ""))
            if not match:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    guarded[target.attr] = match.group("lock")
                    declaration_lines.add(node.lineno)
        return guarded, declaration_lines

    def _is_exempt(self, ctx: FileContext, node: ast.Attribute,
                   lock: str) -> bool:
        enclosing = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)) \
                    and self._with_holds(ancestor, lock):
                return True
            if enclosing is None and isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = ancestor
        if enclosing is None:
            return True  # class-body access; construction-time
        if enclosing.name in _EXEMPT_METHODS:
            return True
        if enclosing.name.endswith("_locked"):
            return True
        holds = _HOLDS_RE.search(ctx.comments.get(enclosing.lineno, ""))
        if holds and holds.group("lock") == lock:
            return True
        return False

    @staticmethod
    def _with_holds(node: ast.With | ast.AsyncWith, lock: str) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and expr.attr == lock \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self":
                return True
        return False
