"""REP005: fingerprint completeness — no field invisible to the cache key.

The plan cache is keyed on ``fingerprint()``. A dataclass field that
changes optimizer behaviour but is not folded into the fingerprint
makes two semantically different requests collide on one cache entry —
the worst kind of wrong-answer bug, because every individual layer
looks correct. This rule closes the loop structurally: for any class
defining ``fingerprint()``, every public field must either be
(transitively) read by ``fingerprint()`` or listed in an explicit
``_FINGERPRINT_EXCLUDED`` allowlist — so excluding a field from the
key is always a visible, reviewable decision.

The reachability walk follows ``self.<method>()`` calls, so helpers
like ``cache_payload()`` or ``canonical_items()`` count as consumption.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_ALLOWLIST_NAME = "_FINGERPRINT_EXCLUDED"


@register_rule
class FingerprintCompletenessRule(Rule):
    rule_id = "REP005"
    name = "fingerprint-completeness"
    description = (
        "every field of a fingerprint()-bearing class must feed "
        "fingerprint() or appear in _FINGERPRINT_EXCLUDED"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     classdef: ast.ClassDef) -> Iterable[Violation]:
        methods = {
            stmt.name: stmt
            for stmt in classdef.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "fingerprint" not in methods:
            return
        fields: dict[str, ast.AnnAssign] = {}
        excluded: set[str] | None = None
        for stmt in classdef.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if name.startswith("_"):
                    continue
                if "ClassVar" in ast.dump(stmt.annotation):
                    continue
                fields[name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == _ALLOWLIST_NAME:
                        excluded = {
                            sub.value
                            for sub in ast.walk(stmt.value)
                            if isinstance(sub, ast.Constant)
                            and isinstance(sub.value, str)
                        }
        if not fields:
            return
        consumed = self._reachable_attrs(methods)
        for name in sorted(set(fields) - consumed - (excluded or set())):
            hint = (
                f"add it to {_ALLOWLIST_NAME}"
                if excluded is not None
                else f"declare {_ALLOWLIST_NAME} = frozenset({{...}}) "
                     "naming it"
            )
            yield self.violation(
                ctx, fields[name],
                f"field '{name}' of '{classdef.name}' is invisible to "
                f"fingerprint(): fold it into the fingerprint or {hint} "
                "to record the exclusion explicitly",
            )

    @staticmethod
    def _reachable_attrs(methods: dict[str, ast.AST]) -> set[str]:
        """All ``self.<attr>`` names transitively read from fingerprint()."""
        consumed: set[str] = set()
        queue = ["fingerprint"]
        visited: set[str] = set()
        while queue:
            name = queue.pop()
            if name in visited:
                continue
            visited.add(name)
            method = methods.get(name)
            if method is None:
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "self":
                    consumed.add(node.attr)
                    if node.attr in methods:
                        queue.append(node.attr)
        return consumed
