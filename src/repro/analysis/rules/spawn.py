"""REP003: spawn safety — only picklable callables cross process pools.

The worker pool uses the ``spawn`` start method; everything submitted
must survive pickling in the parent and unpickling in a fresh
interpreter. Lambdas and nested (closure) functions do not — they fail
at submit time on some platforms and, worse, only at *dispatch* time
on others. PR 9 hit this with ``filter_passes`` and had to hoist it to
module level; this rule catches the pattern at author time.

Flagged: a lambda (anywhere in the argument expression, including
inside ``functools.partial``) or a nested ``def`` passed to a process
pool submission site. Submission sites are ``.submit``/``.map``/
``.apply_async`` on receivers whose name says process pool
(``executor``, ``worker_pool``, ``process_pool``), plus
``WorkerPool``/``ProcessPoolExecutor`` constructor arguments such as
``initializer=``. Thread-pool receivers (named ``pool``/``tpool`` in
this repo) are deliberately out of scope — closures are fine across
threads.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_SUBMIT_METHODS = {"submit", "map", "apply_async"}
_RECEIVER_RE = re.compile(r"(executor|worker_pool|process_pool)$")
_POOL_CONSTRUCTORS = {"WorkerPool", "ProcessPoolExecutor"}


@register_rule
class SpawnSafetyRule(Rule):
    rule_id = "REP003"
    name = "spawn-safety"
    description = (
        "no lambdas/closures/nested callables submitted to process pools"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        nested_defs = self._nested_function_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SUBMIT_METHODS \
                    and self._is_pool_receiver(ctx, func.value):
                if node.args:
                    yield from self._check_callable(
                        ctx, node.args[0], nested_defs,
                        f"'{func.attr}' on a process pool",
                    )
            else:
                qualified = ctx.qualified_name(func) or ""
                if qualified.rsplit(".", 1)[-1] in _POOL_CONSTRUCTORS:
                    for arg in list(node.args) + [
                            kw.value for kw in node.keywords]:
                        yield from self._check_callable(
                            ctx, arg, nested_defs,
                            f"'{qualified.rsplit('.', 1)[-1]}(...)' "
                            "constructor argument",
                        )

    # ------------------------------------------------------------------
    @staticmethod
    def _nested_function_names(ctx: FileContext) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                       for a in ctx.ancestors(node)):
                    names.add(node.name)
        return names

    def _is_pool_receiver(self, ctx: FileContext,
                          receiver: ast.AST) -> bool:
        dotted = ctx.dotted_name(receiver)
        if dotted is None:
            return False
        return bool(_RECEIVER_RE.search(dotted.rsplit(".", 1)[-1]))

    def _check_callable(self, ctx: FileContext, expr: ast.AST,
                        nested_defs: set[str],
                        where: str) -> Iterable[Violation]:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                yield self.violation(
                    ctx, sub,
                    f"lambda passed to {where} cannot be pickled under "
                    "spawn; hoist to a module-level function",
                )
                return
        if isinstance(expr, ast.Name) and expr.id in nested_defs:
            yield self.violation(
                ctx, expr,
                f"nested function '{expr.id}' passed to {where} is a "
                "closure and cannot be pickled under spawn; hoist it to "
                "module level",
            )
