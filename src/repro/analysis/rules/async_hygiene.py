"""REP004: async hygiene — nothing blocking inside ``async def``.

The serving layer runs a single asyncio event loop; one blocking call
inside a coroutine stalls every in-flight connection (and defeats the
deadline-shedding logic, which assumes the loop keeps turning).
Blocking work belongs behind ``loop.run_in_executor(...)`` — which is
how the server already routes ``service.submit``.

Flagged, when called directly in an ``async def`` body under
``serving/``: ``time.sleep`` (use ``asyncio.sleep``), builtin
``open``/sync ``socket.*`` constructors, and ``.submit`` on a service
object (the long DP optimization itself).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_BLOCKING_CALLS = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "open": "use run_in_executor for file I/O",
    "socket.socket": "use asyncio streams or run_in_executor",
    "socket.create_connection": "use asyncio.open_connection",
}


@register_rule
class AsyncHygieneRule(Rule):
    rule_id = "REP004"
    name = "async-hygiene"
    description = (
        "no blocking calls (time.sleep, sync I/O, service.submit) "
        "directly inside async def bodies"
    )
    path_markers = ("/serving/",)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(self, ctx: FileContext,
                         coro: ast.AsyncFunctionDef) -> Iterable[Violation]:
        for node in ast.walk(coro):
            if not isinstance(node, ast.Call):
                continue
            if self._nearest_function(ctx, node) is not coro:
                continue  # belongs to a nested def, not this coroutine
            qualified = ctx.qualified_name(node.func)
            if qualified in _BLOCKING_CALLS:
                yield self.violation(
                    ctx, node,
                    f"blocking call '{qualified}()' inside async def "
                    f"'{coro.name}' stalls the event loop; "
                    f"{_BLOCKING_CALLS[qualified]}",
                )
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit":
                receiver = ctx.dotted_name(func.value) or ""
                if "service" in receiver.lower():
                    yield self.violation(
                        ctx, node,
                        f"synchronous '{receiver}.submit(...)' inside "
                        f"async def '{coro.name}' blocks the event loop "
                        "for the whole optimization; wrap it in "
                        "loop.run_in_executor",
                    )

    @staticmethod
    def _nearest_function(ctx: FileContext, node: ast.AST) -> ast.AST | None:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None
