"""REP006: cache purity — degraded results never enter the plan cache.

PR 2 and PR 8 established the contract: results that timed out, hit
their deadline, were rerouted, or came back degraded are *partial*
frontiers and must never be cached — a cached partial frontier poisons
every later request with the same fingerprint. Every ``cache.put``
call site must therefore sit inside an ``if`` whose condition tests
both ``timed_out`` and ``deadline_hit`` (the canonical shape is
``if not result.timed_out and not result.deadline_hit: cache.put(...)``).

The check is lexical: the names ``timed_out`` and ``deadline_hit``
must both appear in the tests of the ``if`` statements enclosing the
store. Guarding via early-return does not satisfy the rule by design —
keeping the guard adjacent to the store is the reviewable pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_REQUIRED_GUARDS = {"timed_out", "deadline_hit"}


@register_rule
class CachePurityRule(Rule):
    rule_id = "REP006"
    name = "cache-purity"
    description = (
        "plan-cache stores must be guarded by timed_out/deadline_hit "
        "checks"
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "put"):
                continue
            receiver = ctx.dotted_name(func.value) or ""
            if "cache" not in receiver.lower():
                continue
            guards = self._enclosing_if_identifiers(ctx, node)
            missing = sorted(_REQUIRED_GUARDS - guards)
            if missing:
                yield self.violation(
                    ctx, node,
                    f"'{receiver}.put(...)' is not guarded by "
                    f"{' and '.join(missing)} checks; degraded/partial "
                    "results must never enter the plan cache",
                )

    @staticmethod
    def _enclosing_if_identifiers(ctx: FileContext,
                                  node: ast.AST) -> set[str]:
        """Every identifier appearing in enclosing ``if`` conditions."""
        identifiers: set[str] = set()
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # guards outside the function don't count
            if isinstance(ancestor, ast.If):
                for sub in ast.walk(ancestor.test):
                    if isinstance(sub, ast.Name):
                        identifiers.add(sub.id)
                    elif isinstance(sub, ast.Attribute):
                        identifiers.add(sub.attr)
        return identifiers
