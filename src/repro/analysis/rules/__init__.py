"""Built-in rules. Importing this package registers all of them."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    async_hygiene,
    cache_purity,
    determinism,
    fingerprint,
    locks,
    spawn,
)

__all__ = [
    "async_hygiene",
    "cache_purity",
    "determinism",
    "fingerprint",
    "locks",
    "spawn",
]
