"""REP001: determinism — no ambient entropy in result-affecting code.

The DP enumerator, pruning, and cost model promise bitwise-identical
frontiers for identical inputs (the vectorized/scalar equivalence
tests depend on it), and ``fingerprint()`` promises stable cache keys.
Three entropy sources break that silently:

* wall-clock reads (``time.time``/``perf_counter``/``monotonic``) —
  legitimate for deadline checks and phase timers, which suppress with
  a reason; everything else is a latent nondeterminism bug;
* the module-level ``random.*`` functions (shared, unseeded global
  RNG) and zero-argument ``random.Random()``;
* direct iteration over a ``set``/``frozenset`` (hash-order dependent;
  wrap in ``sorted(...)`` instead).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Rule, Violation, register_rule

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_GLOBAL_RNG_CALLS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.expovariate",
    "random.betavariate",
    "random.seed",
}

_SET_CONSTRUCTORS = {"set", "frozenset"}


@register_rule
class DeterminismRule(Rule):
    rule_id = "REP001"
    name = "determinism"
    description = (
        "no unseeded RNG, wall-clock reads, or unordered set iteration "
        "in result-affecting modules"
    )
    path_markers = (
        "/core/dp.py",
        "/core/pruning.py",
        "/cost/",
        "/core/request.py",
        "/core/preferences.py",
        "/config.py",
        "/query/",
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(ctx, node.iter, node.iter)

    def _check_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterable[Violation]:
        qualified = ctx.qualified_name(node.func)
        if qualified is None:
            return
        if qualified in _CLOCK_CALLS:
            yield self.violation(
                ctx, node,
                f"wall-clock read '{qualified}()' in a result-affecting "
                "module; pass deadlines/timestamps in explicitly or "
                "suppress with a reason",
            )
        elif qualified in _GLOBAL_RNG_CALLS:
            yield self.violation(
                ctx, node,
                f"'{qualified}()' uses the shared unseeded global RNG; "
                "thread a seeded random.Random instance through instead",
            )
        elif qualified == "random.Random" and not node.args \
                and not node.keywords:
            yield self.violation(
                ctx, node,
                "'random.Random()' without a seed is nondeterministic; "
                "pass an explicit seed",
            )

    def _check_iteration(self, ctx: FileContext, report_node: ast.AST,
                         iterable: ast.AST) -> Iterable[Violation]:
        is_set = isinstance(iterable, ast.Set)
        if isinstance(iterable, ast.Call):
            qualified = ctx.qualified_name(iterable.func)
            is_set = qualified in _SET_CONSTRUCTORS
        if is_set:
            yield self.violation(
                ctx, report_node,
                "iteration over an unordered set feeds hash-order into "
                "results; iterate sorted(...) instead",
            )
