"""Process-pool backend: warm worker processes executing requests.

The GIL serializes the thread-pool backend — the paper's approximation
schemes are CPU-bound Python dynamic programs, so threads only overlap
their bookkeeping, never their real work. :class:`WorkerPool` runs
requests in separate processes instead: each worker is a fresh
interpreter (spawn start method — safe regardless of parent threads,
and identical behavior on every platform) initialized once with the
service's schema/config/params, after which it stays warm and reuses
its algorithm registry, cost model and plan cache across requests.

Results and per-request :class:`RequestMetrics` ship back pickled; the
owning :class:`~repro.core.service.OptimizerService` merges the records
into its :class:`ServiceMetrics`, so observability is identical across
backends.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.instrumentation import RequestMetrics
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.obs.trace import Span, TraceContext
from repro.parallel.sharding import ShardOutcome, ShardPlanner, ShardTask
from repro.parallel.worker import (
    WorkerSetup,
    execute_request,
    execute_request_group,
    execute_shard_task,
    initialize_worker,
    ping,
)

def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


def default_worker_count() -> int:
    """Default worker-process count: usable CPUs, capped at 8 (matching
    the thread backend's cap)."""
    return max(1, min(8, usable_cpu_count()))


class WorkerPool:
    """A warm pool of optimizer worker processes.

    The pool is cheap to keep around and expensive to start (each spawn
    imports the package and rebuilds the cost model), so services hold
    one pool for their lifetime rather than one per batch. ``warm_up``
    forces all workers to finish initializing — call it before timing
    anything against the pool.
    """

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        *,
        workers: int | None = None,
        cache_size: int = 256,
        scheduler=None,
        extra_initializer=None,
    ) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self._setup = WorkerSetup(
            schema=schema,
            config=config,
            params=params,
            cache_size=cache_size,
            scheduler=scheduler,
            extra_initializer=extra_initializer,
        )
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=initialize_worker,
            initargs=(self._setup,),
        )

    # ------------------------------------------------------------------
    def warm_up(self, timeout: float = 60.0) -> list[str]:
        """Block until *every* worker process is initialized.

        The probes rendezvous at a barrier sized to the pool, so a fast
        worker cannot answer its siblings' probes — all ``workers``
        names come back distinct, each from a fully initialized worker.
        A worker that fails to come up within ``timeout`` seconds
        surfaces as a ``BrokenBarrierError`` instead of a silent hang.
        """
        with multiprocessing.Manager() as manager:
            barrier = manager.Barrier(self.workers)
            futures = [
                self._executor.submit(ping, barrier, timeout)
                for _ in range(self.workers)
            ]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def execute_one(
        self,
        request: OptimizationRequest,
        deadline_epoch: float | None = None,
        *,
        trace_ctx: TraceContext | None = None,
    ) -> tuple[OptimizationResult, RequestMetrics, list[Span]]:
        """Execute one request on a worker, blocking until it finishes.

        The single-request analogue of :meth:`execute_many` —
        :meth:`OptimizerService.submit` routes cache misses here under
        the process backend. ``trace_ctx`` parents the worker's spans
        under the caller's span; they ship back in the third slot.
        """
        return self._executor.submit(
            execute_request, request, deadline_epoch, trace_ctx
        ).result()

    def execute_many(
        self,
        requests: Sequence[OptimizationRequest],
        deadline_epochs: Sequence[float | None] | None = None,
        *,
        shard_by_fingerprint: bool = False,
        default_config: OptimizerConfig | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> list[tuple[OptimizationResult, RequestMetrics, list[Span]]]:
        """Execute a batch on the pool; results keep the input order.

        ``shard_by_fingerprint=True`` routes the batch through
        :meth:`ShardPlanner.partition_requests`: one task per shard,
        each executing its requests sequentially on one worker, so
        fingerprint-equal requests hit that worker's plan cache.
        The default submits one task per request — best load balance
        when the batch has no repeats. ``trace_ctx`` (when the caller
        is tracing) parents every request's worker-side spans under the
        caller's span; they ship back per request in the third slot.
        """
        requests = list(requests)
        if deadline_epochs is None:
            deadline_epochs = [None] * len(requests)
        deadline_epochs = list(deadline_epochs)
        if len(deadline_epochs) != len(requests):
            raise ValueError("one deadline epoch per request is required")
        if not requests:
            return []
        if shard_by_fingerprint:
            planner = ShardPlanner(num_shards=self.workers)
            groups = planner.partition_requests(requests, default_config)
            futures = [
                self._executor.submit(
                    execute_request_group,
                    tuple(requests[position] for position in group),
                    tuple(deadline_epochs[position] for position in group),
                    trace_ctx,
                )
                for group in groups
            ]
            outputs: list = [None] * len(requests)
            for group, future in zip(groups, futures):
                for position, output in zip(group, future.result()):
                    outputs[position] = output
            return outputs
        futures = [
            self._executor.submit(execute_request, request, epoch, trace_ctx)
            for request, epoch in zip(requests, deadline_epochs)
        ]
        return [future.result() for future in futures]

    def execute_shards(self, tasks: list[ShardTask]) -> list[ShardOutcome]:
        """Fan one query's shard tasks out over the workers."""
        futures = [
            self._executor.submit(execute_shard_task, task) for task in tasks
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
