"""Process-pool backend: warm, *supervised* worker processes.

The GIL serializes the thread-pool backend — the paper's approximation
schemes are CPU-bound Python dynamic programs, so threads only overlap
their bookkeeping, never their real work. :class:`WorkerPool` runs
requests in separate processes instead: each worker is a fresh
interpreter (spawn start method — safe regardless of parent threads,
and identical behavior on every platform) initialized once with the
service's schema/config/params, after which it stays warm and reuses
its algorithm registry, cost model and plan cache across requests.

Results and per-request :class:`RequestMetrics` ship back pickled; the
owning :class:`~repro.core.service.OptimizerService` merges the records
into its :class:`ServiceMetrics`, so observability is identical across
backends.

**Supervision.** A single SIGKILLed worker poisons a
``ProcessPoolExecutor`` permanently: every in-flight future raises
``BrokenProcessPool`` and the executor refuses new work. The pool turns
that into a counted, recoverable event instead of a terminal one:

* every dispatch records the executor *generation* it was submitted
  under; when an await observes an infrastructure failure, the first
  observer rebuilds the executor (terminating leftover processes
  best-effort) and bumps the generation — concurrent observers see the
  bump and skip the rebuild;
* the failed dispatch is re-submitted **at most once** on the current
  executor, with any injected chaos fault stripped so a re-dispatch
  never replays the fault that killed the first attempt;
* an optional per-dispatch ``heartbeat_s`` bounds how long an await
  will wait on a worker — a stuck worker (the failure SIGKILL cannot
  model) is treated as dead: pool respawned, dispatch re-sent.

Only *infrastructure* failures trigger this path (broken pool,
heartbeat timeout, cancelled queue entries after a respawn, pickling
failures, injected :class:`ChaosError`); real optimizer exceptions
propagate to the caller unchanged. When the re-dispatch also fails the
await raises :class:`~repro.exceptions.WorkerCrashError`, the signal
the service's retry/degradation ladder keys on.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.catalog.schema import Schema
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.core.instrumentation import RequestMetrics
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import WorkerCrashError
from repro.obs.trace import Span, TraceContext, active_tracer
from repro.parallel.sharding import ShardOutcome, ShardPlanner, ShardTask
from repro.parallel.worker import (
    WorkerSetup,
    execute_request,
    execute_request_group,
    execute_shard_task,
    initialize_worker,
    ping,
)
from repro.resilience.chaos import ChaosError, ChaosInjector

#: Failures that mean "the pool (or this dispatch's transport) broke",
#: never "the optimizer rejected the request".
_TRANSIENT_EXCEPTIONS = (
    BrokenProcessPool,
    FuturesTimeoutError,
    CancelledError,
    pickle.PicklingError,
    ChaosError,
)

#: The subset that also means worker processes must be replaced (a mere
#: executor exception or unpicklable result leaves the pool healthy).
_RESPAWN_EXCEPTIONS = (BrokenProcessPool, FuturesTimeoutError)


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


def default_worker_count() -> int:
    """Default worker-process count: usable CPUs, capped at 8 (matching
    the thread backend's cap)."""
    return max(1, min(8, usable_cpu_count()))


class _Submission:
    """One supervised dispatch: enough state to re-send it once."""

    __slots__ = ("fn", "args", "clean_args", "future", "generation",
                 "redispatched")

    def __init__(self, fn, args, clean_args, future, generation) -> None:
        self.fn = fn
        self.args = args
        self.clean_args = clean_args
        self.future = future
        self.generation = generation
        self.redispatched = False


class WorkerPool:
    """A warm, supervised pool of optimizer worker processes.

    The pool is cheap to keep around and expensive to start (each spawn
    imports the package and rebuilds the cost model), so services hold
    one pool for their lifetime rather than one per batch. ``warm_up``
    forces all workers to finish initializing — call it before timing
    anything against the pool.

    ``heartbeat_s`` (default off) bounds each dispatch's wait: a worker
    silent for that long is presumed stuck, the pool is respawned and
    the dispatch re-sent once. ``chaos`` injects deterministic faults
    into dispatches (tests/CI only; ``None`` is the zero-overhead
    production path). ``on_event`` receives ``"worker_failure"`` /
    ``"respawn"`` / ``"redispatch"`` notifications — the hook the
    owning service uses to feed its metrics.
    """

    def __init__(
        self,
        schema: Schema,
        config: OptimizerConfig = DEFAULT_CONFIG,
        params: CostParams = DEFAULT_PARAMS,
        *,
        workers: int | None = None,
        cache_size: int = 256,
        scheduler=None,
        extra_initializer=None,
        heartbeat_s: float | None = None,
        chaos: ChaosInjector | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> None:
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.heartbeat_s = heartbeat_s
        self.chaos = chaos
        self._on_event = on_event
        self._setup = WorkerSetup(
            schema=schema,
            config=config,
            params=params,
            cache_size=cache_size,
            scheduler=scheduler,
            extra_initializer=extra_initializer,
        )
        self._lock = threading.Lock()
        self._generation = 0  # guarded-by: _lock
        self._executor = self._build_executor()  # guarded-by: _lock
        #: Lifetime supervision counters (read via :meth:`stats`).
        self.respawns = 0  # guarded-by: _lock
        self.redispatches = 0  # guarded-by: _lock
        self.worker_failures = 0  # guarded-by: _lock

    def _build_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=initialize_worker,
            initargs=(self._setup,),
        )

    # ------------------------------------------------------------------
    # Supervision internals
    # ------------------------------------------------------------------
    def _emit(self, event: str) -> None:
        if self._on_event is not None:
            self._on_event(event)

    def _respawn(self, seen_generation: int) -> bool:
        """Replace the executor; only the first observer of a given
        generation's failure actually rebuilds (the guard), everyone
        else returns immediately and re-dispatches on the new pool."""
        with self._lock:
            if self._generation != seen_generation:
                return False
            old = self._executor
            tracer = active_tracer()
            handle = (
                tracer.begin("respawn", "respawn", generation=seen_generation)
                if tracer is not None
                else None
            )
            try:
                # A stuck (heartbeat-timeout) worker never drains its
                # queue; terminate the old processes so shutdown below
                # cannot block on them.
                processes = getattr(old, "_processes", None) or {}
                for process in list(processes.values()):
                    try:
                        process.terminate()
                    except Exception:
                        pass
                old.shutdown(wait=False, cancel_futures=True)
                self._executor = self._build_executor()
                self._generation += 1
                self.respawns += 1
            finally:
                if handle is not None:
                    handle.finish()
        self._emit("respawn")
        return True

    def _submit(self, fn, args, clean_args=None) -> _Submission:
        with self._lock:
            generation = self._generation
            future = self._executor.submit(fn, *args)
        return _Submission(
            fn, args, clean_args if clean_args is not None else args,
            future, generation,
        )

    def _wait_ready(self, timeout: float = 60.0) -> None:
        """Block until the executor has an initialized worker.

        Called between a respawn and the re-dispatch when a heartbeat is
        configured: a fresh executor spends seconds spawning and
        importing, and counting that against the re-dispatch's heartbeat
        would misdiagnose a healthy pool as stuck (turning one injected
        hang into a spurious ``WorkerCrashError``). The probe is any
        picklable no-op — it cannot run before the worker initializer
        finishes, so its completion proves readiness. Failures fall
        through: the re-dispatch itself will surface them.
        """
        with self._lock:
            executor = self._executor
        try:
            executor.submit(int).result(timeout=timeout)
        except Exception:
            pass

    def _redispatch(self, submission: _Submission) -> None:
        """Re-send a failed dispatch once, chaos faults stripped."""
        with self._lock:
            generation = self._generation
            future = self._executor.submit(
                submission.fn, *submission.clean_args
            )
            self.redispatches += 1
        submission.future = future
        submission.generation = generation
        submission.redispatched = True
        self._emit("redispatch")

    def _await(self, submission: _Submission):
        """Await a dispatch, surviving exactly one infrastructure
        failure via respawn (when needed) + re-dispatch."""
        while True:
            try:
                return submission.future.result(timeout=self.heartbeat_s)
            except _TRANSIENT_EXCEPTIONS as exc:
                with self._lock:
                    self.worker_failures += 1
                self._emit("worker_failure")
                if isinstance(exc, _RESPAWN_EXCEPTIONS):
                    self._respawn(submission.generation)
                    if self.heartbeat_s is not None:
                        self._wait_ready()
                if submission.redispatched:
                    raise WorkerCrashError(
                        "worker dispatch failed after one re-dispatch: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                tracer = active_tracer()
                if tracer is not None:
                    with tracer.span(
                        "redispatch", "retry", cause=type(exc).__name__
                    ):
                        self._redispatch(submission)
                else:
                    self._redispatch(submission)

    def _await_safe(self, submission: _Submission):
        """Like :meth:`_await`, but returns the crash instead of raising
        (batch mode: one poisoned dispatch must not fail its siblings)."""
        try:
            return self._await(submission)
        except WorkerCrashError as crash:
            return crash

    # ------------------------------------------------------------------
    def warm_up(self, timeout: float = 60.0) -> list[str]:
        """Block until *every* worker process is initialized.

        The probes rendezvous at a barrier sized to the pool, so a fast
        worker cannot answer its siblings' probes — all ``workers``
        names come back distinct, each from a fully initialized worker.
        A worker that fails to come up within ``timeout`` seconds
        surfaces as a ``BrokenBarrierError`` instead of a silent hang.
        """
        with multiprocessing.Manager() as manager:
            barrier = manager.Barrier(self.workers)
            with self._lock:
                executor = self._executor
            futures = [
                executor.submit(ping, barrier, timeout)
                for _ in range(self.workers)
            ]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def _submit_request(
        self,
        request: OptimizationRequest,
        deadline_epoch: float | None,
        trace_ctx: TraceContext | None,
    ) -> _Submission:
        fault = self.chaos.draw_dispatch() if self.chaos is not None else None
        return self._submit(
            execute_request,
            (request, deadline_epoch, trace_ctx, fault),
            (request, deadline_epoch, trace_ctx, None),
        )

    def execute_one(
        self,
        request: OptimizationRequest,
        deadline_epoch: float | None = None,
        *,
        trace_ctx: TraceContext | None = None,
    ) -> tuple[OptimizationResult, RequestMetrics, list[Span]]:
        """Execute one request on a worker, blocking until it finishes.

        The single-request analogue of :meth:`execute_many` —
        :meth:`OptimizerService.submit` routes cache misses here under
        the process backend. ``trace_ctx`` parents the worker's spans
        under the caller's span; they ship back in the third slot.
        Supervised: survives one worker death / hang per dispatch.
        """
        return self._await(
            self._submit_request(request, deadline_epoch, trace_ctx)
        )

    def execute_many(
        self,
        requests: Sequence[OptimizationRequest],
        deadline_epochs: Sequence[float | None] | None = None,
        *,
        shard_by_fingerprint: bool = False,
        default_config: OptimizerConfig | None = None,
        trace_ctx: TraceContext | None = None,
        on_crash: str = "raise",
    ) -> list[tuple[OptimizationResult, RequestMetrics, list[Span]]]:
        """Execute a batch on the pool; results keep the input order.

        ``shard_by_fingerprint=True`` routes the batch through
        :meth:`ShardPlanner.partition_requests`: one task per shard,
        each executing its requests sequentially on one worker, so
        fingerprint-equal requests hit that worker's plan cache.
        The default submits one task per request — best load balance
        when the batch has no repeats. ``trace_ctx`` (when the caller
        is tracing) parents every request's worker-side spans under the
        caller's span; they ship back per request in the third slot.

        Supervised like :meth:`execute_one`: everything submits up
        front (full parallelism), and each dispatch independently
        survives one infrastructure failure — a single worker death
        mid-batch costs one respawn plus re-dispatches of the
        not-yet-finished tasks, not the batch. ``on_crash="return"``
        replaces unsalvageable dispatches' outputs with their
        :class:`WorkerCrashError` (every shipped position of a crashed
        shard group) instead of raising, so the caller can recover the
        rest of the batch.
        """
        if on_crash not in ("raise", "return"):
            raise ValueError(
                f"on_crash must be 'raise' or 'return', got {on_crash!r}"
            )
        gather = self._await if on_crash == "raise" else self._await_safe
        requests = list(requests)
        if deadline_epochs is None:
            deadline_epochs = [None] * len(requests)
        deadline_epochs = list(deadline_epochs)
        if len(deadline_epochs) != len(requests):
            raise ValueError("one deadline epoch per request is required")
        if not requests:
            return []
        if shard_by_fingerprint:
            planner = ShardPlanner(num_shards=self.workers)
            groups = planner.partition_requests(requests, default_config)
            submissions = []
            for group in groups:
                fault = (
                    self.chaos.draw_dispatch()
                    if self.chaos is not None
                    else None
                )
                grouped_requests = tuple(
                    requests[position] for position in group
                )
                grouped_epochs = tuple(
                    deadline_epochs[position] for position in group
                )
                submissions.append(
                    self._submit(
                        execute_request_group,
                        (grouped_requests, grouped_epochs, trace_ctx, fault),
                        (grouped_requests, grouped_epochs, trace_ctx, None),
                    )
                )
            outputs: list = [None] * len(requests)
            for group, submission in zip(groups, submissions):
                gathered = gather(submission)
                if isinstance(gathered, WorkerCrashError):
                    for position in group:
                        outputs[position] = gathered
                else:
                    for position, output in zip(group, gathered):
                        outputs[position] = output
            return outputs
        submissions = [
            self._submit_request(request, epoch, trace_ctx)
            for request, epoch in zip(requests, deadline_epochs)
        ]
        return [gather(submission) for submission in submissions]

    def execute_shards(self, tasks: list[ShardTask]) -> list[ShardOutcome]:
        """Fan one query's shard tasks out over the workers.

        Supervised (respawn + single re-dispatch per shard) but never
        chaos-faulted — shards belong to one query, and the intra-query
        merge contract is exercised elsewhere.
        """
        submissions = [
            self._submit(execute_shard_task, (task,)) for task in tasks
        ]
        return [self._await(submission) for submission in submissions]

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Supervision counters (point-in-time, safe to serialize)."""
        with self._lock:
            snapshot: dict[str, object] = {
                "workers": self.workers,
                "generation": self._generation,
                "respawns": self.respawns,
                "redispatches": self.redispatches,
                "worker_failures": self.worker_failures,
            }
        if self.chaos is not None:
            snapshot["chaos"] = self.chaos.snapshot()
        return snapshot

    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        with self._lock:
            executor = self._executor
        executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
