"""Plan-space sharding: partition one query's search space across workers.

Two sharding modes live here:

* **Batch sharding** — :meth:`ShardPlanner.partition_requests` groups a
  batch of requests by their canonical fingerprint. Requests with the
  same fingerprint land in the same group, and each group executes
  sequentially on one worker, so repeats within a batch hit that
  worker's plan cache instead of being optimized twice in parallel.

* **Intra-query sharding** — for the single-pass dynamic programs (EXA
  and RTA) the *seed space of join orders* is partitioned: every join
  order is rooted in one top-level split of the full table set (the
  root join's operand partition), and the ordered split list is cut
  into contiguous ranges, one per shard.

The intra-query scheme is *prefix-replay* sharding, chosen so that the
merged result is **bit-for-bit identical** to the single-process run.
(The vectorized enumeration of :mod:`repro.core.dp` preserves the
scalar loop's candidate order and accept/discard decisions exactly, so
the guarantee holds identically whether shards run the batched or the
scalar hot path — and even when the two sides of a comparison mix
them.)
Approximate dominance pruning is history-dependent (it is not
transitive: keeping or dropping a plan depends on which plans arrived
before it), so independently pruned shards cannot simply be
Pareto-merged — plans discarded inside one shard may survive the
sequential run, and vice versa. Instead:

1. every shard recomputes the plan sets of all proper table subsets —
   this part of the DP is deterministic and identical in every shard;
2. shard ``k`` processes top-level splits ``[0, stop_k)`` — its own
   range *plus the whole prefix* — through the ordinary pruning
   structure, but only reports entries first accepted inside its own
   range ``[start_k, stop_k)``. Processing the prefix reconstructs the
   exact pruning state the sequential run would have had when entering
   the shard's range, so every accept/reject/discard decision inside
   the range is the sequential one;
3. the merge replays the shard reports in shard order through a fresh
   pruning structure with the same precision. Cross-range discards
   (a later split's plan dominating an earlier split's plan) happen at
   replay exactly where the sequential run applied them.

The price is the duplicated sub-set work of step 1 (and the replayed
prefixes of step 2): intra-query sharding pays off when the final
level dominates the run — the many-objective EXA regime, where the
paper observes the number of Pareto plans per table set exploding —
and is a determinism-preserving building block, not a general speedup.
Batch-level sharding over the process pool is the throughput path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import OptimizerConfig
from repro.core.dp import (
    DPRun,
    deadline_exceeded,
    strict_closure,
    strip_entries,
)
from repro.core.instrumentation import Counters
from repro.core.preferences import Preferences
from repro.core.pruning import PlanSet
from repro.core.registry import get_algorithm
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.core.rta import internal_precision
from repro.core.select_best import select_best
from repro.cost.model import CostModel
from repro.exceptions import OptimizerError
from repro.query.join_graph import JoinGraph
from repro.query.query import Query

#: Algorithms whose single-pass DP supports intra-query sharding. The
#: IRA iterates (each iteration re-runs the RTA machinery at a finer
#: precision), so it parallelizes across requests, not within one.
SHARDABLE_ALGORITHMS = ("exa", "rta")


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of intra-query work (one split range).

    ``deadline_epoch`` is an absolute wall-clock (``time.time``)
    deadline shared by *all* shards of one request — whether shards run
    in parallel across processes or sequentially in one, the request's
    total budget is one budget, not one per shard.
    """

    query: Query
    preferences: Preferences
    algorithm: str
    alpha: float
    config: OptimizerConfig
    strict: bool
    split_start: int
    split_stop: int
    deadline_epoch: float | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard reports back: its range's accepted entries."""

    entries: tuple
    plans_considered: int
    memory_kb: float
    timed_out: bool
    deadline_hit: bool
    candidates_vectorized: int = 0
    phase_ms: dict = field(default_factory=dict, compare=False)


class _ShardDPRun(DPRun):
    """DP run that reports the full-mask entries of one split range.

    Processes top-level splits ``[0, split_stop)`` (prefix included, to
    reconstruct the sequential pruning state) and records the entries
    first accepted at split positions ``>= split_start``.
    """

    def __init__(self, *args, split_start: int = 0,
                 split_stop: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._split_start = split_start
        self._split_stop = split_stop
        self.shard_entries: list = []

    def run(self):
        graph = self.graph
        masks = graph.connected_subsets()
        full = graph.full_mask
        self.counters.table_sets_total = len(masks)
        sets: dict[int, PlanSet] = {}
        for mask in masks:
            fallback_before = self._timed_out
            if mask.bit_count() == 1:
                plan_set = self._build_singleton(mask)
                if mask == full and self._split_start == 0:
                    # Degenerate single-table query: all "splits" belong
                    # to the first shard.
                    self.shard_entries = list(plan_set.entries)
            elif mask == full:
                plan_set = self._build_sharded_top(mask, sets)
            else:
                plan_set = self._build_composite(mask, sets)
            sets[mask] = plan_set
            self.counters.complete_table_set(
                mask, len(plan_set),
                fallback=fallback_before or self._timed_out,
            )
        self.counters.timed_out = self._timed_out
        return sets

    def _build_sharded_top(self, mask: int, sets: dict[int, PlanSet]):
        plan_set = self._new_set()
        splits = list(self.graph.splits(mask))
        start = self._split_start
        stop = len(splits) if self._split_stop is None else self._split_stop
        self._combine_splits(plan_set, splits[:start], sets)
        # Hold strong references to the prefix entries: identity is the
        # membership test, and a discarded entry's id could otherwise be
        # recycled for a new entry tuple.
        prefix_entries = list(plan_set.entries)
        prefix_ids = {id(entry) for entry in prefix_entries}
        self._combine_splits(plan_set, splits[start:stop], sets)
        self.shard_entries = [
            entry for entry in plan_set.entries
            if id(entry) not in prefix_ids
        ]
        return plan_set


# ----------------------------------------------------------------------
# Shard execution and deterministic merge
# ----------------------------------------------------------------------
def _run_params(task: ShardTask) -> dict:
    """DPRun keyword arguments shared by every shard of one query."""
    spec = get_algorithm(task.algorithm)
    preferences = spec.prepare_preferences(task.preferences)
    if task.algorithm == "rta":
        alpha_internal = internal_precision(
            task.alpha, task.query.num_tables
        )
    else:
        alpha_internal = 1.0
    return dict(
        preferences=preferences,
        alpha_internal=alpha_internal,
        extra_indices=(
            strict_closure(preferences.indices) if task.strict else ()
        ),
        include_rows=task.strict,
    )


def execute_shard(task: ShardTask, cost_model: CostModel) -> ShardOutcome:
    """Run one shard of a query's top-level split space.

    The task's wall-clock deadline is converted to this process's
    ``perf_counter`` scale at entry; a shard that starts after the
    deadline (e.g. queued behind its siblings on a busy pool, or run
    sequentially in-process) degrades to the enumerator's single-plan
    fallback immediately and reports the miss.
    """
    import time as _time

    params = _run_params(task)
    preferences = params["preferences"]
    deadline = (
        _time.perf_counter() + (task.deadline_epoch - _time.time())
        if task.deadline_epoch is not None
        else None
    )
    counters = Counters()
    run = _ShardDPRun(
        query=task.query,
        cost_model=cost_model,
        config=task.config,
        indices=preferences.indices,
        weights=preferences.weights,
        alpha_internal=params["alpha_internal"],
        deadline=deadline,
        counters=counters,
        extra_indices=params["extra_indices"],
        include_rows=params["include_rows"],
        split_start=task.split_start,
        split_stop=task.split_stop,
    )
    run.run()
    return ShardOutcome(
        entries=tuple(run.shard_entries),
        plans_considered=counters.plans_considered,
        memory_kb=counters.memory_kb,
        timed_out=counters.timed_out,
        deadline_hit=counters.timed_out or deadline_exceeded(deadline),
        candidates_vectorized=counters.candidates_vectorized,
        phase_ms=counters.phase_ms() if task.config.phase_timers else {},
    )


def merge_shard_outcomes(
    task: ShardTask,
    outcomes: Sequence[ShardOutcome],
    elapsed_ms: float,
) -> OptimizationResult:
    """Deterministically merge shard reports into one result.

    Replays the shard entries in shard order through a pruning structure
    with the shards' precision; cross-shard dominance is resolved here
    exactly like the sequential run resolves cross-range dominance.
    """
    params = _run_params(task)
    preferences = params["preferences"]
    exact_suffix = 1 if params["include_rows"] else 0
    merged = PlanSet(
        alpha=params["alpha_internal"], exact_suffix=exact_suffix
    )
    for outcome in outcomes:
        for cost, plan in outcome.entries:
            merged.insert(cost, plan)
    width = len(preferences.indices)
    final_set = strip_entries(merged.entries, width)
    best = select_best(final_set, preferences)
    timed_out = any(outcome.timed_out for outcome in outcomes)
    phase_totals: dict[str, float] = {}
    for outcome in outcomes:
        for phase, spent_ms in outcome.phase_ms.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + spent_ms
    return OptimizationResult(
        algorithm=task.algorithm,
        query_name=task.query.name,
        preferences=preferences,
        plan=best[1] if best else None,
        plan_cost=best[0] if best else None,
        frontier=tuple(final_set),
        optimization_time_ms=elapsed_ms,
        memory_kb=max(outcome.memory_kb for outcome in outcomes),
        pareto_last_complete=0 if timed_out else len(final_set),
        plans_considered=sum(o.plans_considered for o in outcomes),
        candidates_vectorized=sum(
            o.candidates_vectorized for o in outcomes
        ),
        timed_out=timed_out,
        alpha=task.alpha if task.algorithm == "rta" else 1.0,
        deadline_hit=any(outcome.deadline_hit for outcome in outcomes),
        phase_ms=phase_totals,
    )


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlanner:
    """Decides how work is partitioned across ``num_shards`` workers."""

    num_shards: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise OptimizerError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )

    # -- batch sharding ------------------------------------------------
    def shard_of(self, fingerprint: str) -> int:
        """Deterministic shard index for one request fingerprint."""
        return int(fingerprint[:16], 16) % self.num_shards

    def partition_requests(
        self,
        requests: Sequence[OptimizationRequest],
        default_config: OptimizerConfig | None = None,
    ) -> list[list[int]]:
        """Group batch positions by fingerprint shard.

        Returns non-empty groups of indices into ``requests``; each
        group is meant to execute sequentially on one worker, so equal
        requests deduplicate against that worker's plan cache.
        """
        groups: list[list[int]] = [[] for _ in range(self.num_shards)]
        for position, request in enumerate(requests):
            fingerprint = request.fingerprint(default_config)
            groups[self.shard_of(fingerprint)].append(position)
        return [group for group in groups if group]

    # -- intra-query sharding ------------------------------------------
    def split_ranges(self, num_splits: int) -> list[tuple[int, int]]:
        """Contiguous, near-even ranges over the top-level split list."""
        if num_splits <= 0:
            return [(0, 0)]
        shards = min(self.num_shards, num_splits)
        bounds = [
            round(index * num_splits / shards) for index in range(shards + 1)
        ]
        return [
            (start, stop)
            for start, stop in zip(bounds, bounds[1:])
            if stop > start
        ]

    def plan_query_shards(
        self,
        query: Query,
        preferences: Preferences,
        algorithm: str,
        alpha: float,
        config: OptimizerConfig,
        *,
        strict: bool = False,
        deadline_epoch: float | None = None,
    ) -> list[ShardTask]:
        """Shard one query block's top-level split space into tasks."""
        if algorithm not in SHARDABLE_ALGORITHMS:
            raise OptimizerError(
                f"intra-query sharding supports {SHARDABLE_ALGORITHMS}, "
                f"got {algorithm!r} (the IRA iterates and parallelizes "
                f"across requests instead)"
            )
        graph = JoinGraph(query)
        num_splits = (
            len(list(graph.splits(graph.full_mask)))
            if query.num_tables > 1
            else 1
        )
        return [
            ShardTask(
                query=query,
                preferences=preferences,
                algorithm=algorithm,
                alpha=alpha,
                config=config,
                strict=strict,
                split_start=start,
                split_stop=stop,
                deadline_epoch=deadline_epoch,
            )
            for start, stop in self.split_ranges(num_splits)
        ]


def sharded_moqo(
    query: Query,
    cost_model: CostModel,
    preferences: Preferences,
    alpha: float,
    config: OptimizerConfig,
    *,
    algorithm: str = "rta",
    num_shards: int = 2,
    strict: bool = False,
    budget_seconds: float | None = None,
    run_tasks: Callable[[list[ShardTask]], list[ShardOutcome]] | None = None,
) -> OptimizationResult:
    """Optimize one query block with a sharded EXA/RTA.

    ``run_tasks`` executes the shard tasks — in-process sequentially by
    default (useful for determinism tests), or fanned out over a
    :class:`~repro.parallel.pool.WorkerPool` via
    :meth:`~repro.parallel.pool.WorkerPool.execute_shards`. The merged
    frontier is bit-for-bit the single-process frontier either way.

    ``budget_seconds`` is one total budget for the whole request,
    converted to a single absolute deadline here and shared by every
    shard — sequential shard execution does not multiply it.
    """
    import time as _time

    start = _time.perf_counter()
    deadline_epoch = (
        _time.time() + budget_seconds if budget_seconds is not None else None
    )
    planner = ShardPlanner(num_shards=num_shards)
    tasks = planner.plan_query_shards(
        query, preferences, algorithm, alpha, config,
        strict=strict, deadline_epoch=deadline_epoch,
    )
    if run_tasks is None:
        outcomes = [execute_shard(task, cost_model) for task in tasks]
    else:
        outcomes = list(run_tasks(tasks))
    elapsed_ms = (_time.perf_counter() - start) * 1000.0
    return merge_shard_outcomes(tasks[0], outcomes, elapsed_ms)
