"""Worker-process side of the parallel backend.

Each pool worker holds one warm :class:`~repro.core.service.OptimizerService`
in a module-level global, built once by the pool initializer: its own
algorithm registry (re-created by importing :mod:`repro.core.registry`
in the fresh interpreter — spawn-safe, nothing is inherited), its own
cost model, and its own plan cache. Requests arrive pickled, execute
against the warm service, and ship an :class:`OptimizationResult` plus
the :class:`RequestMetrics` record back to the parent, which merges the
records into the parent's :class:`ServiceMetrics`.

Everything in this module that the parent references for the pool
(initializer and task functions) is a top-level function, so it pickles
by qualified name under the spawn start method.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass
from typing import Callable

from repro.catalog.schema import Schema
from repro.config import OptimizerConfig
from repro.core.instrumentation import RequestMetrics
from repro.core.request import OptimizationRequest
from repro.core.result import OptimizationResult
from repro.cost.postgres_params import CostParams
from repro.obs.trace import Span, TraceContext, Tracer
from repro.parallel.deadline import DeadlineScheduler
from repro.parallel.sharding import ShardOutcome, ShardTask, execute_shard
from repro.resilience.chaos import Fault, apply_fault


@dataclass(frozen=True)
class WorkerSetup:
    """Everything a worker needs to build its warm service (picklable).

    ``extra_initializer`` runs once per worker after the service is
    built — the hook for registering custom algorithms in the worker's
    registry (it must be a top-level, importable function).
    """

    schema: Schema
    config: OptimizerConfig
    params: CostParams
    cache_size: int = 256
    scheduler: DeadlineScheduler | None = None
    extra_initializer: Callable[[], None] | None = None


#: One warm service per worker process; ``None`` until initialized.
_WORKER_SERVICE = None


def initialize_worker(setup: WorkerSetup) -> None:
    """Pool initializer: build this process's warm optimizer service."""
    global _WORKER_SERVICE
    # Imported here, not at module top: the parent passes this function
    # to the executor, and the service module imports this one.
    from repro.core.service import OptimizerService

    _WORKER_SERVICE = OptimizerService(
        setup.schema,
        setup.config,
        setup.params,
        cache_size=setup.cache_size,
        backend="inline",
        scheduler=setup.scheduler,
    )
    if setup.extra_initializer is not None:
        setup.extra_initializer()


def _service():
    if _WORKER_SERVICE is None:
        raise RuntimeError(
            "worker process not initialized; tasks from this module must "
            "run in a pool created with initialize_worker"
        )
    return _WORKER_SERVICE


def worker_name() -> str:
    """Name of the current worker process (for metrics attribution)."""
    return multiprocessing.current_process().name


def ping(barrier=None, timeout: float = 60.0) -> str:
    """Warm-up probe; returns the worker name once the worker is live.

    With a barrier (a ``multiprocessing.Manager().Barrier`` proxy of
    pool size), the probe additionally waits until *every* worker is
    simultaneously inside a probe — a worker runs one task at a time,
    so N parties meeting at the barrier proves N distinct workers have
    finished initializing (a fast worker cannot drain its siblings'
    probes).
    """
    _service()
    if barrier is not None:
        barrier.wait(timeout)
    return worker_name()


# ----------------------------------------------------------------------
# Task entry points (run inside workers)
# ----------------------------------------------------------------------
def execute_request(
    request: OptimizationRequest,
    deadline_epoch: float | None = None,
    trace_ctx: TraceContext | None = None,
    fault: Fault | None = None,
) -> tuple[OptimizationResult, RequestMetrics, list[Span]]:
    """Execute one request on this worker's warm service.

    The worker service's deadline scheduler (if the pool was built with
    one) resolves the remaining budget inside ``submit`` — at dequeue
    time, so time the request spent queueing in the parent and in the
    pool's call queue counts against its deadline. The worker's plan
    cache keys on the *original* request fingerprint, so
    fingerprint-sharded repeats deduplicate even under a scheduler.

    ``trace_ctx`` (when the parent is tracing) parents this worker's
    spans under the caller's span; the finished spans ship back pickled
    in the third tuple slot for the parent to ingest. Without a
    context, tracing stays off — the default, zero-overhead path.

    ``fault`` is a chaos injection drawn in the parent: applied before
    any real work so a ``kill`` dies without side effects (the pool's
    supervisor strips faults when it re-dispatches).
    """
    poison = apply_fault(fault)
    if poison is not None:
        return poison  # unpicklable: the 'pickle' fault firing
    service = _service()
    captured: list[RequestMetrics] = []
    capture = captured.append
    service.add_hook(capture)
    try:
        if trace_ctx is None:
            result = service.submit(request, deadline_epoch=deadline_epoch)
            spans: list[Span] = []
        else:
            tracer = Tracer()
            with tracer.activate(), tracer.adopt(trace_ctx):
                result = service.submit(
                    request, deadline_epoch=deadline_epoch
                )
            spans = tracer.drain()
    finally:
        service.remove_hook(capture)
    record = dataclasses.replace(captured[-1], worker=worker_name())
    return result, record, spans


def execute_request_group(
    requests: tuple[OptimizationRequest, ...],
    deadline_epochs: tuple[float | None, ...],
    trace_ctx: TraceContext | None = None,
    fault: Fault | None = None,
) -> list[tuple[OptimizationResult, RequestMetrics, list[Span]]]:
    """Execute a fingerprint-sharded group sequentially on one worker.

    Sequential execution is the point: repeats within the group hit this
    worker's plan cache instead of racing each other. A chaos ``fault``
    fires once, at group entry — one drawn fault per dispatch, same as
    the unsharded path.
    """
    poison = apply_fault(fault)
    if poison is not None:
        return poison  # unpicklable: the 'pickle' fault firing
    return [
        execute_request(request, epoch, trace_ctx)
        for request, epoch in zip(requests, deadline_epochs)
    ]


def execute_shard_task(task: ShardTask) -> ShardOutcome:
    """Run one intra-query shard against this worker's cost model."""
    return execute_shard(task, _service().optimizer.cost_model)
