"""Parallel optimization backend: process pools, sharding, deadlines.

Three cooperating pieces turn the single-process optimizer into a
multi-core service backend:

* :class:`WorkerPool` — warm, spawn-safe worker processes, each with
  its own algorithm registry, cost model and plan cache; results and
  per-request metrics ship back to the parent.
* :class:`ShardPlanner` — batch-level sharding by request fingerprint
  (cache affinity) and deterministic intra-query sharding of the
  EXA/RTA plan space with a replay merge that reproduces the
  single-process frontier bit for bit.
* :class:`DeadlineScheduler` — end-to-end per-request deadlines:
  queueing counts, near-deadline requests reroute to the anytime IRA,
  and missed deadlines surface as ``OptimizationResult.deadline_hit``.

:class:`~repro.core.service.OptimizerService` wires these together
behind ``backend="processes"``; the pieces are also usable directly.
"""

from repro.parallel.deadline import DeadlineScheduler, ScheduledRequest
from repro.parallel.pool import (
    WorkerPool,
    default_worker_count,
    usable_cpu_count,
)
from repro.parallel.sharding import (
    SHARDABLE_ALGORITHMS,
    ShardOutcome,
    ShardPlanner,
    ShardTask,
    execute_shard,
    merge_shard_outcomes,
    sharded_moqo,
)
from repro.parallel.worker import WorkerSetup

__all__ = [
    "DeadlineScheduler",
    "SHARDABLE_ALGORITHMS",
    "ScheduledRequest",
    "ShardOutcome",
    "ShardPlanner",
    "ShardTask",
    "WorkerPool",
    "WorkerSetup",
    "default_worker_count",
    "execute_shard",
    "merge_shard_outcomes",
    "sharded_moqo",
    "usable_cpu_count",
]
