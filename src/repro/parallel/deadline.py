"""Deadline-aware scheduling for optimization requests.

A request's ``timeout_seconds`` is a *total* latency budget: under the
:class:`DeadlineScheduler` the clock starts when the request is admitted
to a batch, not when a worker finally picks it up, so time spent queueing
behind other requests counts against the deadline. At execution time the
scheduler resolves what is left of the budget and adapts:

* plenty of budget left — run the request as submitted, with the
  remaining time as the effective timeout;
* running low (less than ``route_fraction`` of the budget remains) —
  route to the anytime-capable IRA path, whose iterative refinement
  yields a usable plan after every iteration instead of betting the
  whole remaining budget on one deep enumeration;
* budget exhausted before execution even starts — run with an
  already-expired deadline, which makes the enumerator produce the
  paper's single-plan fallback almost immediately. The result carries
  ``deadline_hit=True`` so callers see the miss instead of mistaking a
  greedy fallback plan for an on-time answer.

Deadlines are exchanged between processes as wall-clock epochs
(``time.time()``): ``perf_counter`` epochs are not guaranteed to be
comparable across processes, wall clocks on one machine are.

The scheduler is an immutable policy object — picklable, so the parent
process can ship it to pool workers, which apply it at dequeue time
(that is what makes queueing time count end-to-end).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.registry import get_algorithm
from repro.core.request import OptimizationRequest


@dataclass(frozen=True)
class ScheduledRequest:
    """Outcome of resolving one request against its deadline.

    ``request`` is what should actually execute (possibly rerouted, with
    the timeout rewritten to the remaining budget); ``expired`` flags
    requests whose budget ran out while queueing; ``rerouted`` flags the
    anytime reroute; ``deadline_epoch`` is the absolute wall-clock
    deadline (``None`` when the request carries no budget).
    """

    request: OptimizationRequest
    deadline_epoch: float | None
    expired: bool = False
    rerouted: bool = False


@dataclass(frozen=True)
class DeadlineScheduler:
    """Policy turning per-request budgets into end-to-end deadlines.

    ``route_fraction`` is the near-deadline threshold: once less than
    that fraction of the original budget remains at execution start, the
    request is rerouted to ``anytime_algorithm`` (default IRA — the only
    scheme of the paper that produces a valid, bound-aware plan after
    every refinement iteration). ``min_slice_seconds`` is the smallest
    slice worth starting a real enumeration for; below it the run starts
    with an expired deadline and degrades to the single-plan fallback.
    """

    route_fraction: float = 0.25
    anytime_algorithm: str = "ira"
    anytime_alpha: float = 1.5
    min_slice_seconds: float = 0.005
    #: Effective timeout handed to already-expired runs; must be > 0 to
    #: satisfy request validation, small enough to trip immediately.
    expired_slice_seconds: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.route_fraction <= 1.0:
            raise ValueError(
                f"route_fraction must be in [0, 1], got {self.route_fraction}"
            )
        if self.anytime_alpha < 1.0:
            raise ValueError(
                f"anytime_alpha must be >= 1, got {self.anytime_alpha}"
            )
        get_algorithm(self.anytime_algorithm)  # raises on unknown names

    # ------------------------------------------------------------------
    def admit(
        self,
        request: OptimizationRequest,
        now: float | None = None,
        default_timeout: float | None = None,
    ) -> float | None:
        """Absolute wall-clock deadline for a request admitted ``now``.

        ``default_timeout`` is the executing service's config-level
        timeout — the budget for requests that carry none of their own.
        Returns ``None`` only when no budget exists at any level.
        """
        budget = self._budget(request, default_timeout)
        if budget is None:
            return None
        if now is None:
            now = time.time()
        return now + budget

    def resolve(
        self,
        request: OptimizationRequest,
        deadline_epoch: float | None,
        now: float | None = None,
        default_timeout: float | None = None,
    ) -> ScheduledRequest:
        """Adapt ``request`` to the budget remaining at execution start."""
        budget = self._budget(request, default_timeout)
        if budget is None or deadline_epoch is None:
            return ScheduledRequest(request=request, deadline_epoch=None)
        if now is None:
            now = time.time()
        remaining = deadline_epoch - now
        if remaining <= self.min_slice_seconds:
            expired = request.replace(
                timeout_seconds=self.expired_slice_seconds
            )
            return ScheduledRequest(
                request=expired, deadline_epoch=deadline_epoch, expired=True
            )
        if (
            remaining < self.route_fraction * budget
            and request.algorithm != self.anytime_algorithm
        ):
            rerouted = self._reroute(request, remaining)
            if rerouted is not None:
                return ScheduledRequest(
                    request=rerouted,
                    deadline_epoch=deadline_epoch,
                    rerouted=True,
                )
        return ScheduledRequest(
            request=request.replace(timeout_seconds=remaining),
            deadline_epoch=deadline_epoch,
        )

    def remaining(
        self,
        request: OptimizationRequest,
        admitted_epoch: float,
        now: float | None = None,
        default_timeout: float | None = None,
    ) -> float | None:
        """Budget (seconds) left for a request admitted at ``admitted_epoch``.

        ``None`` means the request carries no budget at any level —
        it can queue forever without going overdue. Negative values mean
        the deadline has already passed.
        """
        budget = self._budget(request, default_timeout)
        if budget is None:
            return None
        if now is None:
            now = time.time()
        return admitted_epoch + budget - now

    def overdue(
        self,
        request: OptimizationRequest,
        admitted_epoch: float,
        now: float | None = None,
        default_timeout: float | None = None,
    ) -> bool:
        """Whether a queued request's budget is already unservable.

        True once less than ``min_slice_seconds`` remains — the same
        threshold :meth:`resolve` uses to degrade a run to the expired
        fallback. The serving layer's admission control uses this at
        dequeue time to drop requests whose deadline passed while they
        queued, instead of spending optimizer capacity producing a
        fallback plan nobody asked to wait for.
        """
        remaining = self.remaining(
            request, admitted_epoch, now, default_timeout
        )
        return remaining is not None and remaining <= self.min_slice_seconds

    # ------------------------------------------------------------------
    def _budget(
        self,
        request: OptimizationRequest,
        default_timeout: float | None = None,
    ) -> float | None:
        """Total latency budget of a request.

        Resolution order mirrors ``effective_config``: the per-request
        timeout wins, then a request-level config's timeout, then the
        executing service's default config timeout.
        """
        if request.timeout_seconds is not None:
            return request.timeout_seconds
        if request.config is not None:
            return request.config.timeout_seconds
        return default_timeout

    def remaining_budget(
        self,
        deadline_epoch: float | None,
        now: float | None = None,
    ) -> float | None:
        """Seconds until an already-admitted absolute deadline.

        The retry path's view of the budget: a backoff sleep must never
        exceed this (see :class:`repro.resilience.policy.RetryPolicy`).
        ``None`` when the request was admitted without a deadline.
        """
        if deadline_epoch is None:
            return None
        if now is None:
            now = time.time()
        return deadline_epoch - now

    def _reroute(
        self, request: OptimizationRequest, remaining: float
    ) -> OptimizationRequest | None:
        """Near-deadline reroute onto the anytime algorithm.

        Keeps the caller's precision when the original algorithm used
        one; otherwise falls back to ``anytime_alpha`` (the original
        alpha may be meaningless — EXA requests carry the field unused).
        Returns ``None`` when the rerouted request does not validate
        (e.g. a custom algorithm's preferences are outside what the
        anytime scheme accepts) — better the original near-deadline run
        than a refused request.
        """
        spec = get_algorithm(request.algorithm)
        alpha = request.alpha if spec.uses_alpha else self.anytime_alpha
        try:
            return request.replace(
                algorithm=self.anytime_algorithm,
                alpha=alpha,
                timeout_seconds=remaining,
            )
        except Exception:
            return None
