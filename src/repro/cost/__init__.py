"""Cost substrate: objectives, vectors, parameters, cardinality, model."""

from repro.cost.cardinality import (
    filter_selectivity,
    join_output_rows,
    join_selectivity,
    scan_output_rows,
)
from repro.cost.model import CostModel
from repro.cost.objectives import (
    ALL_OBJECTIVES,
    NUM_OBJECTIVES,
    Objective,
    objective_indices,
    parse_objective,
)
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.cost.vector import (
    approx_dominates,
    dominates,
    max_ratio,
    pareto_filter,
    project,
    respects_bounds,
    strictly_dominates,
    weighted_cost,
)

__all__ = [
    "ALL_OBJECTIVES",
    "CostModel",
    "CostParams",
    "DEFAULT_PARAMS",
    "NUM_OBJECTIVES",
    "Objective",
    "approx_dominates",
    "dominates",
    "filter_selectivity",
    "join_output_rows",
    "join_selectivity",
    "max_ratio",
    "objective_indices",
    "pareto_filter",
    "parse_objective",
    "project",
    "respects_bounds",
    "scan_output_rows",
    "strictly_dominates",
    "weighted_cost",
]
