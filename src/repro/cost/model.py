"""The nine-objective cost model (Section 4 of the paper).

The model constructs plan nodes and annotates them with full
9-dimensional cost vectors. The formulas are recursive: the cost of a
join plan is computed from the costs of its sub-plans using only the
functions **sum**, **maximum**, **minimum** and **multiplication by a
constant** — plus the tuple-loss formula ``1 - (1 - a) * (1 - b)``. This
is exactly the structural property Section 6.1 of the paper needs for
the principle of near-optimality (PONO), which the property-based tests
in ``tests/test_pono.py`` verify against this implementation.

Objective semantics (vector layout in :mod:`repro.cost.objectives`):

* ``TOTAL_TIME`` / ``STARTUP_TIME`` — Postgres-style formulas; inputs of
  hash and merge joins are generated in parallel, so elapsed time
  combines with ``max`` while the per-operator work is divided by the
  operator's DOP.
* ``IO_LOAD`` / ``CPU_LOAD`` / ``DISK_FOOTPRINT`` / ``ENERGY`` —
  accumulative (sums over the tree); CPU and energy grow with DOP due to
  coordination overhead (this is why energy is *not* perfectly
  correlated with time, as the paper stresses).
* ``CORES`` — parallel-input joins occupy the cores of both inputs
  simultaneously (sum), pipelined joins only the maximum.
* ``BUFFER_FOOTPRINT`` — peak memory: hash joins hold the whole inner in
  memory, sorts hold at most ``work_mem`` per input (spilling to disk
  instead), index-nested-loop joins hold only a probe buffer. This
  reproduces the tradeoff of Figure 3 (weighting buffer space moves
  plans from hash joins to sort-merge / index-nested-loop joins).
* ``TUPLE_LOSS`` — ``1 - (1 - a) * (1 - b)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.catalog.schema import Schema
from repro.cost import cardinality
from repro.cost.postgres_params import DEFAULT_PARAMS, CostParams
from repro.exceptions import CostModelError
from repro.plans.operators import JoinMethod, JoinSpec, ScanMethod, ScanSpec
from repro.plans.plan import JoinPlan, Plan, PlanBlock, ProbeInfo, ScanPlan
from repro.query.predicate import JoinPredicate
from repro.query.query import Query

# Vector positions (kept as module constants for hot-loop speed).
_TIME = 0
_STARTUP = 1
_IO = 2
_CPU = 3
_CORES = 4
_DISK = 5
_BUFFER = 6
_ENERGY = 7
_LOSS = 8


class CostModel:
    """Builds cost-annotated plan nodes over a schema."""

    def __init__(self, schema: Schema, params: CostParams = DEFAULT_PARAMS,
                 calibration=None):
        self.schema = schema
        self.params = params
        #: Optional data-calibrated selectivity overlay (see
        #: :mod:`repro.cost.cardinality` for the duck-typed protocol and
        #: :class:`repro.workloads.calibrate.CalibratedStatistics` for
        #: the shipped implementation). ``None`` means pure catalog
        #: estimates.
        self.calibration = calibration
        # Join-selectivity memo shared by every enumeration over this
        # cost model — the IRA re-enumerates the same splits each
        # refinement iteration and would otherwise recompute identical
        # estimates (see SelectivityCache).
        self.selectivities = cardinality.SelectivityCache(
            schema, overlay=calibration
        )

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan_plan(self, query: Query, alias: str, spec: ScanSpec) -> ScanPlan:
        """Build a cost-annotated access path for one table instance."""
        table = self.schema.table(query.table_name(alias))
        filters = query.filters_on(alias)
        if spec.method in (ScanMethod.SEQ, ScanMethod.SAMPLE):
            return self._streaming_scan(alias, table, spec, filters)
        if spec.method is ScanMethod.INDEX:
            return self._index_scan(alias, table, spec, filters)
        if spec.method is ScanMethod.INDEX_PROBE:
            raise CostModelError(
                "index probes are built via index_probe_plan(), not scan_plan()"
            )
        raise CostModelError(f"unsupported scan method: {spec.method}")

    def _streaming_scan(self, alias, table, spec, filters) -> ScanPlan:
        p = self.params
        rate = spec.sampling_rate
        pages_read = max(1.0, table.pages * rate)
        rows_scanned = table.row_count * rate
        quals = len(filters)
        local_cpu = (
            p.cpu_tuple_cost * rows_scanned
            + p.cpu_operator_cost * rows_scanned * quals
        )
        total = p.seq_page_cost * pages_read + local_cpu
        loss = 1.0 - rate
        cost = (
            total,
            0.0,
            pages_read,
            local_cpu,
            1.0,
            0.0,
            float(p.scan_buffer),
            p.energy_per_cpu_unit * local_cpu + p.energy_per_page * pages_read,
            loss,
        )
        rows = cardinality.scan_output_rows(table.row_count, rate, filters,
                                            self.calibration)
        return ScanPlan(alias, table.name, spec, rows, table.tuple_width,
                        cost, loss)

    def _index_scan(self, alias, table, spec, filters) -> ScanPlan:
        p = self.params
        index = next(
            (i for i in self.schema.indexes_on(table.name)
             if i.name == spec.index_name),
            None,
        )
        if index is None:
            raise CostModelError(
                f"no index {spec.index_name!r} on table {table.name!r}"
            )
        leading = [f for f in filters if f.column == index.leading_column]
        if not leading:
            raise CostModelError(
                f"index scan on {index.name!r} requires a filter on "
                f"{index.leading_column!r}"
            )
        index_sel = cardinality.filter_selectivity(leading, self.calibration)
        residual = [f for f in filters if f.column != index.leading_column]
        matched = table.row_count * index_sel
        heap_pages = min(float(table.pages), matched)
        leaf_pages = index.leaf_pages * index_sel
        io_pages = index.height + leaf_pages + heap_pages
        local_cpu = (
            p.cpu_index_tuple_cost * matched
            + p.cpu_tuple_cost * matched
            + p.cpu_operator_cost * matched * len(residual)
        )
        total = (
            p.random_page_cost * (index.height + heap_pages)
            + p.seq_page_cost * leaf_pages
            + local_cpu
        )
        startup = p.random_page_cost * index.height
        cost = (
            total,
            startup,
            io_pages,
            local_cpu,
            1.0,
            0.0,
            float(p.scan_buffer),
            p.energy_per_cpu_unit * local_cpu + p.energy_per_page * io_pages,
            0.0,
        )
        rows = cardinality.scan_output_rows(table.row_count, 1.0, filters,
                                            self.calibration)
        return ScanPlan(alias, table.name, spec, rows, table.tuple_width,
                        cost, 0.0)

    def index_probe_plan(
        self, query: Query, alias: str, index_name: str, join_column: str
    ) -> ScanPlan:
        """Build the parameterized inner of an index-nested-loop join.

        The node carries per-probe quantities; its standalone cost vector
        is all zeros because probe work is charged by the join operator
        (it depends on the outer cardinality).
        """
        table = self.schema.table(query.table_name(alias))
        index = self.schema.index_on_column(table.name, join_column)
        if index is None or index.name != index_name:
            raise CostModelError(
                f"no index {index_name!r} with leading column "
                f"{join_column!r} on {table.name!r}"
            )
        filters = query.filters_on(alias)
        matched_rows = table.row_count / table.n_distinct(join_column)
        heap_pages = min(float(table.pages), matched_rows)
        probe_info = ProbeInfo(
            index_height=index.height,
            matched_rows=matched_rows,
            heap_pages=heap_pages,
            residual_quals=len(filters),
        )
        spec = ScanSpec(method=ScanMethod.INDEX_PROBE, index_name=index_name)
        rows = cardinality.scan_output_rows(table.row_count, 1.0, filters,
                                            self.calibration)
        zero = (0.0,) * 9
        return ScanPlan(alias, table.name, spec, rows, table.tuple_width,
                        zero, 0.0, probe_info=probe_info)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join_plan(
        self,
        query: Query,
        spec: JoinSpec,
        left: Plan,
        right: Plan,
        predicates: tuple[JoinPredicate, ...],
        selectivity: float | None = None,
    ) -> JoinPlan:
        """Build a cost-annotated join of two sub-plans.

        ``selectivity`` may be passed when the caller has already
        estimated it (the enumerator hoists the estimate out of its
        inner loop); otherwise it is derived from the predicates.
        """
        if selectivity is None:
            selectivity = cardinality.join_selectivity(
                self.schema, query, predicates, self.calibration
            )
        out_rows = cardinality.join_output_rows(
            left.rows, right.rows, selectivity
        )
        cost = self.join_cost(spec, left, right, out_rows)
        return JoinPlan(
            spec, left, right, out_rows, left.width + right.width,
            cost, cost[_LOSS],
        )

    def join_cost(
        self, spec: JoinSpec, left: Plan, right: Plan, out_rows: float
    ) -> tuple[float, ...]:
        """Cost vector of joining ``left`` and ``right`` (no plan built).

        Hot-loop entry point: the enumerator prunes on this vector and
        only materializes a :class:`JoinPlan` for surviving candidates.
        """
        method = spec.method
        if method is JoinMethod.HASH:
            return self._hash_cost(spec, left, right, out_rows)
        if method is JoinMethod.MERGE:
            return self._merge_cost(spec, left, right, out_rows)
        if method is JoinMethod.NESTED_LOOP:
            return self._nested_loop_cost(spec, left, right, out_rows)
        if method is JoinMethod.INDEX_NESTED_LOOP:
            return self._index_nl_cost(spec, left, right, out_rows)
        raise CostModelError(f"unsupported join method: {method}")

    # -- shared helpers --------------------------------------------------
    def _accumulate(
        self,
        left: tuple[float, ...],
        right: tuple[float, ...],
        dop: int,
        local_cpu: float,
        local_io: float,
        spill_bytes: float,
    ) -> tuple[float, float, float, float, float]:
        """IO, CPU, disk, energy and loss components (common to all joins)."""
        p = self.params
        cpu_factor = 1.0 + p.parallel_cpu_overhead * (dop - 1)
        energy_factor = 1.0 + p.parallel_energy_overhead * (dop - 1)
        io = left[_IO] + right[_IO] + local_io
        cpu = left[_CPU] + right[_CPU] + local_cpu * cpu_factor
        disk = left[_DISK] + right[_DISK] + spill_bytes
        local_energy = (
            p.energy_per_cpu_unit * local_cpu + p.energy_per_page * local_io
        ) * energy_factor
        energy = left[_ENERGY] + right[_ENERGY] + local_energy
        loss = 1.0 - (1.0 - left[_LOSS]) * (1.0 - right[_LOSS])
        return io, cpu, disk, energy, loss

    def _hash_cost(self, spec, left, right, out_rows) -> tuple[float, ...]:
        p = self.params
        dop = spec.dop
        build_cpu = 2.0 * p.cpu_operator_cost * right.rows
        probe_cpu = p.cpu_operator_cost * left.rows + p.cpu_tuple_cost * out_rows
        local_cpu = build_cpu + probe_cpu
        io, cpu, disk, energy, loss = self._accumulate(
            left.cost, right.cost, dop, local_cpu, 0.0, 0.0
        )
        lc, rc = left.cost, right.cost
        time = max(lc[_TIME], rc[_TIME]) + local_cpu / dop
        startup = max(lc[_STARTUP], rc[_TIME] + build_cpu / dop)
        cores = max(lc[_CORES] + rc[_CORES], float(dop))
        # In-memory hash table over the whole inner (1.2x for buckets).
        hash_bytes = right.output_bytes * 1.2
        buffer = lc[_BUFFER] + rc[_BUFFER] + hash_bytes
        return (time, startup, io, cpu, cores, disk, buffer, energy, loss)

    def _merge_cost(self, spec, left, right, out_rows) -> tuple[float, ...]:
        p = self.params
        dop = spec.dop

        def sort_terms(child: Plan) -> tuple[float, float, float]:
            """(cpu, spill pages, spill bytes) for sorting one input."""
            rows = max(child.rows, 2.0)
            sort_cpu = 2.0 * p.cpu_operator_cost * child.rows * math.log2(rows)
            if child.output_bytes > p.work_mem:
                spill_bytes = child.output_bytes
                # External sort writes and re-reads each run once.
                spill_pages = 2.0 * spill_bytes / 8192.0
            else:
                spill_bytes = 0.0
                spill_pages = 0.0
            return sort_cpu, spill_pages, spill_bytes

        sort_cpu_l, spill_pages_l, spill_bytes_l = sort_terms(left)
        sort_cpu_r, spill_pages_r, spill_bytes_r = sort_terms(right)
        merge_cpu = (
            p.cpu_tuple_cost * (left.rows + right.rows)
            + p.cpu_tuple_cost * out_rows
        )
        local_cpu = sort_cpu_l + sort_cpu_r + merge_cpu
        local_io = spill_pages_l + spill_pages_r
        spill_bytes = spill_bytes_l + spill_bytes_r
        io, cpu, disk, energy, loss = self._accumulate(
            left.cost, right.cost, dop, local_cpu, local_io, spill_bytes
        )
        lc, rc = left.cost, right.cost
        side_l = lc[_TIME] + (sort_cpu_l + p.seq_page_cost * spill_pages_l) / dop
        side_r = rc[_TIME] + (sort_cpu_r + p.seq_page_cost * spill_pages_r) / dop
        startup = max(side_l, side_r)
        time = startup + merge_cpu / dop
        cores = max(lc[_CORES] + rc[_CORES], float(dop))
        buffer = (
            lc[_BUFFER]
            + rc[_BUFFER]
            + min(left.output_bytes, float(p.work_mem))
            + min(right.output_bytes, float(p.work_mem))
        )
        return (time, startup, io, cpu, cores, disk, buffer, energy, loss)

    def _nested_loop_cost(self, spec, left, right, out_rows) -> tuple[float, ...]:
        p = self.params
        dop = spec.dop
        mat_cpu = p.cpu_tuple_cost * right.rows
        pair_cpu = p.cpu_operator_cost * left.rows * right.rows
        local_cpu = mat_cpu + pair_cpu + p.cpu_tuple_cost * out_rows
        if right.output_bytes > p.work_mem:
            spill_bytes = right.output_bytes
            spill_pages = spill_bytes / 8192.0
            # Write the materialization once, re-read it per outer tuple.
            local_io = spill_pages * (1.0 + max(left.rows - 1.0, 0.0))
        else:
            spill_bytes = 0.0
            local_io = 0.0
        io, cpu, disk, energy, loss = self._accumulate(
            left.cost, right.cost, dop, local_cpu, local_io, spill_bytes
        )
        lc, rc = left.cost, right.cost
        time = (
            max(lc[_TIME], rc[_TIME])
            + (local_cpu + p.seq_page_cost * local_io) / dop
        )
        startup = max(lc[_STARTUP], rc[_TIME] + mat_cpu / dop)
        cores = max(lc[_CORES] + rc[_CORES], float(dop))
        buffer = (
            lc[_BUFFER]
            + rc[_BUFFER]
            + min(right.output_bytes, float(p.work_mem))
        )
        return (time, startup, io, cpu, cores, disk, buffer, energy, loss)

    def _index_nl_cost(self, spec, left, right, out_rows) -> tuple[float, ...]:
        if not isinstance(right, ScanPlan) or right.probe_info is None:
            raise CostModelError(
                "index-nested-loop join requires an index-probe inner"
            )
        p = self.params
        dop = spec.dop
        info = right.probe_info
        probes = left.rows
        probe_io = probes * (info.index_height + info.heap_pages)
        probe_cpu = probes * (
            p.cpu_index_tuple_cost * info.matched_rows
            + p.cpu_tuple_cost * info.matched_rows
            + p.cpu_operator_cost * info.matched_rows * info.residual_quals
        )
        local_cpu = probe_cpu + p.cpu_tuple_cost * out_rows
        io, cpu, disk, energy, loss = self._accumulate(
            left.cost, right.cost, dop, local_cpu, probe_io, 0.0
        )
        lc = left.cost
        time = lc[_TIME] + (p.random_page_cost * probe_io + local_cpu) / dop
        # Pipelined: the first outer tuple triggers the first probe. The
        # min() keeps startup <= total for tiny outers (the first-probe
        # charge is not divided by the DOP) and is PONO-safe.
        startup = min(
            lc[_STARTUP] + p.random_page_cost * (info.index_height + 1.0),
            time,
        )
        cores = max(lc[_CORES], float(dop))
        buffer = lc[_BUFFER] + float(p.probe_buffer)
        return (time, startup, io, cpu, cores, disk, buffer, energy, loss)

    # ------------------------------------------------------------------
    # Batched join-cost kernels (vectorized enumeration hot path)
    # ------------------------------------------------------------------
    # Each kernel mirrors its scalar counterpart above operation for
    # operation, in the same association order, using only elementwise
    # IEEE-exact numpy primitives (+, -, *, /, maximum, minimum, where).
    # This is what makes the vectorized enumerator's results bit-for-bit
    # identical to the scalar loop — do not "simplify" an expression
    # here without making the same change in the scalar formula.

    def join_cost_block(
        self,
        spec: JoinSpec,
        outer: PlanBlock,
        inner: PlanBlock,
        out_rows: np.ndarray,
    ) -> np.ndarray:
        """Cost vectors of joining every (outer, inner) plan pair.

        Batched mirror of :meth:`join_cost`: ``out_rows`` is the
        ``(n_outer, n_inner)`` output-cardinality matrix and the result
        has shape ``(n_outer, n_inner, 9)``, laid out so that
        ``result[i, j]`` equals ``join_cost(spec, outer.plans[i],
        inner.plans[j], out_rows[i, j])`` bit for bit.
        Index-nested-loop joins batch over the outer only — see
        :meth:`index_nl_cost_block`.
        """
        method = spec.method
        if method is JoinMethod.HASH:
            return self._hash_cost_block(spec, outer, inner, out_rows)
        if method is JoinMethod.MERGE:
            return self._merge_cost_block(spec, outer, inner, out_rows)
        if method is JoinMethod.NESTED_LOOP:
            return self._nested_loop_cost_block(spec, outer, inner, out_rows)
        raise CostModelError(
            f"unsupported join method for block costing: {method}"
        )

    def _accumulate_block(self, l, r, dop, local_cpu, local_io, spill_bytes):
        """Batched :meth:`_accumulate`; ``l``/``r`` broadcast over cost rows."""
        p = self.params
        cpu_factor = 1.0 + p.parallel_cpu_overhead * (dop - 1)
        energy_factor = 1.0 + p.parallel_energy_overhead * (dop - 1)
        io = l[..., _IO] + r[..., _IO] + local_io
        cpu = l[..., _CPU] + r[..., _CPU] + local_cpu * cpu_factor
        disk = l[..., _DISK] + r[..., _DISK] + spill_bytes
        local_energy = (
            p.energy_per_cpu_unit * local_cpu + p.energy_per_page * local_io
        ) * energy_factor
        energy = l[..., _ENERGY] + r[..., _ENERGY] + local_energy
        loss = 1.0 - (1.0 - l[..., _LOSS]) * (1.0 - r[..., _LOSS])
        return io, cpu, disk, energy, loss

    @staticmethod
    def _pack_block(shape, time, startup, io, cpu, cores, disk, buffer,
                    energy, loss) -> np.ndarray:
        """Assemble broadcastable components into a ``shape + (9,)`` block."""
        block = np.empty(shape + (9,))
        block[..., _TIME] = time
        block[..., _STARTUP] = startup
        block[..., _IO] = io
        block[..., _CPU] = cpu
        block[..., _CORES] = cores
        block[..., _DISK] = disk
        block[..., _BUFFER] = buffer
        block[..., _ENERGY] = energy
        block[..., _LOSS] = loss
        return block

    def _hash_cost_block(self, spec, outer, inner, out_rows) -> np.ndarray:
        p = self.params
        dop = spec.dop
        l = outer.costs[:, None, :]
        r = inner.costs[None, :, :]
        build_cpu = 2.0 * p.cpu_operator_cost * inner.rows
        probe_cpu = (
            p.cpu_operator_cost * outer.rows[:, None]
            + p.cpu_tuple_cost * out_rows
        )
        local_cpu = build_cpu[None, :] + probe_cpu
        io, cpu, disk, energy, loss = self._accumulate_block(
            l, r, dop, local_cpu, 0.0, 0.0
        )
        time = np.maximum(l[..., _TIME], r[..., _TIME]) + local_cpu / dop
        startup = np.maximum(
            l[..., _STARTUP], r[..., _TIME] + (build_cpu / dop)[None, :]
        )
        cores = np.maximum(l[..., _CORES] + r[..., _CORES], float(dop))
        hash_bytes = inner.out_bytes * 1.2
        buffer = l[..., _BUFFER] + r[..., _BUFFER] + hash_bytes[None, :]
        return self._pack_block(
            out_rows.shape, time, startup, io, cpu, cores, disk, buffer,
            energy, loss,
        )

    def _merge_cost_block(self, spec, outer, inner, out_rows) -> np.ndarray:
        p = self.params
        dop = spec.dop
        l = outer.costs[:, None, :]
        r = inner.costs[None, :, :]
        work_mem = p.work_mem

        def sort_terms(block: PlanBlock):
            """(cpu, spill pages, spill bytes) vectors for one operand.

            ``block.log2_rows`` already holds ``log2(max(rows, 2))``
            computed with the scalar formula's ``math.log2``.
            """
            sort_cpu = (
                2.0 * p.cpu_operator_cost * block.rows * block.log2_rows
            )
            spills = block.out_bytes > work_mem
            spill_bytes = np.where(spills, block.out_bytes, 0.0)
            spill_pages = np.where(
                spills, 2.0 * block.out_bytes / 8192.0, 0.0
            )
            return sort_cpu, spill_pages, spill_bytes

        sort_cpu_l, spill_pages_l, spill_bytes_l = sort_terms(outer)
        sort_cpu_r, spill_pages_r, spill_bytes_r = sort_terms(inner)
        merge_cpu = (
            p.cpu_tuple_cost * (outer.rows[:, None] + inner.rows[None, :])
            + p.cpu_tuple_cost * out_rows
        )
        local_cpu = sort_cpu_l[:, None] + sort_cpu_r[None, :] + merge_cpu
        local_io = spill_pages_l[:, None] + spill_pages_r[None, :]
        spill_bytes = spill_bytes_l[:, None] + spill_bytes_r[None, :]
        io, cpu, disk, energy, loss = self._accumulate_block(
            l, r, dop, local_cpu, local_io, spill_bytes
        )
        side_l = outer.costs[:, _TIME] + (
            sort_cpu_l + p.seq_page_cost * spill_pages_l
        ) / dop
        side_r = inner.costs[:, _TIME] + (
            sort_cpu_r + p.seq_page_cost * spill_pages_r
        ) / dop
        startup = np.maximum(side_l[:, None], side_r[None, :])
        time = startup + merge_cpu / dop
        cores = np.maximum(l[..., _CORES] + r[..., _CORES], float(dop))
        buffer = (
            l[..., _BUFFER]
            + r[..., _BUFFER]
            + np.minimum(outer.out_bytes, float(work_mem))[:, None]
            + np.minimum(inner.out_bytes, float(work_mem))[None, :]
        )
        return self._pack_block(
            out_rows.shape, time, startup, io, cpu, cores, disk, buffer,
            energy, loss,
        )

    def _nested_loop_cost_block(self, spec, outer, inner, out_rows) -> np.ndarray:
        p = self.params
        dop = spec.dop
        l = outer.costs[:, None, :]
        r = inner.costs[None, :, :]
        mat_cpu = p.cpu_tuple_cost * inner.rows
        pair_cpu = (
            (p.cpu_operator_cost * outer.rows)[:, None] * inner.rows[None, :]
        )
        local_cpu = mat_cpu[None, :] + pair_cpu + p.cpu_tuple_cost * out_rows
        spills = inner.out_bytes > p.work_mem
        spill_bytes_row = np.where(spills, inner.out_bytes, 0.0)
        spill_pages_row = np.where(spills, inner.out_bytes / 8192.0, 0.0)
        # Write the materialization once, re-read it per outer tuple.
        outer_factor = 1.0 + np.maximum(outer.rows - 1.0, 0.0)
        local_io = spill_pages_row[None, :] * outer_factor[:, None]
        io, cpu, disk, energy, loss = self._accumulate_block(
            l, r, dop, local_cpu, local_io, spill_bytes_row[None, :]
        )
        time = (
            np.maximum(l[..., _TIME], r[..., _TIME])
            + (local_cpu + p.seq_page_cost * local_io) / dop
        )
        startup = np.maximum(
            l[..., _STARTUP], r[..., _TIME] + (mat_cpu / dop)[None, :]
        )
        cores = np.maximum(l[..., _CORES] + r[..., _CORES], float(dop))
        buffer = (
            l[..., _BUFFER]
            + r[..., _BUFFER]
            + np.minimum(inner.out_bytes, float(p.work_mem))[None, :]
        )
        return self._pack_block(
            out_rows.shape, time, startup, io, cpu, cores, disk, buffer,
            energy, loss,
        )

    def index_nl_cost_block(
        self,
        spec: JoinSpec,
        outer: PlanBlock,
        probe: Plan,
        out_rows: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`_index_nl_cost` over the outer operand.

        The index-probe inner is a single fixed plan, so the candidate
        block is one-dimensional: ``out_rows`` has shape ``(n_outer,)``
        and so does the first axis of the returned ``(n_outer, 9)``
        block.
        """
        if not isinstance(probe, ScanPlan) or probe.probe_info is None:
            raise CostModelError(
                "index-nested-loop join requires an index-probe inner"
            )
        p = self.params
        dop = spec.dop
        info = probe.probe_info
        l = outer.costs
        r = np.asarray(probe.cost)
        probes = outer.rows
        probe_io = probes * (info.index_height + info.heap_pages)
        probe_cpu = probes * (
            p.cpu_index_tuple_cost * info.matched_rows
            + p.cpu_tuple_cost * info.matched_rows
            + p.cpu_operator_cost * info.matched_rows * info.residual_quals
        )
        local_cpu = probe_cpu + p.cpu_tuple_cost * out_rows
        io, cpu, disk, energy, loss = self._accumulate_block(
            l, r, dop, local_cpu, probe_io, 0.0
        )
        time = l[..., _TIME] + (
            p.random_page_cost * probe_io + local_cpu
        ) / dop
        # Pipelined first-probe startup, clamped to total (see the
        # scalar formula's PONO note).
        startup = np.minimum(
            l[..., _STARTUP]
            + p.random_page_cost * (info.index_height + 1.0),
            time,
        )
        cores = np.maximum(l[..., _CORES], float(dop))
        buffer = l[..., _BUFFER] + float(p.probe_buffer)
        return self._pack_block(
            out_rows.shape, time, startup, io, cpu, cores, disk, buffer,
            energy, loss,
        )
