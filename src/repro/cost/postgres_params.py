"""Cost-model constants, following Postgres defaults where they exist.

The time-related constants are the stock Postgres planner parameters
(``seq_page_cost`` etc.). The remaining constants parameterize the
extended objectives the paper added to the Postgres cost model: the
Flach-style energy model, parallelization overhead, and buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.table import PAGE_SIZE


@dataclass(frozen=True)
class CostParams:
    """All tunable constants of the nine-objective cost model."""

    # -- Postgres planner constants (time in abstract page-fetch units) --
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025

    #: Working memory available per sort/materialize operation (bytes).
    work_mem: int = 4 * 1024 * 1024

    #: Buffer held by a streaming scan (bytes).
    scan_buffer: int = 2 * PAGE_SIZE

    #: Buffer held by an index-nested-loop probe (bytes).
    probe_buffer: int = 4 * PAGE_SIZE

    # -- Parallelization model ------------------------------------------
    #: Extra CPU work per additional core (coordination overhead fraction).
    #: Dedicating more cores reduces time but increases total CPU and
    #: energy — the conflict Section 4 of the paper describes.
    parallel_cpu_overhead: float = 0.05

    #: Extra energy per additional core (coordination overhead fraction).
    parallel_energy_overhead: float = 0.15

    # -- Flach-style energy model ----------------------------------------
    #: Energy per unit of CPU work.
    energy_per_cpu_unit: float = 1.0

    #: Energy per page of IO.
    energy_per_page: float = 2.0

    def __post_init__(self) -> None:
        for field_name in (
            "seq_page_cost",
            "random_page_cost",
            "cpu_tuple_cost",
            "cpu_index_tuple_cost",
            "cpu_operator_cost",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be > 0")
        if self.work_mem <= 0:
            raise ValueError("work_mem must be > 0")
        if self.parallel_cpu_overhead < 0 or self.parallel_energy_overhead < 0:
            raise ValueError("parallel overheads must be >= 0")


#: Default parameter set used throughout the library.
DEFAULT_PARAMS = CostParams()
