"""Cardinality and selectivity estimation (System R style).

Estimates follow the classic textbook/System R rules a production
optimizer uses when only catalog statistics are available:

* filter predicates carry explicit selectivities (standing in for
  histogram-derived estimates);
* equality-join selectivity is ``1 / max(ndv_left, ndv_right)``;
* predicates combine under the independence assumption (product).

Every estimator accepts an optional ``overlay`` — any object with
``filter_selectivity(predicate) -> float | None`` and
``join_selectivity(predicate) -> float | None`` methods (see
:class:`repro.workloads.calibrate.CalibratedStatistics`). A non-``None``
overlay answer replaces the catalog estimate for that predicate;
``None`` falls back to the rules above, so a partial overlay degrades
gracefully.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.catalog.schema import Schema
from repro.query.predicate import FilterPredicate, JoinPredicate
from repro.query.query import Query


def filter_selectivity(
    filters: Iterable[FilterPredicate], overlay=None
) -> float:
    """Combined selectivity of filters under independence."""
    selectivity = 1.0
    for predicate in filters:
        estimate = None
        if overlay is not None:
            estimate = overlay.filter_selectivity(predicate)
        if estimate is None:
            estimate = predicate.selectivity
        selectivity *= estimate
    return selectivity


def join_predicate_selectivity(
    schema: Schema, query: Query, predicate: JoinPredicate, overlay=None
) -> float:
    """Selectivity of one equality-join predicate.

    A calibrated overlay answer wins, then the explicit value when
    given, otherwise ``1 / max(ndv_left, ndv_right)`` from catalog
    statistics.
    """
    if overlay is not None:
        estimate = overlay.join_selectivity(predicate)
        if estimate is not None:
            return estimate
    if predicate.selectivity is not None:
        return predicate.selectivity
    left_table = schema.table(query.table_name(predicate.left_alias))
    right_table = schema.table(query.table_name(predicate.right_alias))
    ndv_left = left_table.n_distinct(predicate.left_column)
    ndv_right = right_table.n_distinct(predicate.right_column)
    return 1.0 / max(ndv_left, ndv_right, 1)


def join_selectivity(
    schema: Schema,
    query: Query,
    predicates: Iterable[JoinPredicate],
    overlay=None,
) -> float:
    """Combined selectivity of a set of join predicates (independence)."""
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= join_predicate_selectivity(
            schema, query, predicate, overlay
        )
    return selectivity


class SelectivityCache:
    """Memoizes :func:`join_selectivity` per (query, predicate set).

    One dynamic-programming run estimates the selectivity of every
    top-level split it enumerates, and the IRA re-enumerates the *same*
    splits on every refinement iteration — each time recomputing
    identical estimates from the catalog. The cache lives on the
    :class:`~repro.cost.model.CostModel` (which survives across
    iterations and requests), keyed by query identity and the exact
    predicate tuple.

    Keying by ``id(query)`` avoids hashing the full query structure on
    every lookup; a strong reference to the query is held alongside so
    the id cannot be recycled while its entry is live, and an LRU bound
    of ``capacity`` distinct queries keeps a long-lived service from
    accumulating per-query maps forever. Correctness does not depend on
    the cache: every miss falls through to :func:`join_selectivity`.
    """

    __slots__ = ("schema", "capacity", "overlay", "hits", "misses",
                 "_per_query")

    def __init__(self, schema: Schema, capacity: int = 8,
                 overlay=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.schema = schema
        self.capacity = capacity
        self.overlay = overlay
        self.hits = 0
        self.misses = 0
        self._per_query: OrderedDict[
            int, tuple[Query, dict[tuple[JoinPredicate, ...], float]]
        ] = OrderedDict()

    def join_selectivity(
        self, query: Query, predicates: tuple[JoinPredicate, ...]
    ) -> float:
        """Memoized combined selectivity of ``predicates`` in ``query``."""
        key = id(query)
        entry = self._per_query.get(key)
        if entry is None or entry[0] is not query:
            entry = (query, {})
            self._per_query[key] = entry
            if len(self._per_query) > self.capacity:
                self._per_query.popitem(last=False)
        else:
            self._per_query.move_to_end(key)
        memo = entry[1]
        selectivity = memo.get(predicates)
        if selectivity is None:
            selectivity = join_selectivity(self.schema, query, predicates,
                                           self.overlay)
            memo[predicates] = selectivity
            self.misses += 1
        else:
            self.hits += 1
        return selectivity

    def clear(self) -> None:
        """Drop all memoized estimates (e.g. after statistics change)."""
        self._per_query.clear()
        self.hits = 0
        self.misses = 0


def scan_output_rows(
    row_count: int,
    sampling_rate: float,
    filters: Iterable[FilterPredicate],
    overlay=None,
) -> float:
    """Output cardinality of a base-table scan.

    Sampling thins the table uniformly, so output cardinality scales by
    the sampling rate in addition to the filter selectivity.
    """
    return row_count * sampling_rate * filter_selectivity(filters, overlay)


def join_output_rows(
    left_rows: float, right_rows: float, selectivity: float
) -> float:
    """Output cardinality of a join: ``|L| * |R| * sel``."""
    return left_rows * right_rows * selectivity
