"""Cardinality and selectivity estimation (System R style).

Estimates follow the classic textbook/System R rules a production
optimizer uses when only catalog statistics are available:

* filter predicates carry explicit selectivities (standing in for
  histogram-derived estimates);
* equality-join selectivity is ``1 / max(ndv_left, ndv_right)``;
* predicates combine under the independence assumption (product).
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Schema
from repro.query.predicate import FilterPredicate, JoinPredicate
from repro.query.query import Query


def filter_selectivity(filters: Iterable[FilterPredicate]) -> float:
    """Combined selectivity of filters under independence."""
    selectivity = 1.0
    for predicate in filters:
        selectivity *= predicate.selectivity
    return selectivity


def join_predicate_selectivity(
    schema: Schema, query: Query, predicate: JoinPredicate
) -> float:
    """Selectivity of one equality-join predicate.

    Uses the explicit value when given, otherwise
    ``1 / max(ndv_left, ndv_right)`` from catalog statistics.
    """
    if predicate.selectivity is not None:
        return predicate.selectivity
    left_table = schema.table(query.table_name(predicate.left_alias))
    right_table = schema.table(query.table_name(predicate.right_alias))
    ndv_left = left_table.n_distinct(predicate.left_column)
    ndv_right = right_table.n_distinct(predicate.right_column)
    return 1.0 / max(ndv_left, ndv_right, 1)


def join_selectivity(
    schema: Schema, query: Query, predicates: Iterable[JoinPredicate]
) -> float:
    """Combined selectivity of a set of join predicates (independence)."""
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= join_predicate_selectivity(schema, query, predicate)
    return selectivity


def scan_output_rows(
    row_count: int, sampling_rate: float, filters: Iterable[FilterPredicate]
) -> float:
    """Output cardinality of a base-table scan.

    Sampling thins the table uniformly, so output cardinality scales by
    the sampling rate in addition to the filter selectivity.
    """
    return row_count * sampling_rate * filter_selectivity(filters)


def join_output_rows(
    left_rows: float, right_rows: float, selectivity: float
) -> float:
    """Output cardinality of a join: ``|L| * |R| * sel``."""
    return left_rows * right_rows * selectivity
