"""Cost-vector operations: dominance, approximate dominance, weighted cost.

Cost vectors are plain tuples of non-negative floats. In hot optimizer
loops the functions below are called millions of times, so they are kept
as tight, allocation-free loops over tuples rather than wrapped in a
class or delegated to numpy (per-call numpy overhead dominates for the
short vectors used here, at most nine entries).

Definitions follow Section 3 of the paper:

* ``c1`` **dominates** ``c2`` iff ``c1[o] <= c2[o]`` for every objective.
* ``c1`` **strictly dominates** ``c2`` iff it dominates and ``c1 != c2``.
* ``c1`` **approximately dominates** ``c2`` **with precision alpha** iff
  ``c1[o] <= alpha * c2[o]`` for every objective.
"""

from __future__ import annotations

from typing import Iterable, Sequence

CostTuple = tuple[float, ...]


def dominates(c1: Sequence[float], c2: Sequence[float]) -> bool:
    """Whether ``c1`` dominates ``c2`` (lower or equal in every objective)."""
    for a, b in zip(c1, c2):
        if a > b:
            return False
    return True


def strictly_dominates(c1: Sequence[float], c2: Sequence[float]) -> bool:
    """Whether ``c1`` dominates ``c2`` and the vectors differ."""
    strict = False
    for a, b in zip(c1, c2):
        if a > b:
            return False
        if a < b:
            strict = True
    return strict


def approx_dominates(
    c1: Sequence[float], c2: Sequence[float], alpha: float
) -> bool:
    """Whether ``c1`` approximately dominates ``c2`` with precision ``alpha``.

    With ``alpha == 1`` this degenerates to exact dominance.
    """
    for a, b in zip(c1, c2):
        if a > b * alpha:
            return False
    return True


def weighted_cost(cost: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted sum ``C_W(c) = sum_o c[o] * W[o]``."""
    total = 0.0
    for c, w in zip(cost, weights):
        total += c * w
    return total


def respects_bounds(cost: Sequence[float], bounds: Sequence[float]) -> bool:
    """Whether ``cost[o] <= bounds[o]`` for every objective."""
    for c, b in zip(cost, bounds):
        if c > b:
            return False
    return True


def respects_relaxed_bounds(
    cost: Sequence[float], bounds: Sequence[float], alpha: float
) -> bool:
    """Whether ``cost[o] <= alpha * bounds[o]`` for every objective.

    Used by the IRA's stopping condition (bounds relaxed by factor alpha).
    ``inf * alpha`` stays ``inf``, so unbounded objectives never exclude.
    """
    for c, b in zip(cost, bounds):
        if c > b * alpha:
            return False
    return True


def project(cost: Sequence[float], indices: Sequence[int]) -> CostTuple:
    """Project a full cost tuple onto the selected objective positions."""
    return tuple(cost[i] for i in indices)


def pareto_filter(vectors: Iterable[Sequence[float]]) -> list[CostTuple]:
    """Return the Pareto frontier of ``vectors`` (duplicates collapsed).

    A vector is kept iff no other vector strictly dominates it. Of
    cost-equivalent vectors one representative is kept. Intended for
    frontier dumps and reporting, not for hot optimizer loops (those
    maintain frontiers incrementally via :mod:`repro.core.pruning`) —
    but full-frontier dumps do get large, so this is a sort-based
    sweep rather than the naive all-pairs scan: after deduplicating
    and sorting lexicographically, any dominator of a vector precedes
    it in sort order (``u`` strictly dominates ``v`` implies
    ``u <= v`` elementwise with ``u != v``, hence ``u`` sorts first)
    and is itself undominated (dominance is transitive), so each
    candidate only needs to be checked against the frontier collected
    so far. That is ``O(n log n + n * f)`` for a frontier of size
    ``f`` — linearithmic when few vectors survive — versus the naive
    ``O(n^2)`` always.
    """
    unique = sorted({tuple(float(x) for x in v) for v in vectors})
    frontier: list[CostTuple] = []
    for candidate in unique:
        # Distinct + sorted means any dominating kept vector differs
        # from the candidate, so plain dominance is strict here.
        if not any(dominates(kept, candidate) for kept in frontier):
            frontier.append(candidate)
    return frontier


def max_ratio(c1: Sequence[float], c2: Sequence[float]) -> float:
    """Smallest alpha such that ``c1`` approximately dominates ``c2``.

    A zero entry of ``c2`` can only be covered by a zero entry of ``c1``
    (consistent with :func:`approx_dominates` for every finite alpha);
    otherwise the result is infinity.
    """
    worst = 1.0
    for a, b in zip(c1, c2):
        if b == 0.0:
            if a > 0.0:
                return float("inf")
            continue
        ratio = a / b
        if ratio > worst:
            worst = ratio
    return worst
