"""The nine cost objectives from the paper (Section 4).

Every plan is annotated with a 9-dimensional cost vector; an optimization
run selects a subset of objectives and works on the projected vectors.
The vector layout is fixed: index ``obj.index`` of a full cost tuple holds
the cost for objective ``obj``.

The objectives and their combination semantics follow Section 4 of the
paper: total/startup time use Postgres-style formulas, the five resource
objectives (IO, CPU, cores, disk, buffer) enable higher concurrency when
minimized, energy follows Flach-style formulas (not always correlated with
time because of parallelization overhead), and tuple loss follows
``1 - (1 - a) * (1 - b)``.
"""

from __future__ import annotations

import enum
from typing import Sequence


class Objective(enum.Enum):
    """One of the nine implemented cost objectives.

    The enum value is the objective's fixed position in full cost tuples.
    """

    TOTAL_TIME = 0
    STARTUP_TIME = 1
    IO_LOAD = 2
    CPU_LOAD = 3
    CORES = 4
    DISK_FOOTPRINT = 5
    BUFFER_FOOTPRINT = 6
    ENERGY = 7
    TUPLE_LOSS = 8

    @property
    def index(self) -> int:
        """Position of this objective in a full cost tuple."""
        return self.value

    @property
    def unit(self) -> str:
        """Human-readable unit of the objective's cost values."""
        return _UNITS[self]

    @property
    def bounded_domain(self) -> tuple[float, float] | None:
        """``(lo, hi)`` if the objective has an a-priori bounded domain.

        Only tuple loss is a-priori bounded (to ``[0, 1]``); the paper's
        bound generator draws bounds for such objectives uniformly from
        the domain instead of relative to the per-objective optimum.
        """
        if self is Objective.TUPLE_LOSS:
            return (0.0, 1.0)
        return None

    @property
    def description(self) -> str:
        """One-line description of the objective."""
        return _DESCRIPTIONS[self]


_UNITS = {
    Objective.TOTAL_TIME: "pg-cost-units",
    Objective.STARTUP_TIME: "pg-cost-units",
    Objective.IO_LOAD: "pages",
    Objective.CPU_LOAD: "pg-cpu-units",
    Objective.CORES: "cores",
    Objective.DISK_FOOTPRINT: "bytes",
    Objective.BUFFER_FOOTPRINT: "bytes",
    Objective.ENERGY: "energy-units",
    Objective.TUPLE_LOSS: "fraction",
}

_DESCRIPTIONS = {
    Objective.TOTAL_TIME: "time until all result tuples are produced",
    Objective.STARTUP_TIME: "time until the first result tuple is produced",
    Objective.IO_LOAD: "number of page reads/writes issued by the plan",
    Objective.CPU_LOAD: "accumulated CPU work over all cores",
    Objective.CORES: "number of cores the plan occupies",
    Objective.DISK_FOOTPRINT: "bytes of temporary disk space (spills)",
    Objective.BUFFER_FOOTPRINT: "peak buffer memory held by the plan",
    Objective.ENERGY: "energy consumption (Flach-style model)",
    Objective.TUPLE_LOSS: "expected fraction of result tuples lost to sampling",
}

#: All nine objectives in vector order.
ALL_OBJECTIVES: tuple[Objective, ...] = tuple(
    sorted(Objective, key=lambda o: o.index)
)

#: Number of implemented objectives.
NUM_OBJECTIVES = len(ALL_OBJECTIVES)


def objective_indices(objectives: Sequence[Objective]) -> tuple[int, ...]:
    """Vector positions for a (duplicate-free) objective selection."""
    seen: set[Objective] = set()
    indices: list[int] = []
    for objective in objectives:
        if objective in seen:
            raise ValueError(f"duplicate objective: {objective}")
        seen.add(objective)
        indices.append(objective.index)
    return tuple(indices)


def parse_objective(name: str) -> Objective:
    """Resolve an objective from its enum name (case-insensitive)."""
    try:
        return Objective[name.upper()]
    except KeyError:
        valid = ", ".join(o.name.lower() for o in ALL_OBJECTIVES)
        raise ValueError(f"unknown objective {name!r}; expected one of: {valid}")
