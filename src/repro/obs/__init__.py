"""Observability: span tracing, phase profiling, Prometheus exposition.

The package is dependency-free and inert by default — nothing traces
until a :class:`~repro.obs.trace.Tracer` is activated for the current
context, and :func:`~repro.obs.prom.render_prometheus` is a pure
function over the metrics snapshots the service/serving layers already
produce.
"""

from repro.obs.prom import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prom import render_prometheus
from repro.obs.trace import (
    Span,
    SpanHandle,
    TraceContext,
    Tracer,
    active_tracer,
    current_context,
    format_trace_summaries,
    read_spans_jsonl,
    spans_to_chrome_trace,
    summarize_spans,
    write_spans_jsonl,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "Span",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "active_tracer",
    "current_context",
    "format_trace_summaries",
    "read_spans_jsonl",
    "spans_to_chrome_trace",
    "summarize_spans",
    "write_spans_jsonl",
]
