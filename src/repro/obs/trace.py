"""Contextvar-propagated span tracing for the serving → service → DP stack.

The runtime analogue of provenance traces: every request can record
*where its budget went* — server parse, admission queue wait, coalesce
follower wait, plan-cache lookup, the algorithm run, and per-DP-level
enumeration — as a tree of :class:`Span` records that survives thread
hops (contextvars) and process hops (spans pickle; a
:class:`TraceContext` travels with the work item and the worker's spans
ship back to be :meth:`~Tracer.ingest`-ed into the parent trace).

Design constraints, in order:

1. **No-op by default.** Nothing traces unless a :class:`Tracer` is
   activated for the current context. Instrumented call sites do
   ``tracer = active_tracer()`` (one contextvar read) and skip all span
   work when it returns ``None`` — the disabled path stays off the
   profile (guarded by ``benchmarks/test_tracing_overhead.py``).
2. **Timestamps are wall-clock epoch seconds** so spans recorded in
   worker processes align with the parent's on one timeline without
   cross-process clock translation.
3. **Exports are boring formats**: JSON-lines (one span per line, the
   ``repro serve --trace-dir`` sink, summarized by ``repro trace``) and
   Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``).

Span parenting uses one process-wide contextvar holding the current
:class:`TraceContext`; ``asyncio`` tasks inherit a copy at creation, so
a detached leader task's spans parent correctly to the request that
spawned it, and executor threads re-establish the chain explicitly with
:meth:`Tracer.adopt`.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

#: The tracer instrumented code reports to; ``None`` disables tracing.
_ACTIVE: ContextVar["Tracer | None"] = ContextVar(
    "repro_obs_active_tracer", default=None
)

#: The (trace_id, span_id) new spans parent to.
_CURRENT: ContextVar["TraceContext | None"] = ContextVar(
    "repro_obs_current_span", default=None
)


def active_tracer() -> "Tracer | None":
    """The tracer active in this context, or ``None`` (tracing off)."""
    return _ACTIVE.get()


def current_context() -> "TraceContext | None":
    """Propagation handle for the current span (picklable), if any."""
    return _CURRENT.get()


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Where new spans attach: a (trace, parent span) pair.

    Small, immutable and picklable by design — this is what travels
    inside work items shipped to worker processes so the worker's spans
    join the parent's trace.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``start_s``/``end_s`` are wall-clock epoch seconds (see module
    docstring); ``attrs`` carries JSON-serializable annotations only.
    Spans pickle (worker → parent shipping) and round-trip through
    :meth:`to_dict`/:meth:`from_dict` (JSONL files).
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    category: str
    start_s: float
    end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    thread: str = ""
    process: str = ""

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0 while still open)."""
        if self.end_s is None:
            return 0.0
        return (self.end_s - self.start_s) * 1000.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": self.attrs,
            "thread": self.thread,
            "process": self.process,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            category=payload.get("category", ""),
            start_s=float(payload["start_s"]),
            end_s=(
                None if payload.get("end_s") is None
                else float(payload["end_s"])
            ),
            attrs=dict(payload.get("attrs", {})),
            thread=payload.get("thread", ""),
            process=payload.get("process", ""),
        )


class SpanHandle:
    """A started (or startable) span: context manager or manual control.

    ``with tracer.span("parse"):`` for lexically scoped phases;
    ``handle = tracer.begin("queue"); ...; handle.finish()`` when the
    span brackets an ``await`` that no ``with`` block can wrap cleanly.
    ``finish`` is idempotent — double-finishing (e.g. from a ``finally``
    after an error path already closed the span) records nothing twice.
    """

    __slots__ = ("tracer", "span", "_token", "_previous", "_finished")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span
        self._token = None
        self._previous: TraceContext | None = None
        self._finished = False

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach (or overwrite) annotation attributes."""
        self.span.attrs.update(attrs)
        return self

    @property
    def context(self) -> TraceContext:
        """Propagation handle pointing at this span."""
        return TraceContext(self.span.trace_id, self.span.span_id)

    # ------------------------------------------------------------------
    def start(self) -> "SpanHandle":
        span = self.span
        parent = _CURRENT.get()
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        span.start_s = time.time()
        span.thread = threading.current_thread().name
        import multiprocessing

        span.process = multiprocessing.current_process().name
        self._previous = parent
        self._token = _CURRENT.set(self.context)
        return self

    def finish(self) -> Span:
        if self._finished:
            return self.span
        self._finished = True
        self.span.end_s = time.time()
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                # Finished in a different context than it started in
                # (cross-task cleanup); restore the remembered parent.
                _CURRENT.set(self._previous)
            self._token = None
        self.tracer._append(self.span)
        return self.span

    def __enter__(self) -> "SpanHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.finish()


class Tracer:
    """Thread-safe collector of finished spans for one trace sink.

    A tracer does nothing until it is the active tracer of the current
    context (:meth:`activate`) — instrumented code reaches it through
    :func:`active_tracer`, never through globals, so concurrent servers
    and tests can each run their own tracer without interference.
    """

    def __init__(self) -> None:
        self._finished: list[Span] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "", **attrs: Any) -> SpanHandle:
        """A not-yet-started span handle (start via ``with`` or ``.start()``)."""
        span = Span(
            trace_id=_new_id(),
            span_id=_new_id(),
            parent_id=None,
            name=name,
            category=category,
            start_s=0.0,
            attrs=dict(attrs),
        )
        return SpanHandle(self, span)

    def begin(self, name: str, category: str = "", **attrs: Any) -> SpanHandle:
        """Create *and start* a span (manual ``finish()`` control)."""
        return self.span(name, category, **attrs).start()

    # ------------------------------------------------------------------
    # Context plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def activate(self):
        """Make this the active tracer for the current context."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    @contextmanager
    def adopt(self, context: TraceContext | None):
        """Parent subsequent spans under a foreign context.

        The hop mechanism: an executor thread (or a worker process)
        re-establishes the request's span chain by adopting the
        :class:`TraceContext` captured where the work was submitted.
        ``None`` adopts nothing (spans start fresh traces).
        """
        if context is None:
            yield
            return
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _append(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def ingest(self, spans: Iterable[Span]) -> None:
        """Adopt foreign (e.g. worker-process) finished spans."""
        spans = list(spans)
        if spans:
            with self._lock:
                self._finished.extend(spans)

    def drain(self) -> list[Span]:
        """Remove and return all finished spans collected so far."""
        with self._lock:
            spans = self._finished
            self._finished = []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


# ----------------------------------------------------------------------
# Export: JSONL and Chrome trace-event JSON
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One compact JSON object per line (the ``--trace-dir`` format)."""
    return "\n".join(
        json.dumps(span.to_dict(), separators=(",", ":")) for span in spans
    )


def write_spans_jsonl(path, spans: Sequence[Span]) -> None:
    """Append spans to a JSONL trace file (creates it if missing)."""
    if not spans:
        return
    with open(path, "a", encoding="utf-8") as sink:
        sink.write(spans_to_jsonl(spans) + "\n")


def read_spans_jsonl(path) -> list[Span]:
    """Load every span from a JSONL trace file (blank lines skipped)."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as source:
        for line in source:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def spans_to_chrome_trace(spans: Sequence[Span]) -> dict[str, Any]:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable).

    Complete events (``ph: "X"``) with microsecond timestamps, one
    synthetic integer pid/tid per distinct (process, thread) name pair,
    plus metadata events so Perfetto shows the real names.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        pid = pids.setdefault(span.process or "main", len(pids) + 1)
        tid_key = (span.process or "main", span.thread or "main")
        tid = tids.setdefault(tid_key, len(tids) + 1)
        args = dict(span.attrs)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": max(0.0, ((span.end_s or span.start_s)
                                 - span.start_s) * 1e6),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for process, pid in pids.items():
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": process}}
        )
    for (process, thread), tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pids[process],
             "tid": tid, "args": {"name": thread}}
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Summarization (the ``repro trace`` subcommand)
# ----------------------------------------------------------------------
#: Phase keys in report order; ``enumerate`` is derived as the
#: algorithm span's self time (duration minus kernel/prune/materialize)
#: and ``dispatch`` is the worker-pool hop's self time (IPC overhead of
#: the process backend: pickling, pool queueing, result shipping).
PHASE_ORDER = (
    "parse",
    "queue",
    "coalesce",
    "cache",
    "dispatch",
    "enumerate",
    "kernel",
    "prune",
    "materialize",
    "other",
)

#: Span categories attributed to a same-named phase by *self time*.
_DIRECT_CATEGORIES = {
    "parse": "parse",
    "queue": "queue",
    "coalesce": "coalesce",
    "cache": "cache",
    "dispatch": "dispatch",
}

#: Categories that participate in self-time accounting: a counted
#: span's phase contribution is its duration minus the durations of
#: counted spans directly nested in it, so overlapping layers (e.g. a
#: dispatch span enclosing the worker's algorithm span) never double
#: count.
_COUNTED_CATEGORIES = frozenset(_DIRECT_CATEGORIES) | {"algorithm"}

#: Recovery-event span categories (see :mod:`repro.resilience`). They
#: are deliberately *not* counted categories: a retry's backoff sleep
#: or a pool respawn happens inside the dispatch span, and the phase
#: breakdown should keep reconstructing e2e latency exactly as before —
#: resilience spans surface as per-trace event counts instead.
RESILIENCE_CATEGORIES = frozenset(
    {"retry", "respawn", "breaker_open", "degraded"}
)


@dataclass
class RequestTraceSummary:
    """Per-request phase breakdown reconstructed from one trace tree."""

    trace_id: str
    start_s: float
    total_ms: float
    phases: dict[str, float]
    attrs: dict[str, Any]
    processes: tuple[str, ...]
    #: Recovery events observed in this trace, keyed by resilience
    #: category (``retry``/``respawn``/``breaker_open``/``degraded``);
    #: empty for the (typical) fault-free request.
    events: dict[str, int] = field(default_factory=dict)

    @property
    def phase_sum_ms(self) -> float:
        """Sum of the named phases (excluding the ``other`` residue)."""
        return sum(
            ms for phase, ms in self.phases.items() if phase != "other"
        )


def summarize_spans(spans: Sequence[Span]) -> list[RequestTraceSummary]:
    """Group spans by trace and reduce each tree to a phase breakdown.

    Phase accounting is designed to be *disjoint*: every counted span
    contributes its *self time* — its duration minus the durations of
    counted spans directly nested under it — so layered spans (a
    ``dispatch`` span enclosing the worker's ``cache`` and
    ``algorithm`` spans, say) never double count. Direct categories
    (parse/queue/coalesce/cache/dispatch) fold into same-named phases;
    an algorithm span's self time is split into kernel/prune/materialize
    (from its phase attributes) plus an ``enumerate`` remainder; and
    whatever the root span spent outside all counted spans lands in
    ``other`` — so the named phases plus ``other`` reconstruct the
    end-to-end latency.
    """
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    summaries: list[RequestTraceSummary] = []
    for trace_id, members in by_trace.items():
        ids = {span.span_id for span in members}
        by_id = {span.span_id: span for span in members}
        roots = [
            span for span in members
            if span.parent_id is None or span.parent_id not in ids
        ]
        root = min(roots, key=lambda span: span.start_s) if roots else None
        if root is None:  # pragma: no cover - empty trace group
            continue
        counted = [
            span for span in members
            if span.category in _COUNTED_CATEGORIES
        ]
        # Attribute each counted span's duration to its nearest counted
        # ancestor (for self-time subtraction) or, lacking one, to the
        # trace's top level (which bounds ``other``).
        nested_ms = {span.span_id: 0.0 for span in counted}
        top_level_ms = 0.0
        for span in counted:
            parent_id = span.parent_id
            while parent_id is not None and parent_id not in nested_ms:
                parent = by_id.get(parent_id)
                parent_id = parent.parent_id if parent is not None else None
            if parent_id is not None:
                nested_ms[parent_id] += span.duration_ms
            else:
                top_level_ms += span.duration_ms
        phases = {phase: 0.0 for phase in PHASE_ORDER}
        for span in counted:
            self_ms = max(0.0, span.duration_ms - nested_ms[span.span_id])
            direct = _DIRECT_CATEGORIES.get(span.category)
            if direct is not None:
                phases[direct] += self_ms
            else:  # algorithm
                kernel = float(span.attrs.get("kernel", 0.0))
                prune = float(span.attrs.get("prune", 0.0))
                materialize = float(span.attrs.get("materialize", 0.0))
                phases["kernel"] += kernel
                phases["prune"] += prune
                phases["materialize"] += materialize
                phases["enumerate"] += max(
                    0.0, self_ms - kernel - prune - materialize
                )
        total_ms = root.duration_ms
        phases["other"] = max(0.0, total_ms - top_level_ms)
        events: dict[str, int] = {}
        for span in members:
            if span.category in RESILIENCE_CATEGORIES:
                events[span.category] = events.get(span.category, 0) + 1
        summaries.append(
            RequestTraceSummary(
                trace_id=trace_id,
                start_s=root.start_s,
                total_ms=total_ms,
                phases=phases,
                attrs=dict(root.attrs),
                processes=tuple(sorted({
                    span.process for span in members if span.process
                })),
                events=events,
            )
        )
    summaries.sort(key=lambda summary: summary.start_s)
    return summaries


def format_trace_summaries(summaries: Sequence[RequestTraceSummary]) -> str:
    """Human-readable per-request phase table (``repro trace`` output)."""
    if not summaries:
        return "no request traces found"
    lines: list[str] = []
    for summary in summaries:
        label = summary.attrs.get("query") or summary.attrs.get(
            "fingerprint", ""
        )
        code = summary.attrs.get("code", "")
        coalesced = " coalesced" if summary.attrs.get("coalesced") else ""
        lines.append(
            f"trace {summary.trace_id}  {label}  code={code}{coalesced}  "
            f"e2e={summary.total_ms:.1f}ms  "
            f"workers={','.join(summary.processes) or '-'}"
        )
        for phase in PHASE_ORDER:
            ms = summary.phases.get(phase, 0.0)
            share = ms / summary.total_ms if summary.total_ms else 0.0
            lines.append(f"  {phase:<12} {ms:9.2f} ms  {share:6.1%}")
        sum_ms = summary.phase_sum_ms
        share = sum_ms / summary.total_ms if summary.total_ms else 0.0
        lines.append(
            f"  {'phase sum':<12} {sum_ms:9.2f} ms  {share:6.1%} of e2e"
        )
        if summary.events:
            counts = " ".join(
                f"{category}={summary.events[category]}"
                for category in sorted(summary.events)
            )
            lines.append(f"  {'recovery':<12} {counts}")
        lines.append("")
    return "\n".join(lines).rstrip()
