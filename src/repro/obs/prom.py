"""Prometheus text-exposition rendering of the combined metrics snapshot.

Turns the nested JSON snapshot the server already exposes
(``{"serving": ..., "admission": ..., "coalescer": ..., "service": ...}``)
into the Prometheus text format 0.0.4 that a stock scrape job can
ingest — no client library, no registry, just a pure function over the
snapshot dict. The JSON endpoint stays the default; the server selects
this renderer through content negotiation (``Accept: text/plain`` or
``application/openmetrics-text`` on ``GET /metrics``).

Missing snapshot sections render as absent series rather than raising,
so the same function serves an embedded :class:`OptimizerService`
(service-only snapshot) and a full front end.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Phase keys always emitted by ``repro_phase_ms_total`` (0.0 when a
#: phase never ran) so dashboards can rely on the series existing.
CANONICAL_PHASES = ("enumerate", "kernel", "prune", "materialize")

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Writer:
    """Accumulates exposition lines, one # HELP/# TYPE header per metric."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._declared:
            self._declared.add(name)
            self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        value: Any,
        labels: Mapping[str, str] | None = None,
        suffix: str = "",
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in labels.items()
            )
            self._lines.append(
                f"{name}{suffix}{{{rendered}}} {_format_value(value)}"
            )
        else:
            self._lines.append(f"{name}{suffix} {_format_value(value)}")

    def metric(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.declare(name, kind, help_text)
        self.sample(name, value, labels)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _render_latency(writer: _Writer, latency: Mapping[str, Any]) -> None:
    name = "repro_serving_latency_ms"
    writer.declare(
        name, "summary",
        "End-to-end request latency from first byte to response.",
    )
    for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"),
                          ("0.99", "p99_ms")):
        writer.sample(name, latency.get(key, 0.0), {"quantile": quantile})
    count = float(latency.get("count", 0.0))
    writer.sample(name, count, suffix="_count")
    writer.sample(name, count * float(latency.get("mean_ms", 0.0)),
                  suffix="_sum")
    writer.metric(
        "repro_serving_latency_ms_max", "gauge",
        "Maximum observed end-to-end request latency.",
        latency.get("max_ms", 0.0),
    )


def _render_serving(writer: _Writer, serving: Mapping[str, Any]) -> None:
    writer.metric(
        "repro_serving_connections_total", "counter",
        "TCP connections accepted.", serving.get("connections", 0),
    )
    writer.metric(
        "repro_serving_requests_total", "counter",
        "HTTP requests parsed.", serving.get("requests", 0),
    )
    responses = serving.get("responses_by_code", {}) or {}
    writer.declare(
        "repro_serving_responses_total", "counter",
        "Optimize responses by envelope code.",
    )
    for code, count in sorted(responses.items()):
        writer.sample(
            "repro_serving_responses_total", count, {"code": code}
        )
    writer.metric(
        "repro_serving_coalesce_hits_total", "counter",
        "Requests served by attaching to an in-flight twin.",
        serving.get("coalesce_hits", 0),
    )
    writer.metric(
        "repro_serving_coalesce_leaders_total", "counter",
        "Requests that became coalescing leaders.",
        serving.get("coalesce_leaders", 0),
    )
    writer.metric(
        "repro_serving_sheds_total", "counter",
        "Requests refused by admission control.",
        serving.get("sheds", 0),
    )
    writer.metric(
        "repro_serving_deadline_sheds_total", "counter",
        "Requests shed because their budget expired while queueing.",
        serving.get("deadline_sheds", 0),
    )
    writer.metric(
        "repro_serving_protocol_errors_total", "counter",
        "Malformed HTTP requests.", serving.get("protocol_errors", 0),
    )
    writer.metric(
        "repro_serving_drain_rejects_total", "counter",
        "Optimize requests refused while the server was draining.",
        serving.get("drain_rejects", 0),
    )
    writer.metric(
        "repro_serving_drops_total", "counter",
        "Responses dropped by the chaos harness (tests/CI only).",
        serving.get("drops", 0),
    )
    latency = serving.get("latency")
    if isinstance(latency, Mapping):
        _render_latency(writer, latency)


def _render_admission(writer: _Writer, admission: Mapping[str, Any]) -> None:
    gauges = (
        ("running", "repro_admission_running",
         "Requests currently holding an execution slot."),
        ("queue_depth", "repro_admission_queue_depth",
         "Admitted requests waiting for a slot."),
        ("peak_queue_depth", "repro_admission_peak_queue_depth",
         "Peak admission backlog observed."),
        ("max_in_flight", "repro_admission_max_in_flight",
         "Configured concurrent-optimization cap."),
        ("max_queue_depth", "repro_admission_max_queue_depth",
         "Configured admission queue capacity."),
    )
    for key, name, help_text in gauges:
        writer.metric(name, "gauge", help_text, admission.get(key, 0))
    writer.metric(
        "repro_admission_admitted_total", "counter",
        "Requests admitted past the queue limit.",
        admission.get("admitted", 0),
    )
    writer.metric(
        "repro_admission_shed_total", "counter",
        "Requests refused at admission.", admission.get("shed", 0),
    )


def _render_coalescer(writer: _Writer, coalescer: Mapping[str, Any]) -> None:
    writer.metric(
        "repro_coalescer_in_flight", "gauge",
        "Distinct fingerprints currently being optimized.",
        coalescer.get("in_flight", 0),
    )
    writer.metric(
        "repro_coalescer_leaders_total", "counter",
        "Coalescing groups led.", coalescer.get("leaders", 0),
    )
    writer.metric(
        "repro_coalescer_followers_total", "counter",
        "Requests that followed an in-flight leader.",
        coalescer.get("followers", 0),
    )


def _render_service(writer: _Writer, service: Mapping[str, Any]) -> None:
    counters = (
        ("requests", "repro_service_requests_total",
         "Optimization requests handled by the service."),
        ("cache_hits", "repro_service_cache_hits_total",
         "Plan-cache hits."),
        ("cache_misses", "repro_service_cache_misses_total",
         "Plan-cache misses (optimizations executed)."),
        ("timeouts", "repro_service_timeouts_total",
         "Optimizations that hit their per-run timeout."),
        ("deadline_hits", "repro_service_deadline_hits_total",
         "Requests whose end-to-end deadline intervened."),
        ("coalesce_hits", "repro_service_coalesce_hits_total",
         "Requests served by awaiting an in-flight twin."),
        ("sheds", "repro_service_sheds_total",
         "Requests refused by serving admission control."),
        ("worker_failures", "repro_service_worker_failures_total",
         "Infrastructure faults observed on the process backend."),
        ("respawns", "repro_service_respawns_total",
         "Worker-pool rebuilds after worker death or hang."),
        ("retries", "repro_service_retries_total",
         "Dispatch retries (pool re-dispatches and backoff retries)."),
        ("breaker_trips", "repro_service_breaker_trips_total",
         "Circuit-breaker trips down the backend degradation ladder."),
        ("breaker_recoveries", "repro_service_breaker_recoveries_total",
         "Circuit-breaker recoveries via half-open probes."),
        ("degraded", "repro_service_degraded_total",
         "Requests answered by the heuristic fallback plan."),
    )
    for key, name, help_text in counters:
        writer.metric(name, "counter", help_text, service.get(key, 0))
    writer.metric(
        "repro_service_cache_hit_rate", "gauge",
        "Plan-cache hit rate over all requests.",
        service.get("hit_rate", 0.0),
    )
    writer.metric(
        "repro_service_optimization_ms_total", "counter",
        "Cumulative optimization wall time (cache misses only).",
        service.get("total_optimization_ms", 0.0),
    )
    by_algorithm = service.get("by_algorithm", {}) or {}
    writer.declare(
        "repro_service_algorithm_requests_total", "counter",
        "Executed (non-cached) requests per algorithm.",
    )
    for algorithm, count in sorted(by_algorithm.items()):
        writer.sample(
            "repro_service_algorithm_requests_total", count,
            {"algorithm": algorithm},
        )
    by_worker = service.get("by_worker", {}) or {}
    writer.declare(
        "repro_service_worker_requests_total", "counter",
        "Requests executed per worker process.",
    )
    for worker, count in sorted(by_worker.items()):
        writer.sample(
            "repro_service_worker_requests_total", count,
            {"worker": worker},
        )
    phase_ms = service.get("phase_ms", {}) or {}
    writer.declare(
        "repro_phase_ms_total", "counter",
        "Cumulative optimizer time per phase "
        "(enumerate/kernel/prune/materialize).",
    )
    for phase in CANONICAL_PHASES:
        writer.sample(
            "repro_phase_ms_total", float(phase_ms.get(phase, 0.0)),
            {"phase": phase},
        )
    for phase, value in sorted(phase_ms.items()):
        if phase not in CANONICAL_PHASES:
            writer.sample(
                "repro_phase_ms_total", float(value), {"phase": phase}
            )


#: Breaker states mapped to the ``repro_breaker_state`` gauge value.
_BREAKER_STATES = {"closed": 0, "open": 1, "half_open": 2}


def _render_resilience(
    writer: _Writer, resilience: Mapping[str, Any]
) -> None:
    breaker = resilience.get("breaker")
    if isinstance(breaker, Mapping):
        writer.metric(
            "repro_breaker_state", "gauge",
            "Circuit-breaker state (0=closed, 1=open, 2=half_open).",
            _BREAKER_STATES.get(str(breaker.get("state")), 0),
        )
        writer.metric(
            "repro_breaker_level", "gauge",
            "Current rung on the backend degradation ladder "
            "(0=processes).",
            breaker.get("level", 0),
        )
    pool = resilience.get("pool")
    if isinstance(pool, Mapping):
        writer.metric(
            "repro_pool_generation", "gauge",
            "Worker-pool executor generation (bumps on respawn).",
            pool.get("generation", 0),
        )
        writer.metric(
            "repro_pool_workers", "gauge",
            "Configured worker-process count.", pool.get("workers", 0),
        )
    chaos = resilience.get("chaos")
    if isinstance(chaos, Mapping):
        writer.metric(
            "repro_chaos_injected_total", "counter",
            "Faults injected by the chaos harness (tests/CI only).",
            chaos.get("injected", 0),
        )


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render the combined server snapshot as Prometheus exposition text.

    Accepts the full ``AsyncOptimizerServer.metrics_snapshot()`` shape;
    any missing top-level section is simply skipped. A bare
    ``ServiceMetrics.snapshot()`` (no nesting) also works when wrapped
    as ``{"service": snapshot}``.
    """
    writer = _Writer()
    serving = snapshot.get("serving")
    if isinstance(serving, Mapping):
        _render_serving(writer, serving)
    admission = snapshot.get("admission")
    if isinstance(admission, Mapping):
        _render_admission(writer, admission)
    coalescer = snapshot.get("coalescer")
    if isinstance(coalescer, Mapping):
        _render_coalescer(writer, coalescer)
    service = snapshot.get("service")
    if isinstance(service, Mapping):
        _render_service(writer, service)
    resilience = snapshot.get("resilience")
    if isinstance(resilience, Mapping):
        _render_resilience(writer, resilience)
    return writer.render()
