"""Pickle round-trips for every type the process backend ships.

The parallel backend moves requests, results, plans and preferences
between processes via pickle — these regression tests pin the
round-trip down independently of the pool machinery, so a future field
addition that breaks picklability fails here with a clear message.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import FAST_CONFIG, OptimizerConfig
from repro.core.instrumentation import RequestMetrics
from repro.core.optimizer import MultiObjectiveOptimizer
from repro.core.preferences import Preferences
from repro.core.request import OptimizationRequest
from repro.cost.objectives import Objective
from repro.parallel.deadline import DeadlineScheduler
from repro.parallel.sharding import ShardOutcome, ShardTask
from repro.parallel.worker import WorkerSetup
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


@pytest.fixture(scope="module")
def preferences():
    return Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
         Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 5.0},
        bounds={Objective.BUFFER_FOOTPRINT: 1e9},
    )


@pytest.fixture(scope="module")
def result(preferences):
    optimizer = MultiObjectiveOptimizer(make_small_schema(),
                                        config=TINY_CONFIG)
    request = OptimizationRequest(
        query=make_chain_query(3),
        preferences=preferences,
        algorithm="ira",
        alpha=1.5,
    )
    return optimizer.execute(request)


class TestPickleRoundtrip:
    def test_preferences(self, preferences):
        copy = roundtrip(preferences)
        assert copy == preferences
        assert copy.indices == preferences.indices
        assert copy.fingerprint() == preferences.fingerprint()

    def test_request(self, preferences):
        request = OptimizationRequest(
            query=make_chain_query(3),
            preferences=preferences,
            algorithm="ira",
            alpha=1.25,
            strict=False,
            config=FAST_CONFIG,
            timeout_seconds=9.0,
            tags=("tenant-a", "batch-7"),
        )
        copy = roundtrip(request)
        assert copy == request
        assert copy.fingerprint() == request.fingerprint()

    def test_config(self):
        config = OptimizerConfig(dop_values=(1, 3), timeout_seconds=2.5)
        copy = roundtrip(config)
        assert copy == config
        assert copy.fingerprint() == config.fingerprint()

    def test_plan(self, result):
        plan = result.plan
        copy = roundtrip(plan)
        assert copy.cost == plan.cost
        assert copy.rows == plan.rows
        assert copy.width == plan.width
        assert copy.describe() == plan.describe()
        assert copy.operator_labels() == plan.operator_labels()

    def test_result(self, result):
        copy = roundtrip(result)
        assert copy.algorithm == result.algorithm
        assert copy.plan_cost == result.plan_cost
        assert copy.weighted_cost == result.weighted_cost
        assert copy.deadline_hit == result.deadline_hit
        assert [c for c, _ in copy.frontier] == [
            c for c, _ in result.frontier
        ]
        assert copy.plan.describe() == result.plan.describe()

    def test_schema(self):
        schema = make_small_schema()
        copy = roundtrip(schema)
        assert sorted(t.name for t in copy.tables) == sorted(
            t.name for t in schema.tables
        )

    def test_parallel_payloads(self, preferences, result):
        """The pool's own message types survive the trip too."""
        task = ShardTask(
            query=make_chain_query(3),
            preferences=preferences,
            algorithm="rta",
            alpha=1.5,
            config=TINY_CONFIG,
            strict=False,
            split_start=0,
            split_stop=2,
        )
        assert roundtrip(task) == task
        outcome = ShardOutcome(
            entries=tuple(result.frontier),
            plans_considered=10,
            memory_kb=64.0,
            timed_out=False,
            deadline_hit=False,
        )
        copy = roundtrip(outcome)
        assert [c for c, _ in copy.entries] == [
            c for c, _ in outcome.entries
        ]
        setup = WorkerSetup(
            schema=make_small_schema(),
            config=TINY_CONFIG,
            params=None,
            scheduler=DeadlineScheduler(route_fraction=0.3),
        )
        copy = roundtrip(setup)
        assert copy.scheduler == setup.scheduler
        record = RequestMetrics(
            fingerprint="abc", query_name="q", algorithm="rta",
            tags=("t",), cache_hit=False, elapsed_ms=1.0,
            timed_out=False, deadline_hit=True, worker="SpawnProcess-1",
        )
        assert roundtrip(record) == record
