"""Synthetic schema and query-shape generation."""

import pytest

from repro.exceptions import QueryModelError
from repro.query.join_graph import JoinGraph
from repro.query.synthetic import (
    GraphShape,
    MAX_TABLES,
    shape_suite,
    synthetic_query,
    synthetic_schema,
)


class TestSchema:
    def test_size_and_growth(self):
        schema = synthetic_schema(num_tables=5, base_rows=100, growth=2.0)
        assert len(schema.tables) == 5
        rows = [t.row_count for t in schema.tables]
        assert rows == sorted(rows)
        assert rows[0] == 100 and rows[4] == 1600

    def test_indexes_present(self):
        schema = synthetic_schema(num_tables=3)
        assert schema.index_on_column("t0", "key") is not None
        assert schema.index_on_column("t2", "ref") is not None

    def test_deterministic(self):
        first = synthetic_schema(num_tables=4, seed=5)
        second = synthetic_schema(num_tables=4, seed=5)
        assert [t.column("ref").n_distinct for t in first.tables] == [
            t.column("ref").n_distinct for t in second.tables
        ]

    def test_rejects_empty(self):
        with pytest.raises(QueryModelError):
            synthetic_schema(num_tables=0)


class TestShapes:
    @pytest.mark.parametrize("shape", list(GraphShape))
    def test_connected(self, shape):
        query = synthetic_query(shape, 5)
        graph = JoinGraph(query)
        assert graph.is_connected(graph.full_mask)

    def test_chain_edge_count(self):
        query = synthetic_query(GraphShape.CHAIN, 6)
        assert len(query.joins) == 5

    def test_star_hub(self):
        query = synthetic_query(GraphShape.STAR, 6)
        hub_edges = [j for j in query.joins if "t0" in j.aliases]
        assert len(hub_edges) == 5

    def test_cycle_closes(self):
        query = synthetic_query(GraphShape.CYCLE, 5)
        assert len(query.joins) == 5
        endpoints = [j for j in query.joins
                     if j.aliases == frozenset({"t0", "t4"})]
        assert endpoints

    def test_clique_edge_count(self):
        query = synthetic_query(GraphShape.CLIQUE, 5)
        assert len(query.joins) == 10

    def test_size_limits(self):
        with pytest.raises(QueryModelError):
            synthetic_query(GraphShape.CHAIN, MAX_TABLES + 1)
        with pytest.raises(QueryModelError):
            synthetic_query(GraphShape.CHAIN, 0)

    def test_single_table(self):
        query = synthetic_query(GraphShape.CHAIN, 1)
        assert query.joins == ()
        assert query.num_tables == 1

    def test_shape_suite(self):
        suite = shape_suite(4)
        assert set(suite) == set(GraphShape)
        tiny = shape_suite(2)
        assert GraphShape.CLIQUE not in tiny


class TestOptimization:
    @pytest.mark.parametrize(
        "shape", [GraphShape.CHAIN, GraphShape.STAR, GraphShape.CLIQUE]
    )
    def test_rta_optimizes_each_shape(self, shape):
        from repro import (
            MultiObjectiveOptimizer,
            Objective,
            Preferences,
        )
        from tests.conftest import TINY_CONFIG

        schema = synthetic_schema(num_tables=5, base_rows=1000)
        optimizer = MultiObjectiveOptimizer(schema, config=TINY_CONFIG)
        query = synthetic_query(shape, 5)
        prefs = Preferences(
            objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights=(1.0, 1.0),
        )
        result = optimizer.optimize(query, prefs, algorithm="rta",
                                    alpha=1.5)
        assert result.plan is not None
        assert result.plan.aliases == frozenset(query.aliases)

    def test_clique_considers_more_than_chain(self):
        """Denser graphs mean more connected splits -> more candidates."""
        from repro import MultiObjectiveOptimizer, Objective, Preferences
        from tests.conftest import TINY_CONFIG

        schema = synthetic_schema(num_tables=5, base_rows=1000)
        optimizer = MultiObjectiveOptimizer(schema, config=TINY_CONFIG)
        prefs = Preferences(
            objectives=(Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights=(1.0, 1.0),
        )
        results = {
            shape: optimizer.optimize(
                synthetic_query(shape, 5), prefs, algorithm="exa"
            )
            for shape in (GraphShape.CHAIN, GraphShape.CLIQUE)
        }
        assert (
            results[GraphShape.CLIQUE].plans_considered
            > results[GraphShape.CHAIN].plans_considered
        )
