"""Prometheus text-exposition rendering: format validity and coverage.

The format checker here is deliberately strict about the parts a real
scraper cares about — every sample line must parse as
``name{labels} value``, every sample must follow a # TYPE declaration
for its metric family, and label values must be properly escaped.
"""

from __future__ import annotations

import math
import re

from repro.obs.prom import (
    CANONICAL_PHASES,
    CONTENT_TYPE,
    render_prometheus,
)

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def full_snapshot() -> dict:
    return {
        "serving": {
            "connections": 3,
            "requests": 10,
            "responses_by_code": {"ok": 8, "shed": 2},
            "coalesce_hits": 4,
            "coalesce_leaders": 6,
            "sheds": 2,
            "deadline_sheds": 1,
            "protocol_errors": 0,
            "coalesce_hit_rate": 0.4,
            "latency": {
                "count": 10,
                "mean_ms": 5.5,
                "p50_ms": 4.0,
                "p95_ms": 12.0,
                "p99_ms": 20.0,
                "max_ms": 21.5,
            },
        },
        "admission": {
            "max_in_flight": 4,
            "max_queue_depth": 16,
            "running": 1,
            "queue_depth": 0,
            "peak_queue_depth": 3,
            "admitted": 8,
            "shed": 2,
        },
        "coalescer": {"in_flight": 1, "leaders": 6, "followers": 4},
        "service": {
            "requests": 8,
            "cache_hits": 2,
            "cache_misses": 6,
            "timeouts": 0,
            "deadline_hits": 1,
            "coalesce_hits": 4,
            "sheds": 2,
            "total_optimization_ms": 123.4,
            "by_algorithm": {"rta": 5, "exa": 1},
            "by_worker": {"SpawnProcess-1": 6},
            "phase_ms": {"enumerate": 100.0, "kernel": 10.5},
            "hit_rate": 0.25,
        },
    }


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse exposition text; asserts structural validity as it goes."""
    samples: dict[str, list[tuple[dict, float]]] = {}
    typed: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ", 1)
            assert kind in {"counter", "gauge", "summary", "histogram"}
            typed.add(name)
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_LINE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        family = re.sub(r"_(count|sum|bucket)$", "", name)
        assert family in typed or name in typed, (
            f"sample {name} has no # TYPE declaration"
        )
        labels = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                assert LABEL_PAIR.match(pair), f"bad label pair {pair!r}"
                key, _, value = pair.partition("=")
                labels[key] = value.strip('"')
        value = float(match.group("value"))
        assert math.isfinite(value)
        samples.setdefault(name, []).append((labels, value))
    return samples


class TestExposition:
    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_full_snapshot_is_structurally_valid(self):
        parse_exposition(render_prometheus(full_snapshot()))

    def test_required_series_present(self):
        samples = parse_exposition(render_prometheus(full_snapshot()))
        required = [
            # cache
            "repro_service_cache_hits_total",
            "repro_service_cache_misses_total",
            "repro_service_cache_hit_rate",
            # coalescing
            "repro_serving_coalesce_hits_total",
            "repro_serving_coalesce_leaders_total",
            "repro_coalescer_leaders_total",
            "repro_coalescer_followers_total",
            # shedding + deadlines
            "repro_serving_sheds_total",
            "repro_serving_deadline_sheds_total",
            "repro_admission_shed_total",
            "repro_service_deadline_hits_total",
            # latency summary
            "repro_serving_latency_ms",
            "repro_serving_latency_ms_count",
            "repro_serving_latency_ms_sum",
            # phase timers
            "repro_phase_ms_total",
        ]
        for name in required:
            assert name in samples, f"missing series {name}"

    def test_sample_values_round_trip(self):
        samples = parse_exposition(render_prometheus(full_snapshot()))
        assert samples["repro_service_cache_misses_total"][0][1] == 6.0
        assert samples["repro_serving_latency_ms_count"][0][1] == 10.0
        assert samples["repro_serving_latency_ms_sum"][0][1] == 55.0
        by_code = {
            labels["code"]: value
            for labels, value in samples["repro_serving_responses_total"]
        }
        assert by_code == {"ok": 8.0, "shed": 2.0}

    def test_phase_series_cover_canonical_phases(self):
        samples = parse_exposition(render_prometheus(full_snapshot()))
        phases = {
            labels["phase"]: value
            for labels, value in samples["repro_phase_ms_total"]
        }
        for phase in CANONICAL_PHASES:
            assert phase in phases
        assert phases["enumerate"] == 100.0
        assert phases["kernel"] == 10.5
        assert phases["prune"] == 0.0  # canonical default

    def test_quantile_labels(self):
        samples = parse_exposition(render_prometheus(full_snapshot()))
        quantiles = {
            labels["quantile"]: value
            for labels, value in samples["repro_serving_latency_ms"]
        }
        assert quantiles == {"0.5": 4.0, "0.95": 12.0, "0.99": 20.0}

    def test_missing_sections_are_skipped(self):
        text = render_prometheus({"service": full_snapshot()["service"]})
        samples = parse_exposition(text)
        assert "repro_service_requests_total" in samples
        assert "repro_serving_requests_total" not in samples
        assert render_prometheus({}) == "\n"

    def test_label_escaping(self):
        snapshot = {
            "service": {
                "by_algorithm": {'evil"name\\with\nnewline': 1},
            }
        }
        text = render_prometheus(snapshot)
        line = next(
            line for line in text.splitlines()
            if line.startswith("repro_service_algorithm_requests_total{")
        )
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line  # the raw newline never leaks through
        parse_exposition(text)

    def test_exposition_ends_with_newline(self):
        assert render_prometheus(full_snapshot()).endswith("\n")
