"""Process-pool backend: worker execution, caching, metrics, sharding.

These tests spin up real (spawn) worker processes — the pool is built
once per module and shared, because each spawn imports the package.
The worker count honors the ``--workers`` pytest option (CI pins it to
2 under a hard timeout so a hung pool fails fast).
"""

from __future__ import annotations

import time

import pytest

from repro.core.request import OptimizationRequest
from repro.core.service import OptimizerService
from repro.core.preferences import Preferences
from repro.cost.objectives import Objective
from repro.exceptions import OptimizerError
from repro.parallel.deadline import DeadlineScheduler
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def service(parallel_workers):
    with OptimizerService(
        make_small_schema(),
        config=TINY_CONFIG,
        backend="processes",
        workers=parallel_workers,
        scheduler=DeadlineScheduler(),
    ) as service:
        service.worker_pool().warm_up()
        yield service


def make_request(algorithm="rta", alpha=1.5, num_tables=3, **kwargs):
    weights = {Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 2.0}
    preferences = Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.TUPLE_LOSS), weights=weights
    )
    return OptimizationRequest(
        query=make_chain_query(num_tables),
        preferences=preferences,
        algorithm=algorithm,
        alpha=alpha,
        **kwargs,
    )


class TestProcessBackend:
    def test_batch_matches_inline_results(self, service):
        requests = [
            make_request(alpha=alpha, num_tables=tables)
            for alpha in (1.2, 1.5, 2.0)
            for tables in (2, 3)
        ]
        parallel = service.optimize_many(requests)
        inline = OptimizerService(
            service.schema, config=TINY_CONFIG, backend="inline",
            cache_size=0,
        )
        expected = [inline.submit(request) for request in requests]
        assert len(parallel) == len(expected)
        for got, want in zip(parallel, expected):
            assert got.plan_cost == want.plan_cost
            assert [c for c, _ in got.frontier] == [
                c for c, _ in want.frontier
            ]

    def test_worker_metrics_ship_back(self, service):
        before = service.metrics.snapshot()["requests"]
        records = []
        hook = records.append
        service.add_hook(hook)
        try:
            service.optimize_many(
                [make_request(alpha=1.31), make_request(alpha=1.32)]
            )
        finally:
            service.remove_hook(hook)
        after = service.metrics.snapshot()
        assert after["requests"] == before + 2
        assert len(records) == 2
        assert all(record.worker for record in records)
        assert set(after["by_worker"])  # worker attribution collected

    def test_parent_cache_serves_repeats(self, service):
        request = make_request(alpha=1.77)
        first = service.optimize_many([request])[0]
        hits_before = service.metrics.snapshot()["cache_hits"]
        second = service.submit(request)
        assert service.metrics.snapshot()["cache_hits"] == hits_before + 1
        assert second.plan_cost == first.plan_cost

    def test_fingerprint_sharding_on_duplicates(self, service):
        request_a = make_request(alpha=1.91)
        request_b = make_request(alpha=1.92)
        batch = [request_a, request_b, request_a, request_a, request_b]
        results = service.optimize_many(batch)
        assert results[0].plan_cost == results[2].plan_cost
        assert results[1].plan_cost == results[4].plan_cost

    def test_sharded_submit_over_pool(self, service):
        request = make_request(algorithm="exa", num_tables=3,
                               tags=("sharded",))
        inline = OptimizerService(
            service.schema, config=TINY_CONFIG, backend="inline",
            cache_size=0,
        ).submit(request)
        service.cache.clear()  # force real sharded execution
        sharded = service.submit_sharded(request)
        assert [c for c, _ in sharded.frontier] == [
            c for c, _ in inline.frontier
        ]
        assert sharded.plan_cost == inline.plan_cost

    def test_worker_cache_dedups_budgeted_repeats(self, service):
        """Fingerprint sharding + scheduler: repeats still hit the
        worker cache because it keys on the original fingerprint, not
        the time-varying resolved timeout."""
        request = make_request(alpha=1.83, timeout_seconds=120.0)
        batch = [request] * 4
        hits_before = service.metrics.snapshot()["cache_hits"]
        results = service.optimize_many(batch)
        hits = service.metrics.snapshot()["cache_hits"] - hits_before
        assert hits >= 3  # first computes, repeats served from cache
        assert all(r.plan_cost == results[0].plan_cost for r in results)

    def test_deadline_enforced_in_worker(self, service):
        request = make_request(timeout_seconds=1e-9, alpha=1.41)
        result = service.optimize_many([request, request])[0]
        assert result.deadline_hit
        assert result.plan is not None  # fallback plan, not a failure

    def test_empty_batch(self, service):
        assert service.optimize_many([]) == []

    def test_single_request_batch_uses_the_pool(self, service):
        """Backend semantics are uniform: even a one-element batch runs
        on a worker, so by_worker attribution and per-worker state
        apply regardless of batch size."""
        records = []
        hook = records.append
        service.add_hook(hook)
        try:
            result = service.optimize_many([make_request(alpha=1.66)])
        finally:
            service.remove_hook(hook)
        assert len(result) == 1 and result[0].plan is not None
        assert records[-1].worker  # executed by a named worker process


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(OptimizerError):
            OptimizerService(make_small_schema(), backend="gpu")
        service = OptimizerService(
            make_small_schema(), config=TINY_CONFIG, backend="inline"
        )
        with pytest.raises(OptimizerError):
            service.optimize_many([make_request()], backend="gpu")

    def test_per_call_backend_override(self, service):
        # The process-backed service can still run a batch inline.
        results = service.optimize_many(
            [make_request(alpha=1.18)], backend="inline"
        )
        assert results[0].plan is not None

    def test_close_is_idempotent(self, parallel_workers):
        service = OptimizerService(
            make_small_schema(), config=TINY_CONFIG,
            backend="processes", workers=parallel_workers,
        )
        service.close()  # no pool started yet
        service.optimize_many([make_request(), make_request(alpha=2.0)])
        service.close()
        service.close()
