"""Test helpers: a brute-force plan enumerator as ground truth.

The enumerator generates *every* plan the DP search space contains
(same splits, operators and access paths, no pruning). Tests compare
EXA/RTA/IRA results against frontiers and optima computed from this
exhaustive set.
"""

from __future__ import annotations

from itertools import combinations

from repro.config import OptimizerConfig
from repro.cost import cardinality
from repro.cost.model import CostModel
from repro.plans.operators import JoinMethod
from repro.plans.plan import Plan
from repro.plans.plan_space import PlanSpace
from repro.query.join_graph import JoinGraph
from repro.query.query import Query


def enumerate_all_plans(
    query: Query, cost_model: CostModel, config: OptimizerConfig
) -> list[Plan]:
    """All plans for ``query`` under the DP's search-space rules.

    Mirrors the enumeration of :class:`repro.core.dp.DPRun` (connected
    splits preferred, index-nested-loop availability, Cartesian products
    only when unavoidable) without any pruning. Exponential — only for
    small test queries.
    """
    graph = JoinGraph(query)
    plan_space = PlanSpace(cost_model, config)
    memo: dict[int, list[Plan]] = {}

    def plans_for(mask: int) -> list[Plan]:
        if mask in memo:
            return memo[mask]
        if mask.bit_count() == 1:
            alias = next(iter(graph.aliases_of(mask)))
            result = plan_space.access_paths(query, alias)
        else:
            result = []
            for left_mask, right_mask in graph.splits(mask):
                if not (
                    graph.is_connected(left_mask)
                    and graph.is_connected(right_mask)
                ) and graph.is_connected(graph.full_mask):
                    continue
                predicates = graph.predicates_between(left_mask, right_mask)
                selectivity = cardinality.join_selectivity(
                    cost_model.schema, query, predicates
                )
                for outer_mask, inner_mask in (
                    (left_mask, right_mask),
                    (right_mask, left_mask),
                ):
                    result.extend(
                        _joined(outer_mask, inner_mask, predicates,
                                selectivity)
                    )
        memo[mask] = result
        return result

    def _joined(outer_mask, inner_mask, predicates, selectivity):
        joined = []
        if predicates:
            specs = plan_space.generic_join_specs
        else:
            specs = tuple(
                s for s in plan_space.generic_join_specs
                if s.method is JoinMethod.NESTED_LOOP
            )
        for spec in specs:
            for left_plan in plans_for(outer_mask):
                for right_plan in plans_for(inner_mask):
                    joined.append(
                        cost_model.join_plan(
                            query, spec, left_plan, right_plan,
                            predicates, selectivity=selectivity,
                        )
                    )
        if predicates and inner_mask.bit_count() == 1:
            inner_alias = next(iter(graph.aliases_of(inner_mask)))
            for probe in plan_space.index_probe_inners(
                query, inner_alias, predicates
            ):
                for spec in plan_space.index_nl_specs:
                    for left_plan in plans_for(outer_mask):
                        joined.append(
                            cost_model.join_plan(
                                query, spec, left_plan, probe,
                                predicates, selectivity=selectivity,
                            )
                        )
        return joined

    return plans_for(graph.full_mask)


def all_alias_subsets(query: Query):
    """Every non-empty alias subset of a query block."""
    aliases = query.aliases
    for size in range(1, len(aliases) + 1):
        for combo in combinations(aliases, size):
            yield frozenset(combo)
