"""Benchmark-harness configuration: env overrides and defaults."""

import os

import pytest

from repro.bench.experiments import (
    BENCH_CONFIG,
    bench_query_numbers,
    make_optimizer,
)
from repro.query.tpch_queries import PAPER_QUERY_ORDER


class TestBenchQueryNumbers:
    def test_default_subset_in_paper_order(self):
        numbers = bench_query_numbers()
        order = {n: i for i, n in enumerate(PAPER_QUERY_ORDER)}
        positions = [order[n] for n in numbers]
        assert positions == sorted(positions)
        assert set(numbers) <= set(PAPER_QUERY_ORDER)

    def test_env_override_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "all")
        assert bench_query_numbers() == PAPER_QUERY_ORDER

    def test_env_override_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "8,1,5")
        numbers = bench_query_numbers()
        assert set(numbers) == {1, 5, 8}
        # Re-sorted into the paper's x-axis order.
        assert numbers == (1, 5, 8)


class TestMakeOptimizer:
    def test_default_timeout_applied(self):
        optimizer = make_optimizer()
        assert optimizer.config.timeout_seconds is not None

    def test_explicit_timeout(self):
        optimizer = make_optimizer(timeout_seconds=42.0)
        assert optimizer.config.timeout_seconds == 42.0

    def test_bench_config_operator_space(self):
        # Reduced space: 2 DOP values, 2 sampling rates, all 4 methods.
        assert BENCH_CONFIG.dop_values == (1, 2)
        assert BENCH_CONFIG.sampling_rates == (0.01, 0.05)
        assert len(BENCH_CONFIG.join_methods) == 4

    def test_scale_factor_passthrough(self):
        optimizer = make_optimizer(timeout_seconds=1.0, scale_factor=0.1)
        assert optimizer.schema.table("lineitem").row_count == int(
            6_001_215 * 0.1
        )
