"""Workload families: topology, knob validation, spawn-safe determinism."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.core.service import OptimizerService
from repro.exceptions import OptimizerError
from repro.workloads import (
    FAMILIES,
    job_chain_family,
    make_family,
    tpch_chain_family,
)

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


class TestTpchChainTopology:
    def test_chain_shape(self):
        family = tpch_chain_family(extra_joins=3)
        query = family.query(0)
        assert query.num_tables == 4
        assert len(query.joins) == 3
        aliases = {ref.alias for ref in query.table_refs}
        assert aliases == {"lineitem", "orders", "customer", "nation"}

    def test_star_shape_hubs_on_lineitem(self):
        family = tpch_chain_family(extra_joins=4, shape="star")
        query = family.query(0)
        assert query.num_tables == 5
        assert all(join.left_alias == "lineitem" for join in query.joins)

    def test_cycle_shape_closes_circuit(self):
        family = tpch_chain_family(extra_joins=4, shape="cycle")
        query = family.query(0)
        # 5 tables and 5 edges: a genuine cycle, not a tree.
        assert query.num_tables == 5
        assert len(query.joins) == 5
        closer = query.joins[-1]
        assert (closer.left_alias, closer.right_alias) == (
            "supplier", "lineitem"
        )

    def test_anchor_filter_uses_selectivity_knob(self):
        family = tpch_chain_family(extra_joins=2, selectivity=0.17)
        anchor = family.query(0).filters[0]
        assert anchor.alias == "lineitem"
        assert anchor.selectivity == 0.17

    def test_secondary_filters_vary_per_draw(self):
        family = tpch_chain_family(extra_joins=2)
        first = family.query(0).filters[1:]
        second = family.query(1).filters[1:]
        assert first != second

    def test_query_names_index_the_draw(self):
        family = tpch_chain_family(extra_joins=3)
        assert family.query(5).name == "tpch-chain-j3-d5"


class TestJobChainTopology:
    def test_chain_lengths(self):
        assert job_chain_family(joins=1).query(0).num_tables == 2
        assert job_chain_family(joins=8).query(0).num_tables == 9

    def test_joins_follow_fixed_traversal(self):
        query = job_chain_family(joins=4).query(0)
        assert [j.right_alias for j in query.joins] == ["cn", "t", "ct", "kt"]

    def test_anchor_filter_on_movie_companies(self):
        anchor = job_chain_family(joins=2, selectivity=0.4).query(0).filters[0]
        assert (anchor.alias, anchor.column) == ("mc", "company_type_id")
        assert anchor.selectivity == 0.4

    def test_schema_is_mini_imdb(self):
        family = job_chain_family(joins=8)
        assert family.schema.name.startswith("imdb")
        assert family.schema.table("title").row_count > 0


class TestKnobValidation:
    @pytest.mark.parametrize("extra_joins", [0, 7])
    def test_chain_join_range(self, extra_joins):
        with pytest.raises(OptimizerError):
            tpch_chain_family(extra_joins=extra_joins)

    def test_star_join_range(self):
        with pytest.raises(OptimizerError):
            tpch_chain_family(extra_joins=5, shape="star")

    def test_cycle_requires_full_circuit(self):
        with pytest.raises(OptimizerError):
            tpch_chain_family(extra_joins=3, shape="cycle")

    def test_unknown_shape(self):
        with pytest.raises(OptimizerError):
            tpch_chain_family(shape="lattice")

    @pytest.mark.parametrize("selectivity", [0.0, 1.5])
    def test_selectivity_domain(self, selectivity):
        with pytest.raises(OptimizerError):
            tpch_chain_family(selectivity=selectivity)
        with pytest.raises(OptimizerError):
            job_chain_family(selectivity=selectivity)

    @pytest.mark.parametrize("joins", [0, 9])
    def test_job_join_range(self, joins):
        with pytest.raises(OptimizerError):
            job_chain_family(joins=joins)

    def test_unknown_family_name(self):
        with pytest.raises(OptimizerError, match="unknown workload family"):
            make_family("tpch-snowflake")

    def test_registry_names(self):
        assert set(FAMILIES) == {"tpch-chain", "job-chain"}

    def test_negative_index_rejected(self):
        with pytest.raises(OptimizerError):
            tpch_chain_family().request(-1)

    def test_negative_count_rejected(self):
        with pytest.raises(OptimizerError):
            tpch_chain_family().requests(-1)


class TestDeterminism:
    def test_same_seed_same_fingerprints(self):
        a = tpch_chain_family(extra_joins=3, seed=42)
        b = tpch_chain_family(extra_joins=3, seed=42)
        assert [r.fingerprint() for r in a.requests(3)] == [
            r.fingerprint() for r in b.requests(3)
        ]

    def test_draws_are_position_independent(self):
        # Request i must not depend on how many requests were drawn
        # before it (no shared RNG state to advance).
        family = tpch_chain_family(extra_joins=2, seed=9)
        direct = family.request(2).fingerprint()
        batch = family.requests(3)[2].fingerprint()
        assert direct == batch

    def test_distinct_seeds_distinct_draws(self):
        a = job_chain_family(joins=3, seed=1)
        b = job_chain_family(joins=3, seed=2)
        assert a.request(0).fingerprint() != b.request(0).fingerprint()

    def test_distinct_knobs_distinct_draws(self):
        a = tpch_chain_family(extra_joins=2, selectivity=0.3, seed=5)
        b = tpch_chain_family(extra_joins=2, selectivity=0.4, seed=5)
        assert a.request(0).fingerprint() != b.request(0).fingerprint()

    def test_preferences_follow_paper_setup(self):
        family = job_chain_family(joins=2, seed=3)
        for index in range(6):
            preferences = family.preferences(index)
            assert 2 <= preferences.num_objectives <= 4
            assert all(0.1 <= w <= 1.0 for w in preferences.weights)

    def test_fingerprints_stable_across_processes(self):
        """Spawn-safety: a fresh interpreter reproduces the exact draws."""
        family = tpch_chain_family(extra_joins=2, seed=42)
        expected = [r.fingerprint() for r in family.requests(3)]
        code = (
            "from repro.workloads import tpch_chain_family\n"
            "family = tpch_chain_family(extra_joins=2, seed=42)\n"
            "for request in family.requests(3):\n"
            "    print(request.fingerprint())\n"
        )
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        output = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True, timeout=60,
        ).stdout
        assert output.split() == expected


class TestServiceIntegration:
    def test_family_batch_through_optimize_many(self):
        family = tpch_chain_family(extra_joins=2, seed=7)
        requests = family.requests(3)
        service = OptimizerService(family.schema)
        try:
            results = service.optimize_many(requests)
        finally:
            service.close()
        assert len(results) == 3
        assert all(r.plan is not None and not r.degraded for r in results)
        assert [r.query_name for r in results] == [
            r.query_name for r in requests
        ]

    def test_request_tags_identify_family_and_draw(self):
        request = job_chain_family(joins=2).request(4)
        assert request.tags == ("family:job-chain", "draw4")
