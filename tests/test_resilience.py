"""Unit tests for the resilience primitives: retry policy, circuit
breaker, and the chaos fault-injection harness.

Everything here is deterministic and process-free — seeded RNGs and an
injectable clock drive every path. The end-to-end recovery behavior
(real SIGKILLed workers, bitwise-equal re-dispatch) lives in
``test_resilience_chaos.py``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.resilience import (
    CHAOS_ENV_VAR,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    CircuitBreaker,
    CLIENT_RETRY_POLICY,
    DEFAULT_RETRY_POLICY,
    Fault,
    RetryPolicy,
    apply_fault,
    chaos_from_env,
    parse_chaos_spec,
)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=10.0,
            multiplier=2.0, jitter=0.0,
        )
        delays = [policy.backoff_s(n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay_s=0.1, max_delay_s=0.5,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.backoff_s(10) == 0.5

    def test_jitter_only_shrinks_and_is_seed_reproducible(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, max_delay_s=10.0,
            multiplier=1.0, jitter=0.5,
        )
        first = [policy.backoff_s(1, random.Random(42)) for _ in range(5)]
        second = [policy.backoff_s(1, random.Random(42)) for _ in range(5)]
        assert first == second  # same seed, same delays
        for delay in first:
            assert 0.5 <= delay <= 1.0  # jitter only shrinks

    def test_next_delay_stops_at_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert policy.next_delay(1) is not None
        assert policy.next_delay(2) is not None
        assert policy.next_delay(3) is None

    def test_next_delay_refuses_exhausted_budget(self):
        policy = RetryPolicy(
            max_attempts=5, min_remaining_s=0.01, jitter=0.0
        )
        assert policy.next_delay(1, remaining_s=0.005) is None
        assert policy.next_delay(1, remaining_s=-1.0) is None

    def test_next_delay_clamps_to_remaining_budget(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=10.0, max_delay_s=10.0,
            jitter=0.0, min_remaining_s=0.01,
        )
        delay = policy.next_delay(1, remaining_s=0.5)
        assert delay == pytest.approx(0.49)

    def test_no_budget_means_no_clamp(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0, base_delay_s=0.2)
        assert policy.next_delay(1) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.backoff_s(0)

    def test_policies_are_picklable(self):
        for policy in (DEFAULT_RETRY_POLICY, CLIENT_RETRY_POLICY):
            assert pickle.loads(pickle.dumps(policy)) == policy


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown_s", 10.0)
    breaker = CircuitBreaker(time_source=clock, **kwargs)
    return breaker, clock


def fail_once(breaker: CircuitBreaker) -> bool:
    return breaker.record_failure(breaker.decide())


class TestCircuitBreaker:
    def test_healthy_breaker_stays_on_preferred_backend(self):
        breaker, _clock = make_breaker()
        decision = breaker.decide()
        assert decision.backend == "processes"
        assert not decision.probe
        assert not breaker.tripped
        assert breaker.snapshot()["state"] == "closed"

    def test_consecutive_failures_trip_one_level(self):
        breaker, _clock = make_breaker()
        assert not fail_once(breaker)
        assert fail_once(breaker)  # threshold 2 -> trip
        assert breaker.tripped
        assert breaker.backend == "threads"
        assert breaker.trips == 1
        assert breaker.snapshot()["state"] == "open"

    def test_success_resets_the_failure_count(self):
        breaker, _clock = make_breaker()
        fail_once(breaker)
        breaker.record_success(breaker.decide())
        fail_once(breaker)  # count restarted: still closed
        assert not breaker.tripped

    def test_probe_appears_only_after_cooldown(self):
        breaker, clock = make_breaker()
        fail_once(breaker)
        fail_once(breaker)
        assert not breaker.decide().probe  # cooldown not elapsed
        clock.advance(10.0)
        decision = breaker.decide()
        assert decision.probe
        assert decision.backend == "processes"
        # Only one probe is outstanding at a time.
        assert not breaker.decide().probe
        assert breaker.snapshot()["state"] == "half_open"

    def test_successful_probe_recovers_one_level(self):
        breaker, clock = make_breaker()
        fail_once(breaker)
        fail_once(breaker)
        clock.advance(10.0)
        probe = breaker.decide()
        assert breaker.record_success(probe)
        assert not breaker.tripped
        assert breaker.backend == "processes"
        assert breaker.recoveries == 1

    def test_failed_probe_restarts_cooldown(self):
        breaker, clock = make_breaker()
        fail_once(breaker)
        fail_once(breaker)
        clock.advance(10.0)
        breaker.record_failure(breaker.decide())  # probe fails
        assert breaker.backend == "threads"
        clock.advance(5.0)  # cooldown restarted, not elapsed
        assert not breaker.decide().probe
        clock.advance(5.0)
        assert breaker.decide().probe

    def test_repeated_probe_failures_trip_deeper(self):
        breaker, clock = make_breaker()
        fail_once(breaker)
        fail_once(breaker)  # -> threads
        for _ in range(2):  # threshold failed probes -> inline
            clock.advance(10.0)
            breaker.record_failure(breaker.decide())
        assert breaker.backend == "inline"
        assert breaker.trips == 2

    def test_bottom_of_ladder_never_goes_deeper(self):
        breaker, clock = make_breaker(ladder=("processes", "inline"))
        for _ in range(8):
            fail_once(breaker)
        assert breaker.backend == "inline"
        assert breaker.level == 1

    def test_stale_failure_reports_are_ignored(self):
        breaker, _clock = make_breaker()
        stale = breaker.decide()  # taken while closed
        fail_once(breaker)
        fail_once(breaker)  # tripped to level 1
        assert not breaker.record_failure(stale)  # level 0 report: stale
        assert breaker.level == 1
        assert breaker.trips == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(())
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
class TestChaosConfig:
    def test_defaults_are_disabled(self):
        assert not ChaosConfig().enabled

    def test_any_probability_enables(self):
        assert ChaosConfig(kill_prob=0.1).enabled
        assert ChaosConfig(drop_prob=0.1).enabled

    def test_max_faults_zero_disables(self):
        assert not ChaosConfig(kill_prob=1.0, max_faults=0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_prob=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(kill_prob=0.6, error_prob=0.6)  # sum > 1
        with pytest.raises(ValueError):
            ChaosConfig(slow_seconds=-1.0)
        with pytest.raises(ValueError):
            ChaosConfig(max_faults=-1)


class TestChaosInjector:
    def test_same_seed_same_fault_sequence(self):
        config = ChaosConfig(seed=7, kill_prob=0.3, error_prob=0.3)
        draws_a = [ChaosInjector(config).draw_dispatch() for _ in [0]]
        first = [ChaosInjector(config)]
        second = [ChaosInjector(config)]
        sequence_a = [first[0].draw_dispatch() for _ in range(50)]
        sequence_b = [second[0].draw_dispatch() for _ in range(50)]
        assert sequence_a == sequence_b
        assert any(fault is not None for fault in sequence_a)
        assert draws_a[0] == sequence_a[0]

    def test_max_faults_caps_injection(self):
        injector = ChaosInjector(
            ChaosConfig(seed=1, kill_prob=1.0, max_faults=3)
        )
        faults = [injector.draw_dispatch() for _ in range(10)]
        assert sum(fault is not None for fault in faults) == 3
        assert injector.injected == 3

    def test_drop_draws_are_counted_separately(self):
        injector = ChaosInjector(ChaosConfig(seed=1, drop_prob=1.0))
        assert injector.draw_drop()
        assert injector.draw_dispatch() is None  # no dispatch faults
        snapshot = injector.snapshot()
        assert snapshot["by_kind"] == {"drop": 1}

    def test_zero_probabilities_never_fire(self):
        injector = ChaosInjector(ChaosConfig(seed=3))
        assert all(
            injector.draw_dispatch() is None for _ in range(100)
        )
        assert not injector.draw_drop()


class TestApplyFault:
    def test_no_fault_is_a_noop(self):
        assert apply_fault(None) is None

    def test_slow_fault_sleeps_then_proceeds(self):
        assert apply_fault(Fault("slow", 0.0)) is None

    def test_error_fault_raises_chaos_error(self):
        with pytest.raises(ChaosError):
            apply_fault(Fault("error"))

    def test_pickle_fault_returns_unpicklable_poison(self):
        poison = apply_fault(Fault("pickle"))
        assert poison is not None
        with pytest.raises(pickle.PicklingError):
            pickle.dumps(poison)

    def test_unknown_fault_kind_raises(self):
        with pytest.raises(ValueError):
            apply_fault(Fault("meteor"))


class TestChaosSpec:
    def test_short_names_and_field_names(self):
        config = parse_chaos_spec(
            "kill=0.2, drop=0.1, seed=7, max=5, slow_seconds=0.5"
        )
        assert config == ChaosConfig(
            seed=7, kill_prob=0.2, drop_prob=0.1,
            slow_seconds=0.5, max_faults=5,
        )

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            parse_chaos_spec("explode=1.0")

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_chaos_spec("kill")

    def test_env_gating(self):
        assert chaos_from_env({}) is None
        assert chaos_from_env({CHAOS_ENV_VAR: "  "}) is None
        # All-zero probabilities disable even when the variable is set.
        assert chaos_from_env({CHAOS_ENV_VAR: "seed=9"}) is None
        injector = chaos_from_env({CHAOS_ENV_VAR: "kill=0.5,seed=9"})
        assert injector is not None
        assert injector.config.seed == 9
        assert injector.config.kill_prob == 0.5
