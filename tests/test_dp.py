"""DP enumerator: structure, counters, timeout fallback."""

import time

import pytest

from repro import Objective, Preferences
from repro.config import OptimizerConfig
from repro.core.dp import DPRun
from repro.core.pruning import SingleBestPlanSet
from repro.cost.model import CostModel
from repro.query.join_graph import JoinGraph

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema

OBJS = (Objective.TOTAL_TIME, Objective.TUPLE_LOSS)


@pytest.fixture(scope="module")
def model():
    return CostModel(make_small_schema())


def make_run(model, query, alpha=1.0, deadline=None, config=TINY_CONFIG):
    prefs = Preferences(objectives=OBJS, weights=(1.0, 1.0))
    return DPRun(
        query=query,
        cost_model=model,
        config=config,
        indices=prefs.indices,
        weights=prefs.weights,
        alpha_internal=alpha,
        deadline=deadline,
    )


class TestStructure:
    def test_sets_for_connected_subsets_only(self, model):
        query = make_chain_query(3)
        run = make_run(model, query)
        sets = run.run()
        graph = JoinGraph(query)
        assert set(sets) == set(graph.connected_subsets())
        # users-items (no predicate) is not a stored subproblem.
        gap_mask = graph.mask_of(("users", "items"))
        assert gap_mask not in sets

    def test_full_mask_nonempty(self, model):
        query = make_chain_query(3)
        sets = make_run(model, query).run()
        graph = JoinGraph(query)
        assert len(sets[graph.full_mask]) >= 1

    def test_counters(self, model):
        query = make_chain_query(2)
        run = make_run(model, query)
        sets = run.run()
        counters = run.counters
        assert counters.table_sets_completed == counters.table_sets_total == 3
        assert counters.plans_considered > 0
        assert counters.plans_stored_peak >= sum(len(s) for s in sets.values())
        assert counters.pareto_last_complete == len(
            sets[JoinGraph(query).full_mask]
        )
        assert counters.memory_kb > 0

    def test_cartesian_fallback_for_disconnected_query(self, model):
        from repro import Query, TableRef

        query = Query(
            "cross",
            (TableRef("users", "users"), TableRef("orders", "orders")),
        )
        run = make_run(model, query)
        sets = run.run()
        graph = JoinGraph(query)
        full = sets[graph.full_mask]
        assert len(full) >= 1
        # Only nested-loop joins for Cartesian products.
        from repro.plans.operators import JoinMethod
        from repro.plans.plan import JoinPlan

        for _, plan in full:
            assert isinstance(plan, JoinPlan)
            assert plan.spec.method is JoinMethod.NESTED_LOOP


class TestTimeout:
    def test_expired_deadline_switches_to_fallback(self, model):
        query = make_chain_query(3)
        config = OptimizerConfig(
            dop_values=(1, 2),
            sampling_rates=(0.02,),
            timeout_check_interval=1,
        )
        run = make_run(
            model, query, deadline=time.perf_counter() - 1.0, config=config
        )
        sets = run.run()
        assert run.timed_out
        assert run.counters.timed_out
        graph = JoinGraph(query)
        # Table sets after the timeout keep a single plan.
        assert isinstance(sets[graph.full_mask], SingleBestPlanSet)
        assert len(sets[graph.full_mask]) == 1

    def test_no_timeout_without_deadline(self, model):
        query = make_chain_query(3)
        run = make_run(model, query, deadline=None)
        run.run()
        assert not run.timed_out


class TestApproximatePruning:
    def test_alpha_shrinks_sets(self, model):
        query = make_chain_query(3)
        exact_sets = make_run(model, query, alpha=1.0).run()
        approx_sets = make_run(model, query, alpha=1.6).run()
        graph = JoinGraph(query)
        assert len(approx_sets[graph.full_mask]) <= len(
            exact_sets[graph.full_mask]
        )
