"""Randomized cross-validation on generated schemas and statistics.

Hypothesis generates small random catalogs (cardinalities, distinct
counts, selectivities); for each instance we check the full chain:
EXA == brute-force Pareto set, RTA within its guarantee, IRA feasible
under anchored bounds. This guards the algorithms against statistics
patterns the fixed TPC-H catalog never produces (tiny tables, skewed
ndv, selectivity extremes).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    Column,
    DataType,
    FilterPredicate,
    Index,
    JoinPredicate,
    Objective,
    OptimizerConfig,
    Preferences,
    Query,
    TableRef,
    build_schema,
)
from repro.core.exa import exact_moqo
from repro.core.pareto import coverage_factor
from repro.core.rta import rta
from repro.cost.model import CostModel
from repro.cost.vector import pareto_filter, project, weighted_cost

from tests.helpers import enumerate_all_plans

#: Minimal operator space to keep brute force fast.
MINI_CONFIG = OptimizerConfig(
    dop_values=(1,),
    sampling_rates=(0.05,),
)

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@st.composite
def instances(draw):
    """A random 3-table chain schema + query + weights."""
    rows = [draw(st.integers(1, 20_000)) for _ in range(3)]
    ndv_share = [draw(st.floats(0.01, 1.0)) for _ in range(3)]
    filter_sel = draw(st.floats(0.01, 1.0))
    join_sel_explicit = draw(
        st.one_of(st.none(), st.floats(1e-6, 1.0))
    )
    weights = tuple(draw(st.floats(0.0, 1.0)) for _ in OBJECTIVES)

    tables = [
        _build_table(i, row_count, share)
        for i, (row_count, share) in enumerate(zip(rows, ndv_share))
    ]
    schema = build_schema(
        "random",
        tables,
        [Index("t1_key_idx", "t1", ("key",), rows[1])],
    )
    query = Query(
        "rand_q",
        (TableRef("t0", "t0"), TableRef("t1", "t1"), TableRef("t2", "t2")),
        filters=(FilterPredicate("t0", "payload", filter_sel),),
        joins=(
            JoinPredicate("t0", "key", "t1", "key",
                          selectivity=join_sel_explicit),
            JoinPredicate("t1", "key", "t2", "key"),
        ),
    )
    return schema, query, weights


def _build_table(index: int, row_count: int, ndv_share: float):
    from repro import Table

    ndv = max(1, int(row_count * ndv_share))
    return Table(
        f"t{index}",
        (
            Column("key", DataType.INTEGER, n_distinct=ndv),
            Column("payload", DataType.VARCHAR, n_distinct=max(1, ndv // 2)),
        ),
        row_count=row_count,
    )


#: Relative slack for compounded floating-point roots
#: (``(alpha ** (1/n)) ** n`` accumulates rounding over n levels).
FLOAT_SLACK = 1e-4


@given(instances())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_strict_exa_matches_brute_force_on_random_instances(instance):
    """Strict-mode EXA is exactly optimal on arbitrary instances.

    Default-mode EXA reproduces the paper's pruning, whose optimality
    breaks when sampling makes cardinality plan-dependent (DESIGN.md
    4a); strict mode is the provably sound variant, so it is the one
    validated against brute force here. (Default mode is exercised on
    deterministic fixtures in tests/test_exa.py and its documented gap
    in tests/test_strict_mode.py.)
    """
    schema, query, weights = instance
    model = CostModel(schema)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    all_plans = enumerate_all_plans(query, model, MINI_CONFIG)
    all_costs = [project(p.cost, prefs.indices) for p in all_plans]

    result = exact_moqo(query, model, prefs, MINI_CONFIG, strict=True)
    # The strict frontier covers every true Pareto vector (it may hold
    # additional cardinality-incomparable entries).
    from repro.cost.vector import dominates

    for pareto_vector in pareto_filter(all_costs):
        assert any(
            dominates(cost, pareto_vector)
            for cost in result.frontier_costs
        )
    optimum = min(weighted_cost(c, weights) for c in all_costs)
    assert result.weighted_cost == pytest.approx(optimum, rel=1e-9, abs=1e-12)


@given(instances(), st.floats(1.05, 3.0))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_strict_rta_guarantee_on_random_instances(instance, alpha):
    schema, query, weights = instance
    model = CostModel(schema)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    all_plans = enumerate_all_plans(query, model, MINI_CONFIG)
    all_costs = [project(p.cost, prefs.indices) for p in all_plans]

    result = rta(query, model, prefs, alpha, MINI_CONFIG, strict=True)
    # Frontier coverage (Theorem 3).
    assert coverage_factor(result.frontier_costs, all_costs) <= alpha * (
        1 + FLOAT_SLACK
    )
    # Plan quality (Corollary 1).
    optimum = min(weighted_cost(c, weights) for c in all_costs)
    if optimum > 0:
        assert result.weighted_cost <= optimum * alpha * (1 + FLOAT_SLACK)
