"""Tests for plan-set pruning (exact, approximate, aggressive, single-best).

Includes hypothesis invariants: after any insertion sequence, an exact
PlanSet holds a mutually non-dominated frontier that covers every
inserted vector, and an approximate PlanSet alpha-covers every inserted
vector (the local building block of Theorem 3).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pruning import AggressivePlanSet, PlanSet, SingleBestPlanSet
from repro.cost.vector import approx_dominates, dominates, strictly_dominates

vectors = st.tuples(
    st.floats(0.1, 100, allow_nan=False),
    st.floats(0.1, 100, allow_nan=False),
    st.floats(0.1, 100, allow_nan=False),
)
vector_lists = st.lists(vectors, min_size=1, max_size=60)


class TestExactPlanSet:
    def test_keeps_incomparable(self):
        plan_set = PlanSet()
        assert plan_set.insert((1, 3), "a")
        assert plan_set.insert((3, 1), "b")
        assert len(plan_set) == 2

    def test_rejects_dominated(self):
        plan_set = PlanSet()
        plan_set.insert((1, 1), "a")
        assert not plan_set.insert((2, 2), "b")
        assert len(plan_set) == 1

    def test_rejects_equal(self):
        plan_set = PlanSet()
        plan_set.insert((1, 1), "a")
        assert not plan_set.insert((1, 1), "b")
        assert len(plan_set) == 1

    def test_evicts_dominated_on_insert(self):
        plan_set = PlanSet()
        plan_set.insert((3, 3), "a")
        plan_set.insert((2, 4), "b")
        assert plan_set.insert((1, 1), "c")
        assert [plan for _, plan in plan_set] == ["c"]

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            PlanSet(alpha=0.9)

    def test_covers_matches_insert_decision(self):
        plan_set = PlanSet()
        plan_set.insert((2, 2), "a")
        assert plan_set.covers((3, 3))
        assert not plan_set.covers((1, 3))

    def test_best_weighted(self):
        plan_set = PlanSet()
        plan_set.insert((1, 10), "a")
        plan_set.insert((10, 1), "b")
        cost, plan = plan_set.best_weighted((1.0, 0.0))
        assert plan == "a"
        assert PlanSet().best_weighted((1.0,)) is None

    @given(vector_lists)
    @settings(max_examples=80, deadline=None)
    def test_invariant_nondominated_cover(self, inserted):
        plan_set = PlanSet()
        for index, vector in enumerate(inserted):
            plan_set.insert(vector, index)
        stored = plan_set.costs
        # Mutually non-dominated.
        for c1 in stored:
            for c2 in stored:
                if c1 is not c2:
                    assert not strictly_dominates(c1, c2) or c1 == c2
        # Every inserted vector is dominated by a stored one.
        for vector in inserted:
            assert any(dominates(c, vector) for c in stored)

    @given(vector_lists)
    @settings(max_examples=50, deadline=None)
    def test_growth_past_numpy_threshold(self, inserted):
        # Force exercising both the small-set Python path and the
        # vectorized path by inserting many incomparable vectors.
        plan_set = PlanSet()
        for index, (a, b, c) in enumerate(inserted):
            # Anti-correlated coordinates maximize incomparability.
            plan_set.insert((a, 100 - a + b * 0, c), index)
        for vector, _ in plan_set:
            assert plan_set.covers(vector)


class TestApproximatePlanSet:
    def test_rejects_approximately_dominated(self):
        plan_set = PlanSet(alpha=1.5)
        plan_set.insert((2.0, 2.0), "a")
        # (1.5, 1.5) is not dominated but approx-dominated at 1.5.
        assert not plan_set.insert((1.5, 1.5), "b")
        # (1.0, 3.0): 2.0 > 1.5 * 1.0 -> not approx-dominated.
        assert plan_set.insert((1.0, 3.0), "c")

    def test_deletion_stays_exact(self):
        # The RTA deletes only *exactly* dominated plans (Section 6.2).
        plan_set = PlanSet(alpha=2.0)
        plan_set.insert((3.0, 3.0), "a")
        plan_set.insert((1.0, 4.0), "b")  # kept: 3 > 2*1 in dim 0? no...
        # (1.0, 4.0): approx check 3 <= 2*1? no -> kept. It does not
        # dominate (3, 3), so both stay.
        assert len(plan_set) == 2

    @given(vector_lists, st.floats(1.0, 3.0))
    @settings(max_examples=80, deadline=None)
    def test_invariant_alpha_cover(self, inserted, alpha):
        plan_set = PlanSet(alpha=alpha)
        for index, vector in enumerate(inserted):
            plan_set.insert(vector, index)
        stored = plan_set.costs
        for vector in inserted:
            assert any(
                approx_dominates(c, vector, alpha * (1 + 1e-12))
                for c in stored
            )

    @given(vector_lists, st.floats(1.0, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_stores_no_more_than_exact(self, inserted, alpha):
        exact = PlanSet()
        approx = PlanSet(alpha=alpha)
        for index, vector in enumerate(inserted):
            exact.insert(vector, index)
            approx.insert(vector, index)
        assert len(approx) <= len(exact)


class TestAggressivePlanSet:
    # (1.0, 2.5) does not exactly dominate (2.0, 2.0) (2.5 > 2.0), but it
    # approximately dominates it at alpha = 1.5 (1.0 <= 3.0, 2.5 <= 3.0).
    # And (2.0, 2.0) does not approximately dominate (1.0, 2.5)
    # (2.0 > 1.5 * 1.0), so the insertion is accepted by both variants.

    def test_discards_approximately_dominated_entries(self):
        plan_set = AggressivePlanSet(alpha=1.5)
        plan_set.insert((2.0, 2.0), "a")
        assert plan_set.insert((1.0, 2.5), "b")
        assert [plan for _, plan in plan_set] == ["b"]

    def test_standard_set_keeps_that_entry(self):
        plan_set = PlanSet(alpha=1.5)
        plan_set.insert((2.0, 2.0), "a")
        assert plan_set.insert((1.0, 2.5), "b")
        assert len(plan_set) == 2  # (2,2) not *exactly* dominated


class TestSingleBestPlanSet:
    def test_keeps_minimum_weighted(self):
        plan_set = SingleBestPlanSet(weights=(1.0, 1.0))
        assert plan_set.insert((2, 2), "a")
        assert not plan_set.insert((3, 3), "b")
        assert plan_set.insert((1, 1), "c")
        assert len(plan_set) == 1
        assert plan_set.entries[0][1] == "c"

    def test_covers_semantics(self):
        plan_set = SingleBestPlanSet(weights=(1.0,))
        plan_set.insert((5.0,), "a")
        assert plan_set.covers((6.0,))
        assert not plan_set.covers((4.0,))

    def test_force_insert_keeps_minimum(self):
        # force_insert delegates to the weighted-minimum rule: the DP
        # only calls it after covers() returned False, so a worse plan
        # must never replace the stored optimum.
        plan_set = SingleBestPlanSet(weights=(1.0,))
        plan_set.force_insert((5.0,), "a")
        plan_set.force_insert((9.0,), "b")
        assert plan_set.entries[0][1] == "a"
        plan_set.force_insert((3.0,), "c")
        assert plan_set.entries[0][1] == "c"
