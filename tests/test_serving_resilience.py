"""Serving-layer resilience: client retries, drain, leader safety net.

Client retry behavior is tested against a scripted in-process TCP
server (exact control over resets, 429s and ``Retry-After`` headers);
drain and chaos-drop behavior run against the real
:class:`AsyncOptimizerServer` driven with ``asyncio.run`` (pytest-
asyncio is not installed, same idiom as ``test_serving_server.py``).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro import (
    Objective,
    OptimizationRequest,
    OptimizerService,
    Preferences,
)
from repro.plans.serialize import request_to_dict
from repro.resilience import ChaosConfig, ChaosInjector, RetryPolicy
from repro.serving import (
    AsyncHttpClient,
    AsyncOptimizerServer,
    ServerThread,
    post_optimize,
)
from repro.serving.protocol import (
    CODE_INTERNAL,
    CODE_OK,
    CODE_SHED,
    CODE_UNAVAILABLE,
    ProtocolError,
    shed_response,
)
from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0, Objective.TUPLE_LOSS: 1.0},
)

#: Backoff so small that any observable inter-attempt gap in the
#: Retry-After tests must come from the header, not the policy.
EAGER_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.001, max_delay_s=0.002
)


def make_payload(alpha: float = 1.5) -> dict:
    return request_to_dict(
        OptimizationRequest(
            query=make_chain_query(3),
            preferences=PREFS,
            algorithm="rta",
            alpha=alpha,
        )
    )


def make_service(**kwargs) -> OptimizerService:
    kwargs.setdefault("config", TINY_CONFIG)
    return OptimizerService(make_small_schema(), **kwargs)


# ----------------------------------------------------------------------
# Scripted TCP server: one scripted behavior per accepted connection
# ----------------------------------------------------------------------
def raw_response(
    status: int,
    reason: str,
    body: bytes,
    extra_headers: tuple = (),
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for name, value in extra_headers:
        head += f"{name}: {value}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("latin-1") + body


OK_BODY = b'{"status": "ok", "code": "ok"}'
SHED_BODY = shed_response().to_json().encode("utf-8")


def reset_script(conn: socket.socket) -> None:
    """Close the connection before sending anything (reset mid-exchange)."""
    conn.close()


def respond_script(payload: bytes):
    def script(conn: socket.socket) -> None:
        conn.settimeout(5.0)
        reader = conn.makefile("rb")
        length = 0
        while True:  # drain the request so the client never blocks
            line = reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length:
            reader.read(length)
        conn.sendall(payload)
        conn.close()

    return script


class ScriptedServer:
    """Runs one script per accepted connection, recording accept times."""

    def __init__(self, scripts) -> None:
        self.scripts = list(scripts)
        self.accept_times: list[float] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def _serve(self) -> None:
        for script in self.scripts:
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return
            self.accept_times.append(time.monotonic())
            try:
                script(conn)
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "ScriptedServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


# ----------------------------------------------------------------------
# Blocking-client retries
# ----------------------------------------------------------------------
class TestClientRetries:
    def test_no_retry_by_default_on_connection_reset(self):
        with ScriptedServer([reset_script]) as server:
            host, port = server.address
            # Depending on timing the reset surfaces as a protocol
            # error (empty status line) or an OS-level reset; without
            # a retry policy, either must reach the caller.
            with pytest.raises((ProtocolError, ConnectionError)):
                post_optimize(host, port, {"x": 1}, timeout=5.0)

    def test_retries_connection_reset_with_policy(self):
        scripts = [reset_script, reset_script, respond_script(
            raw_response(200, "OK", OK_BODY)
        )]
        with ScriptedServer(scripts) as server:
            host, port = server.address
            envelope, _body = post_optimize(
                host, port, {"x": 1}, timeout=5.0, retry=EAGER_RETRY
            )
        assert envelope.code == CODE_OK

    def test_retry_budget_exhaustion_reraises(self):
        scripts = [reset_script] * 4
        with ScriptedServer(scripts) as server:
            host, port = server.address
            with pytest.raises(ProtocolError):
                post_optimize(
                    host, port, {"x": 1}, timeout=5.0,
                    retry=RetryPolicy(
                        max_attempts=2, base_delay_s=0.001,
                        max_delay_s=0.002,
                    ),
                )

    def test_429_honors_retry_after_header(self):
        scripts = [
            respond_script(raw_response(
                429, "Too Many Requests", SHED_BODY,
                (("Retry-After", "0.25"),),
            )),
            respond_script(raw_response(200, "OK", OK_BODY)),
        ]
        with ScriptedServer(scripts) as server:
            host, port = server.address
            envelope, _body = post_optimize(
                host, port, {"x": 1}, timeout=5.0, retry=EAGER_RETRY
            )
            gap = server.accept_times[1] - server.accept_times[0]
        assert envelope.code == CODE_OK
        # The policy's own backoff is ~1ms; a quarter-second gap can
        # only come from honoring the header.
        assert gap >= 0.2

    def test_429_returns_final_envelope_when_retries_run_out(self):
        response = raw_response(
            429, "Too Many Requests", SHED_BODY, (("Retry-After", "0"),)
        )
        with ScriptedServer([respond_script(response)] * 3) as server:
            host, port = server.address
            envelope, _body = post_optimize(
                host, port, {"x": 1}, timeout=5.0,
                retry=RetryPolicy(
                    max_attempts=3, base_delay_s=0.001, max_delay_s=0.002
                ),
            )
            attempts = len(server.accept_times)
        assert envelope.code == CODE_SHED
        assert attempts == 3

    def test_429_without_retry_policy_is_returned_verbatim(self):
        response = raw_response(429, "Too Many Requests", SHED_BODY)
        with ScriptedServer([respond_script(response)]) as server:
            host, port = server.address
            envelope, _body = post_optimize(
                host, port, {"x": 1}, timeout=5.0
            )
        assert envelope.code == CODE_SHED


# ----------------------------------------------------------------------
# Async client against the real server: chaos response drops
# ----------------------------------------------------------------------
class TestChaosDrops:
    def test_async_client_retries_through_dropped_response(self):
        """A chaos 'drop' aborts the socket after the optimization ran;
        the retrying client reconnects and gets the (cached) result."""
        chaos = ChaosInjector(
            ChaosConfig(seed=1, drop_prob=1.0, max_faults=1)
        )
        service = make_service(chaos=chaos)
        server = AsyncOptimizerServer(service, owns_service=True)

        async def scenario():
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    envelope, _body = await client.optimize(
                        make_payload(), retry=EAGER_RETRY
                    )
                return envelope, server.metrics.snapshot()

        envelope, serving = asyncio.run(scenario())
        assert envelope.code == CODE_OK
        assert serving["drops"] == 1
        assert chaos.snapshot()["by_kind"] == {"drop": 1}

    def test_drop_without_retry_surfaces_to_the_caller(self):
        chaos = ChaosInjector(
            ChaosConfig(seed=1, drop_prob=1.0, max_faults=1)
        )
        service = make_service(chaos=chaos)
        server = AsyncOptimizerServer(service, owns_service=True)

        async def scenario():
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    with pytest.raises(
                        (ProtocolError, ConnectionError,
                         asyncio.IncompleteReadError)
                    ):
                        await client.optimize(make_payload())

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_draining_server_refuses_new_work_but_stays_observable(self):
        service = make_service()
        server = AsyncOptimizerServer(service, owns_service=True)

        async def scenario():
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    before, _ = await client.optimize(make_payload())
                    server._stopping = True  # enter the drain window
                    during, _ = await client.optimize(make_payload(1.7))
                    _status, health_body = await client.request(
                        "GET", "/healthz"
                    )
                    snapshot = server.metrics_snapshot()
            return before, during, health_body, snapshot

        before, during, health_body, snapshot = asyncio.run(scenario())
        assert before.code == CODE_OK
        assert during.code == CODE_UNAVAILABLE
        assert b'"draining"' in health_body
        assert snapshot["serving"]["drain_rejects"] == 1

    def test_clean_drain_returns_true(self):
        service = make_service()
        server = AsyncOptimizerServer(service, owns_service=True)

        async def scenario():
            await server.start()
            host, port = server.address
            async with AsyncHttpClient(host, port) as client:
                envelope, _ = await client.optimize(make_payload())
            assert envelope.code == CODE_OK
            return await server.stop(drain_timeout=5.0)

        assert asyncio.run(scenario()) is True

    def test_forced_drain_cancels_stragglers_and_returns_false(
        self, monkeypatch
    ):
        service = make_service()
        server = AsyncOptimizerServer(service, owns_service=True)
        release = threading.Event()

        def stuck_submit(request, **kwargs):
            release.wait(timeout=30.0)
            raise RuntimeError("stuck optimization released")

        monkeypatch.setattr(service, "submit", stuck_submit)

        async def scenario():
            await server.start()
            host, port = server.address
            async with AsyncHttpClient(host, port) as client:
                waiter = asyncio.ensure_future(
                    client.optimize(make_payload())
                )
                while not server._leader_tasks:  # leader is in flight
                    await asyncio.sleep(0.01)
                # Release the stuck executor thread shortly after the
                # drain deadline passes: stop() shuts the executor down
                # with wait=True (blocking the loop thread), so the
                # release must come from a plain timer thread.
                threading.Timer(0.5, release.set).start()
                clean = await server.stop(drain_timeout=0.1)
                waiter.cancel()
                try:
                    await waiter
                except (asyncio.CancelledError, Exception):
                    pass
            return clean

        assert asyncio.run(scenario()) is False


# ----------------------------------------------------------------------
# `repro serve` drain flags and signal handling
# ----------------------------------------------------------------------
class TestServeCli:
    def test_serve_parser_accepts_resilience_flags(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--drain-timeout", "2.5", "--chaos", "kill=0.1,seed=3"]
        )
        assert args.drain_timeout == 2.5
        assert args.chaos == "kill=0.1,seed=3"

    def test_sigterm_drains_and_exits_zero(self):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = Path(repro.__file__).resolve().parent.parent
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--port", "0", "--fast", "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src_dir)},
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner, banner
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
        assert process.returncode == 0, output
        assert "draining" in output


# ----------------------------------------------------------------------
# Coalescer leader-death safety net
# ----------------------------------------------------------------------
class TestLeaderSafetyNet:
    def test_dead_leader_fails_waiters_promptly(self, monkeypatch):
        """Regression: a leader task that dies without touching the
        coalescer must not strand its own connection (or followers) on
        a future nobody owns."""

        async def doomed_leader(self, request, fingerprint, arrival):
            raise RuntimeError("leader died before publishing")

        monkeypatch.setattr(
            AsyncOptimizerServer, "_run_leader", doomed_leader
        )
        service = make_service()
        server = AsyncOptimizerServer(service, owns_service=True)

        async def scenario():
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    return await asyncio.wait_for(
                        client.optimize(make_payload()), timeout=5.0
                    )

        envelope, _body = asyncio.run(scenario())
        assert envelope.code == CODE_INTERNAL
        assert "leader died" in envelope.error

    def test_leader_exception_is_not_left_unretrieved(self, monkeypatch):
        """The done-callback retrieves the task exception, so asyncio
        never logs 'exception was never retrieved' for leader crashes."""

        async def doomed_leader(self, request, fingerprint, arrival):
            raise RuntimeError("boom")

        monkeypatch.setattr(
            AsyncOptimizerServer, "_run_leader", doomed_leader
        )
        service = make_service()
        server = AsyncOptimizerServer(service, owns_service=True)
        seen: list = []

        async def scenario():
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, ctx: seen.append(ctx)
            )
            async with server:
                host, port = server.address
                async with AsyncHttpClient(host, port) as client:
                    await client.optimize(make_payload())
            # Give the loop a beat to report unretrieved exceptions.
            await asyncio.sleep(0)

        asyncio.run(scenario())
        assert seen == []
