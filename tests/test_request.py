"""OptimizationRequest: declarative validation and cache fingerprints."""

import dataclasses

import pytest

from repro import (
    FAST_CONFIG,
    MultiBlockQuery,
    Objective,
    OptimizationRequest,
    OptimizerConfig,
    Preferences,
    single_block,
    tpch_query,
)
from repro.exceptions import (
    InvalidPrecisionError,
    OptimizerError,
    RequestValidationError,
)

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0},
)


def make_request(**overrides) -> OptimizationRequest:
    fields = dict(query=tpch_query(3), preferences=PREFS, algorithm="rta",
                  alpha=1.5)
    fields.update(overrides)
    return OptimizationRequest(**fields)


class TestValidation:
    def test_plain_block_normalized_to_multi_block(self, chain2):
        request = make_request(query=chain2)
        assert isinstance(request.query, MultiBlockQuery)
        assert request.query_name == chain2.name

    def test_unknown_algorithm(self):
        with pytest.raises(OptimizerError, match="unknown algorithm"):
            make_request(algorithm="magic")

    def test_selinger_needs_single_objective(self):
        with pytest.raises(OptimizerError, match="exactly one"):
            make_request(algorithm="selinger")

    def test_alpha_below_one_rejected_for_approximation_schemes(self):
        with pytest.raises(InvalidPrecisionError):
            make_request(algorithm="rta", alpha=0.9)
        with pytest.raises(InvalidPrecisionError):
            make_request(algorithm="ira", alpha=0.5)

    def test_alpha_ignored_for_exact_algorithms(self):
        # exa does not consume alpha; nonsense values must not fail.
        request = make_request(algorithm="exa", alpha=0.1)
        assert request.algorithm == "exa"

    def test_bad_preferences_type(self):
        with pytest.raises(RequestValidationError, match="Preferences"):
            make_request(preferences={"weights": 1.0})

    def test_bad_query_type(self):
        with pytest.raises(RequestValidationError, match="query"):
            make_request(query="SELECT 1")

    def test_bad_config_type(self):
        with pytest.raises(RequestValidationError, match="OptimizerConfig"):
            make_request(config="fast")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(RequestValidationError, match="timeout"):
            make_request(timeout_seconds=0.0)
        with pytest.raises(RequestValidationError, match="timeout"):
            make_request(timeout_seconds=-1.0)

    def test_strict_requires_capability(self):
        # exa/rta/ira implement the strict closure; the baselines don't.
        assert make_request(algorithm="rta", strict=True).strict
        assert make_request(algorithm="exa", strict=True).strict
        for algorithm in ("wsum", "idp"):
            with pytest.raises(RequestValidationError, match="strict"):
                make_request(algorithm=algorithm, strict=True)

    def test_tags_normalized_and_validated(self):
        request = make_request(tags=["a", "b"])
        assert request.tags == ("a", "b")
        with pytest.raises(RequestValidationError, match="tags"):
            make_request(tags=(1, 2))

    def test_requests_are_immutable(self):
        request = make_request()
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.alpha = 2.0

    def test_replace_revalidates(self):
        request = make_request()
        assert request.replace(alpha=2.0).alpha == 2.0
        with pytest.raises(OptimizerError):
            request.replace(algorithm="selinger")


class TestEffectiveConfig:
    def test_default_passthrough(self):
        request = make_request()
        assert request.effective_config(FAST_CONFIG) is FAST_CONFIG

    def test_request_config_wins(self):
        request = make_request(config=FAST_CONFIG)
        other = OptimizerConfig()
        assert request.effective_config(other) is FAST_CONFIG

    def test_timeout_overrides_config_timeout(self):
        request = make_request(timeout_seconds=7.0)
        resolved = request.effective_config(FAST_CONFIG)
        assert resolved.timeout_seconds == 7.0
        assert resolved.dop_values == FAST_CONFIG.dop_values


class TestFingerprint:
    def test_identical_requests_agree(self):
        assert make_request().fingerprint() == make_request().fingerprint()

    def test_alpha_changes_fingerprint(self):
        assert (
            make_request(alpha=1.5).fingerprint()
            != make_request(alpha=2.0).fingerprint()
        )

    def test_alpha_normalized_away_for_exact_algorithms(self):
        a = make_request(algorithm="exa", alpha=1.5)
        b = make_request(algorithm="exa", alpha=2.0)
        assert a.fingerprint() == b.fingerprint()

    def test_tags_do_not_affect_fingerprint(self):
        assert (
            make_request(tags=("tenant-a",)).fingerprint()
            == make_request(tags=("tenant-b",)).fingerprint()
        )

    def test_preference_order_canonicalized(self):
        flipped = Preferences.from_maps(
            (Objective.TUPLE_LOSS, Objective.TOTAL_TIME),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        assert (
            make_request(preferences=flipped).fingerprint()
            == make_request().fingerprint()
        )

    def test_stripped_bounds_normalized_away(self):
        # rta strips bounds before running, so a bounded request computes
        # the identical plan and must share the cache entry.
        bounded = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.5},
        )
        assert (
            make_request(preferences=bounded).fingerprint()
            == make_request().fingerprint()
        )
        # ira honors bounds natively -> the bound must split the key.
        assert (
            make_request(algorithm="ira", preferences=bounded).fingerprint()
            != make_request(algorithm="ira").fingerprint()
        )

    def test_strict_mode_changes_fingerprint(self):
        assert (
            make_request(strict=True).fingerprint()
            != make_request().fingerprint()
        )

    def test_config_override_changes_fingerprint(self):
        assert (
            make_request(config=FAST_CONFIG).fingerprint()
            != make_request().fingerprint()
        )

    def test_default_config_parameter_distinguishes_services(self):
        request = make_request()
        assert (
            request.fingerprint(FAST_CONFIG)
            != request.fingerprint(OptimizerConfig())
        )

    def test_query_changes_fingerprint(self):
        assert (
            make_request(query=tpch_query(5)).fingerprint()
            != make_request().fingerprint()
        )


class TestCanonicalization:
    """The hashable/canonicalizable building blocks under the fingerprint."""

    def test_preferences_hashable_and_equal(self):
        a = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        b = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_preferences_fingerprint_sorted_by_objective_index(self):
        flipped = Preferences.from_maps(
            (Objective.TUPLE_LOSS, Objective.TOTAL_TIME),
            weights={Objective.TOTAL_TIME: 1.0},
        )
        assert flipped.fingerprint() == PREFS.fingerprint()
        items = PREFS.canonical_items()
        assert items == tuple(sorted(items))

    def test_preferences_fingerprint_distinguishes_bounds(self):
        bounded = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.5},
        )
        assert bounded.fingerprint() != PREFS.fingerprint()

    def test_config_hashable(self):
        assert hash(OptimizerConfig()) == hash(OptimizerConfig())
        assert len({OptimizerConfig(), OptimizerConfig()}) == 1

    def test_config_fingerprint_order_normalized(self):
        a = OptimizerConfig(dop_values=(1, 2))
        b = OptimizerConfig(dop_values=(2, 1))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != OptimizerConfig(dop_values=(1,)).fingerprint()

    def test_config_fingerprint_includes_timeout(self):
        assert (
            OptimizerConfig().fingerprint()
            != OptimizerConfig(timeout_seconds=5.0).fingerprint()
        )

    def test_plain_block_and_wrapper_fingerprint_identically(self, chain2):
        direct = make_request(query=chain2)
        wrapped = make_request(query=single_block(chain2))
        assert direct.fingerprint() == wrapped.fingerprint()
