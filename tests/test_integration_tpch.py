"""Integration: the full optimizer across the complete TPC-H workload."""

import pytest

from repro import Objective, Preferences, tpch_query
from repro.cost.objectives import ALL_OBJECTIVES
from repro.query.tpch_queries import ALL_QUERY_NUMBERS

THREE = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@pytest.mark.parametrize("number", ALL_QUERY_NUMBERS)
def test_rta_optimizes_every_tpch_query(tpch_optimizer, number):
    """RTA produces a plan covering all tables of every query block."""
    query = tpch_query(number)
    prefs = Preferences(objectives=THREE, weights=(1.0, 1e-6, 10.0))
    result = tpch_optimizer.optimize(
        query, prefs, algorithm="rta", alpha=2.0,
        config=tpch_optimizer.config.with_timeout(20.0),
    )
    assert result.plan is not None
    assert not result.timed_out, f"q{number} timed out"
    # The main-block plan joins all its tables.
    main = query.main_block
    assert result.block_results == () or len(result.block_results) == len(
        query.blocks
    )
    plan = result.plan
    assert plan.aliases == frozenset(main.aliases)
    assert result.weighted_cost > 0


@pytest.mark.parametrize("number", [1, 6, 12, 3, 10])
def test_ira_with_loss_bound_never_samples(tpch_optimizer, number):
    prefs = Preferences.from_maps(
        THREE,
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={Objective.TUPLE_LOSS: 0.0},
    )
    result = tpch_optimizer.optimize(
        tpch_query(number), prefs, algorithm="ira", alpha=1.5,
        config=tpch_optimizer.config.with_timeout(20.0),
    )
    assert result.cost_of(Objective.TUPLE_LOSS) == 0.0
    for block_result in result.block_results or (result,):
        labels = " ".join(block_result.plan.operator_labels())
        assert "SampleScan" not in labels


def test_nine_objectives_on_q3(tpch_optimizer):
    prefs = Preferences(objectives=ALL_OBJECTIVES, weights=tuple([1.0] * 9))
    result = tpch_optimizer.optimize(
        tpch_query(3), prefs, algorithm="rta", alpha=1.5
    )
    assert len(result.plan_cost) == 9
    assert result.plan is not None


def test_frontier_grows_with_finer_precision(tpch_optimizer):
    prefs = Preferences(objectives=THREE, weights=(1.0, 1e-6, 10.0))
    coarse = tpch_optimizer.optimize(
        tpch_query(5), prefs, algorithm="rta", alpha=2.0,
        config=tpch_optimizer.config.with_timeout(30.0),
    )
    fine = tpch_optimizer.optimize(
        tpch_query(5), prefs, algorithm="rta", alpha=1.25,
        config=tpch_optimizer.config.with_timeout(30.0),
    )
    # Figure 4: the finer approximation reveals at least as many plans.
    assert len(fine.frontier) >= len(coarse.frontier)


def test_weighted_cost_monotone_in_alpha_guarantee(tpch_optimizer):
    """Plans from finer alpha are never worse beyond the guarantees."""
    prefs = Preferences(objectives=THREE, weights=(1.0, 1e-6, 10.0))
    results = {
        alpha: tpch_optimizer.optimize(
            tpch_query(10), prefs, algorithm="rta", alpha=alpha,
            config=tpch_optimizer.config.with_timeout(30.0),
        )
        for alpha in (1.05, 2.0)
    }
    assert (
        results[2.0].weighted_cost
        <= results[1.05].weighted_cost * 2.0 / 1.05 + 1e-9
    )
