"""Tests for cost-vector primitives, incl. hypothesis property tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cost.vector import (
    approx_dominates,
    dominates,
    max_ratio,
    pareto_filter,
    project,
    respects_bounds,
    respects_relaxed_bounds,
    strictly_dominates,
    weighted_cost,
)

costs = st.tuples(*([st.floats(0, 1e6, allow_nan=False)] * 3))
alphas = st.floats(1.0, 10.0)


class TestDominance:
    def test_dominates_examples(self):
        assert dominates((1, 2), (1, 3))
        assert dominates((1, 2), (1, 2))
        assert not dominates((1, 4), (2, 3))

    def test_strict_excludes_equal(self):
        assert not strictly_dominates((1, 2), (1, 2))
        assert strictly_dominates((1, 1), (1, 2))

    def test_paper_example_1(self):
        # (7, 1) and (1, 3) are incomparable (Example 1 of the paper).
        assert not dominates((7, 1), (1, 3))
        assert not dominates((1, 3), (7, 1))

    @given(costs)
    def test_reflexive(self, c):
        assert dominates(c, c)
        assert not strictly_dominates(c, c)

    @given(costs, costs)
    def test_antisymmetry(self, c1, c2):
        if strictly_dominates(c1, c2):
            assert not strictly_dominates(c2, c1)

    @given(costs, costs, costs)
    def test_transitive(self, c1, c2, c3):
        if dominates(c1, c2) and dominates(c2, c3):
            assert dominates(c1, c3)


class TestApproxDominance:
    def test_alpha_one_is_exact(self):
        assert approx_dominates((1, 2), (1, 2), 1.0)
        assert not approx_dominates((1.001, 2), (1, 2), 1.0)

    def test_paper_definition(self):
        # c1 approx-dominates c2 iff c1[o] <= alpha * c2[o] for all o.
        assert approx_dominates((3, 1.5), (2, 1), 1.5)
        assert not approx_dominates((3.1, 1.5), (2, 1), 1.5)

    @given(costs, alphas)
    def test_self_approx(self, c, alpha):
        assert approx_dominates(c, c, alpha)

    @given(costs, costs, alphas)
    def test_dominance_implies_approx(self, c1, c2, alpha):
        if dominates(c1, c2):
            assert approx_dominates(c1, c2, alpha)

    @given(costs, costs)
    def test_max_ratio_is_tight(self, c1, c2):
        ratio = max_ratio(c1, c2)
        if ratio != math.inf:
            assert approx_dominates(c1, c2, ratio * (1 + 1e-9) + 1e-12)
            if ratio > 1.0:
                assert not approx_dominates(c1, c2, ratio * (1 - 1e-6))

    def test_max_ratio_zero_denominator(self):
        assert max_ratio((1, 0), (0, 1)) == math.inf
        assert max_ratio((0, 0.5), (0, 1)) == 1.0


class TestWeightedCost:
    def test_example(self):
        assert weighted_cost((7, 3), (1, 2)) == 13.0

    @given(costs, costs)
    def test_dominance_implies_cheaper(self, c1, c2):
        weights = (1.0, 0.5, 2.0)
        if dominates(c1, c2):
            assert weighted_cost(c1, weights) <= weighted_cost(c2, weights)

    def test_zero_weights(self):
        assert weighted_cost((5, 5), (0, 0)) == 0.0


class TestBounds:
    def test_respects(self):
        assert respects_bounds((1, 2), (1, 2))
        assert not respects_bounds((1, 2.1), (1, 2))
        assert respects_bounds((1e9, 1), (math.inf, 2))

    def test_relaxed(self):
        assert not respects_bounds((3, 1), (2, 2))
        assert respects_relaxed_bounds((3, 1), (2, 2), 1.5)
        assert respects_relaxed_bounds((1e9, 1), (math.inf, 2), 1.5)


class TestProject:
    def test_projection(self):
        assert project((10, 20, 30), (2, 0)) == (30, 10)

    def test_empty(self):
        assert project((1, 2), ()) == ()


class TestParetoFilter:
    def test_small_example(self):
        vectors = [(1, 3), (2, 2), (3, 1), (2, 3), (3, 3)]
        assert set(pareto_filter(vectors)) == {(1, 3), (2, 2), (3, 1)}

    def test_duplicates_collapsed(self):
        assert pareto_filter([(1, 1), (1, 1)]) == [(1.0, 1.0)]

    def test_empty(self):
        assert pareto_filter([]) == []

    @given(st.lists(costs, min_size=1, max_size=30))
    def test_frontier_is_nondominated_and_covering(self, vectors):
        frontier = pareto_filter(vectors)
        # No frontier vector strictly dominates another.
        for f1 in frontier:
            for f2 in frontier:
                assert not strictly_dominates(f1, f2)
        # Every vector is dominated by some frontier vector.
        for vector in vectors:
            assert any(dominates(f, vector) for f in frontier)
