"""IRA guarantees: bounded-weighted MOQO near-optimality (Theorem 6)."""

import random

import pytest

from repro import INFINITY, Objective, Preferences
from repro.core.ira import (
    halving_policy,
    ira,
    iteration_precision,
    slow_policy,
)
from repro.cost.model import CostModel
from repro.cost.vector import project, respects_bounds, weighted_cost
from repro.exceptions import InvalidPrecisionError

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    all_plans = enumerate_all_plans(query, model, TINY_CONFIG)
    return model, query, all_plans


class TestIterationPrecision:
    def test_strictly_decreasing(self):
        values = [iteration_precision(2.0, i, 3) for i in range(1, 30)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_starts_near_alpha_u(self):
        # First iteration is coarse: close to alpha_U.
        assert iteration_precision(2.0, 1, 9) > 1.9

    def test_converges_to_one(self):
        assert iteration_precision(2.0, 10_000, 3) == pytest.approx(1.0)

    def test_single_objective_degenerate(self):
        # 3l - 3 = 0 is clamped; must stay finite and decreasing.
        assert iteration_precision(2.0, 1, 1) < 2.0

    def test_matches_theorem7_doubling(self):
        # log(1/log alpha_i) should grow ~ i/(3l-3) * log 2, i.e. the
        # per-iteration work bound doubles each iteration.
        import math

        l = 3
        ratios = []
        for i in range(1, 6):
            a_i = iteration_precision(2.0, i, l)
            a_next = iteration_precision(2.0, i + 1, l)
            ratios.append(
                (1 / math.log(a_next)) ** (3 * l - 3)
                / (1 / math.log(a_i)) ** (3 * l - 3)
            )
        for ratio in ratios:
            assert ratio == pytest.approx(2.0, rel=1e-6)


def _random_bounded_prefs(all_plans, indices, rng, tightness=1.2):
    """Bounds anchored at a random plan so feasible plans exist."""
    weights = tuple(rng.uniform(0.1, 1.0) for _ in OBJECTIVES)
    anchor = project(rng.choice(all_plans).cost, indices)
    bounds = tuple(
        c * tightness + 1e-9 if i != 2 else min(1.0, c + 0.01)
        for i, c in enumerate(anchor)
    )
    return Preferences(objectives=OBJECTIVES, weights=weights, bounds=bounds)


@pytest.mark.parametrize("alpha", [1.15, 1.5, 2.0])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_ira_is_alpha_approximate(setup, alpha, seed):
    model, query, all_plans = setup
    rng = random.Random(seed)
    prefs = Preferences(
        objectives=OBJECTIVES,
        weights=tuple(rng.uniform(0.1, 1.0) for _ in OBJECTIVES),
        bounds=_random_bounded_prefs(
            all_plans, (0, 6, 8), rng
        ).bounds,
    )
    result = ira(query, model, prefs, alpha, TINY_CONFIG)

    projected = [project(p.cost, prefs.indices) for p in all_plans]
    feasible = [c for c in projected if respects_bounds(c, prefs.bounds)]
    if feasible:
        optimum = min(weighted_cost(c, prefs.weights) for c in feasible)
        assert result.respects_bounds
    else:
        optimum = min(weighted_cost(c, prefs.weights) for c in projected)
    if optimum > 0:
        assert result.weighted_cost <= optimum * alpha * (1 + 1e-9)


def test_ira_without_bounds_behaves_like_rta(setup):
    model, query, _ = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 0.5, 2.0))
    result = ira(query, model, prefs, 1.5, TINY_CONFIG)
    # Unbounded instances terminate after the first iteration.
    assert result.iterations == 1


def test_ira_zero_loss_bound_disables_sampling(setup):
    model, query, _ = setup
    prefs = Preferences(
        objectives=OBJECTIVES,
        weights=(1.0, 0.0, 0.0),
        bounds=(INFINITY, INFINITY, 0.0),
    )
    result = ira(query, model, prefs, 2.0, TINY_CONFIG)
    assert result.cost_of(Objective.TUPLE_LOSS) == 0.0
    assert "SampleScan" not in " ".join(result.plan.operator_labels())


def test_ira_tight_bounds_need_refinement(setup):
    """A bound just above the feasible optimum can force iterations."""
    model, query, all_plans = setup
    indices = (0, 6, 8)
    projected = [project(p.cost, indices) for p in all_plans]
    # Tight time bound: only a thin slice of plans qualifies.
    feasible_times = sorted(c[0] for c in projected)
    bound = feasible_times[1] * 1.0001
    prefs = Preferences(
        objectives=OBJECTIVES,
        weights=(0.0, 1e-9, 1.0),
        bounds=(bound, INFINITY, INFINITY),
    )
    result = ira(query, model, prefs, 1.5, TINY_CONFIG)
    assert result.respects_bounds
    feasible = [
        weighted_cost(c, prefs.weights)
        for c in projected
        if respects_bounds(c, prefs.bounds)
    ]
    assert result.weighted_cost <= min(feasible) * 1.5 + 1e-12


def test_ira_infeasible_bounds_fall_back_to_weighted(setup):
    model, query, all_plans = setup
    prefs = Preferences(
        objectives=OBJECTIVES,
        weights=(1.0, 0.0, 0.0),
        bounds=(1e-6, 1e-6, 0.0),  # impossible
    )
    result = ira(query, model, prefs, 1.5, TINY_CONFIG)
    assert result.plan is not None
    assert not result.respects_bounds  # nothing can respect these bounds


def test_ira_rejects_bad_alpha(setup):
    model, query, _ = setup
    prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
    with pytest.raises(InvalidPrecisionError):
        ira(query, model, prefs, 0.9, TINY_CONFIG)


def test_ira_terminates_within_max_iterations(setup):
    model, query, _ = setup
    prefs = Preferences(
        objectives=OBJECTIVES,
        weights=(1.0, 1.0, 1.0),
        bounds=(1e-3, 1e-3, 0.5),
    )
    result = ira(query, model, prefs, 1.01, TINY_CONFIG, max_iterations=8)
    assert result.iterations <= 8


class TestRefinementPolicies:
    @pytest.mark.parametrize(
        "policy", [iteration_precision, halving_policy, slow_policy]
    )
    def test_policies_decrease(self, policy):
        values = [policy(2.0, i, 3) for i in range(1, 15)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert all(v >= 1.0 for v in values)

    def test_policies_preserve_guarantee(self, setup):
        model, query, all_plans = setup
        rng = random.Random(42)
        prefs = _random_bounded_prefs(all_plans, (0, 6, 8), rng)
        alpha = 1.5
        projected = [project(p.cost, prefs.indices) for p in all_plans]
        feasible = [
            c for c in projected if respects_bounds(c, prefs.bounds)
        ]
        optimum = min(
            weighted_cost(c, prefs.weights)
            for c in (feasible if feasible else projected)
        )
        for policy in (iteration_precision, halving_policy, slow_policy):
            result = ira(
                query, model, prefs, alpha, TINY_CONFIG,
                precision_policy=policy,
            )
            if optimum > 0:
                assert result.weighted_cost <= optimum * alpha * (1 + 1e-9)
