"""Tests for the objective registry and instrumentation counters."""

import pytest

from repro.core.instrumentation import BASE_MEMORY_KB, Counters
from repro.cost.objectives import (
    ALL_OBJECTIVES,
    NUM_OBJECTIVES,
    Objective,
    objective_indices,
    parse_objective,
)
from repro.plans.plan import PLAN_BYTES


class TestObjectiveRegistry:
    def test_nine_objectives(self):
        assert NUM_OBJECTIVES == 9
        assert len(ALL_OBJECTIVES) == 9

    def test_vector_layout_is_dense(self):
        assert [o.index for o in ALL_OBJECTIVES] == list(range(9))

    def test_only_tuple_loss_bounded(self):
        bounded = [o for o in ALL_OBJECTIVES if o.bounded_domain]
        assert bounded == [Objective.TUPLE_LOSS]
        assert Objective.TUPLE_LOSS.bounded_domain == (0.0, 1.0)

    def test_units_and_descriptions(self):
        for objective in ALL_OBJECTIVES:
            assert objective.unit
            assert objective.description

    def test_objective_indices(self):
        indices = objective_indices(
            (Objective.ENERGY, Objective.TOTAL_TIME)
        )
        assert indices == (7, 0)

    def test_objective_indices_rejects_duplicates(self):
        with pytest.raises(ValueError):
            objective_indices((Objective.ENERGY, Objective.ENERGY))

    def test_parse_objective(self):
        assert parse_objective("total_time") is Objective.TOTAL_TIME
        assert parse_objective("TUPLE_LOSS") is Objective.TUPLE_LOSS
        with pytest.raises(ValueError):
            parse_objective("latency")


class TestCounters:
    def test_set_size_tracking(self):
        counters = Counters()
        counters.record_set_size(1, 10)
        counters.record_set_size(2, 5)
        assert counters.plans_stored == 15
        assert counters.plans_stored_peak == 15
        counters.record_set_size(1, 3)  # pruning shrank a set
        assert counters.plans_stored == 8
        assert counters.plans_stored_peak == 15

    def test_complete_table_set(self):
        counters = Counters()
        counters.complete_table_set(1, 4)
        counters.complete_table_set(3, 9)
        assert counters.pareto_last_complete == 9
        assert counters.table_sets_completed == 2

    def test_fallback_sets_not_counted_as_complete(self):
        counters = Counters()
        counters.complete_table_set(1, 7)
        counters.complete_table_set(3, 1, fallback=True)
        assert counters.pareto_last_complete == 7
        assert counters.table_sets_completed == 2

    def test_memory_accounting(self):
        counters = Counters()
        counters.record_set_size(1, 100)
        expected = BASE_MEMORY_KB + 100 * PLAN_BYTES / 1024.0
        assert counters.memory_kb == pytest.approx(expected)

    def test_merge_peak(self):
        first = Counters()
        first.plans_considered = 10
        first.record_set_size(1, 50)
        second = Counters()
        second.plans_considered = 7
        second.record_set_size(1, 80)
        second.timed_out = True
        first.merge_peak(second)
        assert first.plans_considered == 17
        assert first.plans_stored_peak == 80
        assert first.timed_out
