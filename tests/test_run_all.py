"""The run_all reproduction runner (fast figures only)."""

import pytest

from repro.bench.run_all import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.figures == "1,3,4,5,7,9,10"
        assert args.cases is None

    def test_custom_scale(self):
        args = build_parser().parse_args(
            ["--cases", "20", "--timeout", "7200", "--figures", "9"]
        )
        assert args.cases == 20
        assert args.timeout == 7200.0


class TestRunner:
    def test_fast_figures(self, tmp_path, capsys):
        exit_code = main([
            "--figures", "1,7",
            "--output", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "running example" in captured.out
        assert "complexity curves" in captured.out
        assert (tmp_path / "run_all_fig1.txt").exists()
        assert (tmp_path / "run_all_fig7.txt").exists()

    def test_figure3(self, tmp_path, capsys):
        exit_code = main(["--figures", "3", "--output", str(tmp_path)])
        assert exit_code == 0
        text = (tmp_path / "run_all_fig3.txt").read_text()
        assert "HashJoin" in text
        assert "IdxNL" in text

    def test_small_figure5(self, tmp_path, capsys):
        import os

        # Restrict to the two fastest queries via the env override.
        os.environ["REPRO_BENCH_QUERIES"] = "1,6"
        try:
            exit_code = main([
                "--figures", "5",
                "--cases", "1",
                "--timeout", "2",
                "--output", str(tmp_path),
            ])
        finally:
            del os.environ["REPRO_BENCH_QUERIES"]
        assert exit_code == 0
        text = (tmp_path / "run_all_fig5.txt").read_text()
        assert "EXA" in text and "q1/l=1" in text
