"""Execution engine: datagen statistics and plan execution fidelity."""

import pytest

from repro import (
    FAST_CONFIG,
    JoinPredicate,
    MultiObjectiveOptimizer,
    Objective,
    Preferences,
    Query,
    TableRef,
)
from repro.engine import DataGenerator, Executor
from repro.engine.executor import ExecutionError

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema


@pytest.fixture(scope="module")
def schema():
    return make_small_schema()


@pytest.fixture(scope="module")
def generator(schema):
    return DataGenerator(schema, seed=7)


class TestDataGenerator:
    def test_row_count(self, generator):
        assert len(generator.materialize("users")) == 200

    def test_key_columns_unique(self, generator):
        rows = generator.materialize("orders")
        keys = {row["order_id"] for row in rows}
        assert len(keys) == len(rows)

    def test_distinct_counts_respected(self, generator, schema):
        rows = generator.materialize("orders")
        statuses = {row["status"] for row in rows}
        assert len(statuses) <= schema.table("orders").column(
            "status"
        ).n_distinct

    def test_deterministic(self, schema):
        g1 = DataGenerator(schema, seed=5)
        g2 = DataGenerator(schema, seed=5)
        assert g1.materialize("users") == g2.materialize("users")

    def test_foreign_keys_join(self, generator):
        users = {row["user_id"] for row in generator.rows("users")}
        orders = generator.materialize("orders")
        matching = sum(1 for row in orders if row["user_id"] in users)
        # FK values are drawn from the users key domain.
        assert matching == len(orders)


class TestExecutor:
    @pytest.fixture(scope="class")
    def optimized(self, schema):
        query = Query(
            "exec_q",
            (TableRef("users", "users"), TableRef("orders", "orders")),
            joins=(JoinPredicate("users", "user_id", "orders", "user_id"),),
        )
        optimizer = MultiObjectiveOptimizer(schema, config=TINY_CONFIG)
        prefs = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 1.0},
            bounds={Objective.TUPLE_LOSS: 0.0},
        )
        result = optimizer.optimize(query, prefs, algorithm="ira", alpha=1.1)
        return query, result

    def test_cardinality_estimate_tracks_execution(self, schema, generator,
                                                   optimized):
        query, result = optimized
        executor = Executor(generator, query, seed=7)
        rows = executor.execute(result.plan)
        # FK join: every order matches exactly one user -> 1000 rows.
        assert len(rows) == 1000
        assert result.plan.rows == pytest.approx(len(rows), rel=0.05)

    def test_output_columns_prefixed(self, schema, generator, optimized):
        query, result = optimized
        executor = Executor(generator, query, seed=7)
        rows = executor.execute(result.plan)
        assert "users.user_id" in rows[0]
        assert "orders.order_id" in rows[0]

    def test_join_correctness(self, schema, generator, optimized):
        query, result = optimized
        executor = Executor(generator, query, seed=7)
        for row in executor.execute(result.plan)[:100]:
            assert row["users.user_id"] == row["orders.user_id"]

    def test_all_join_methods_equivalent(self, schema, generator):
        """Different operators must produce the same result set."""
        from repro.cost.model import CostModel
        from repro.plans.operators import (
            JoinMethod,
            JoinSpec,
            ScanMethod,
            ScanSpec,
        )

        query = Query(
            "methods_q",
            (TableRef("users", "users"), TableRef("orders", "orders")),
            joins=(JoinPredicate("users", "user_id", "orders", "user_id"),),
        )
        model = CostModel(schema)
        left = model.scan_plan(query, "users",
                               ScanSpec(method=ScanMethod.SEQ))
        right = model.scan_plan(query, "orders",
                                ScanSpec(method=ScanMethod.SEQ))
        executor = Executor(generator, query, seed=7)
        sizes = set()
        for method in (JoinMethod.HASH, JoinMethod.MERGE,
                       JoinMethod.NESTED_LOOP):
            plan = model.join_plan(
                query, JoinSpec(method), left, right, query.joins
            )
            sizes.add(len(executor.execute(plan)))
        assert len(sizes) == 1

    def test_index_nested_loop_execution(self, schema, generator):
        from repro.cost.model import CostModel
        from repro.plans.operators import (
            JoinMethod,
            JoinSpec,
            ScanMethod,
            ScanSpec,
        )

        query = Query(
            "inl_q",
            (TableRef("users", "users"), TableRef("orders", "orders")),
            joins=(JoinPredicate("users", "user_id", "orders", "user_id"),),
        )
        model = CostModel(schema)
        left = model.scan_plan(query, "users",
                               ScanSpec(method=ScanMethod.SEQ))
        probe = model.index_probe_plan(query, "orders", "orders_user_idx",
                                       "user_id")
        plan = model.join_plan(
            query, JoinSpec(JoinMethod.INDEX_NESTED_LOOP), left, probe,
            query.joins,
        )
        executor = Executor(generator, query, seed=7)
        assert len(executor.execute(plan)) == 1000

    def test_sampling_scan_thins_output(self, schema, generator):
        from repro.cost.model import CostModel
        from repro.plans.operators import ScanMethod, ScanSpec

        query = Query("s_q", (TableRef("orders", "orders"),))
        model = CostModel(schema)
        plan = model.scan_plan(
            query, "orders",
            ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=0.05),
        )
        executor = Executor(generator, query, seed=7)
        rows = executor.execute(plan)
        # Bernoulli 5% of 1000 rows: statistically within [20, 90].
        assert 20 <= len(rows) <= 90

    def test_filters_thin_to_selectivity(self, schema, generator):
        query = make_chain_query(1)  # users with country filter 0.3
        from repro.cost.model import CostModel
        from repro.plans.operators import ScanMethod, ScanSpec

        model = CostModel(schema)
        plan = model.scan_plan(query, "users",
                               ScanSpec(method=ScanMethod.SEQ))
        executor = Executor(generator, query, seed=7)
        rows = executor.execute(plan)
        # 200 rows at selectivity 0.3 -> about 60 (value-keyed draws
        # over 10 distinct countries make this coarse).
        assert 20 <= len(rows) <= 120

    def test_unsupported_node_rejected(self, generator):
        query = make_chain_query(1)
        executor = Executor(generator, query, seed=7)
        with pytest.raises(ExecutionError):
            executor.execute(object())


class TestExecutorEdgeCases:
    @staticmethod
    def _hash_join_plan(model, query, predicates=None):
        from repro.plans.operators import (
            JoinMethod,
            JoinSpec,
            ScanMethod,
            ScanSpec,
        )

        left = model.scan_plan(query, "users",
                               ScanSpec(method=ScanMethod.SEQ))
        right = model.scan_plan(query, "orders",
                                ScanSpec(method=ScanMethod.SEQ))
        return model.join_plan(
            query, JoinSpec(JoinMethod.HASH, dop=1), left, right,
            query.joins if predicates is None else predicates,
        )

    def test_empty_scan_propagates_through_joins(self, schema, generator):
        """A filter that passes nothing must yield an empty join result
        with consistent counters, not an error."""
        from repro import FilterPredicate, JoinPredicate, Query, TableRef
        from repro.cost.model import CostModel

        query = Query(
            "empty_q",
            (TableRef("users", "users"), TableRef("orders", "orders")),
            filters=(
                # Value-keyed Bernoulli draw at 1e-12: no value passes.
                FilterPredicate("users", "country", 1e-12, "impossible"),
            ),
            joins=(JoinPredicate("users", "user_id", "orders", "user_id"),),
        )
        executor = Executor(generator, query, seed=7)
        rows = executor.execute(
            self._hash_join_plan(CostModel(schema), query)
        )
        work = executor.last_work
        assert rows == []
        assert work.rows_emitted == 0
        # Both inputs were still scanned and fed to the join.
        assert work.rows_scanned == 1200
        assert work.rows_joined == work.rows_built + work.rows_probed

    def test_cycle_closing_predicate_applied(self, generator):
        """When one join carries several predicates (a cycle's closing
        edge lands on the last join), all of them must filter."""
        from repro.engine import DataGenerator
        from repro.cost.model import CostModel
        from repro.query.synthetic import (
            GraphShape,
            synthetic_query,
            synthetic_schema,
        )
        from repro.workloads import build_plan, enumerate_structures
        from repro.query.join_graph import JoinGraph

        cycle_schema = synthetic_schema(3, base_rows=50, growth=1.2, seed=2)
        query = synthetic_query(GraphShape.CYCLE, 3, seed=2,
                                filter_selectivity=None)
        assert len(query.joins) == 3  # chain edges + closing edge
        graph = JoinGraph(query)
        model = CostModel(cycle_schema)
        cycle_generator = DataGenerator(cycle_schema, seed=5)
        executor = Executor(cycle_generator, query, seed=5)
        structure = enumerate_structures(graph)[0]
        plan = build_plan(model, query, graph, structure)
        rows = executor.execute(plan)
        for row in rows:
            for join in query.joins:
                assert (
                    row[f"{join.left_alias}.{join.left_column}"]
                    == row[f"{join.right_alias}.{join.right_column}"]
                )

    def test_build_probe_sides_accounted(self, schema, generator):
        """rows_joined decomposes into build (right) + probe (left)."""
        from repro.cost.model import CostModel

        query = make_chain_query(2, with_filters=False)
        executor = Executor(generator, query, seed=7)
        executor.execute(self._hash_join_plan(CostModel(schema), query))
        work = executor.last_work
        assert work.rows_probed == 200   # users (left, probe side)
        assert work.rows_built == 1000   # orders (right, build side)
        assert work.rows_joined == work.rows_built + work.rows_probed
        assert work.total == (
            work.rows_scanned + work.rows_joined + work.rows_emitted
        )

    def test_counters_reset_covers_new_fields(self, schema, generator):
        from repro.cost.model import CostModel

        query = make_chain_query(2, with_filters=False)
        executor = Executor(generator, query, seed=7)
        plan = self._hash_join_plan(CostModel(schema), query)
        executor.execute(plan)
        first = (executor.last_work.rows_built, executor.last_work.rows_probed)
        executor.execute(plan)
        assert (
            executor.last_work.rows_built, executor.last_work.rows_probed
        ) == first
