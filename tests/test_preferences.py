"""Tests for Preferences, weighted/relative cost and SelectBest."""

import math

import pytest

from repro import INFINITY, Objective, Preferences, relative_cost, select_best
from repro.exceptions import OptimizerError

OBJS = (Objective.TOTAL_TIME, Objective.ENERGY)


class TestPreferences:
    def test_basic_construction(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 2.0))
        assert prefs.num_objectives == 2
        assert prefs.bounds == (INFINITY, INFINITY)
        assert not prefs.has_bounds
        assert prefs.indices == (0, 7)

    def test_weight_count_mismatch(self):
        with pytest.raises(OptimizerError):
            Preferences(objectives=OBJS, weights=(1.0,))

    def test_negative_weight_rejected(self):
        with pytest.raises(OptimizerError):
            Preferences(objectives=OBJS, weights=(1.0, -0.1))

    def test_bound_count_mismatch(self):
        with pytest.raises(OptimizerError):
            Preferences(objectives=OBJS, weights=(1, 1), bounds=(1.0,))

    def test_requires_objectives(self):
        with pytest.raises(OptimizerError):
            Preferences(objectives=(), weights=())

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ValueError):
            Preferences(
                objectives=(Objective.TOTAL_TIME, Objective.TOTAL_TIME),
                weights=(1, 1),
            )

    def test_from_maps_defaults(self):
        prefs = Preferences.from_maps(
            OBJS, weights={Objective.ENERGY: 2.0}
        )
        assert prefs.weights == (0.0, 2.0)
        assert prefs.bounds == (INFINITY, INFINITY)

    def test_from_maps_rejects_stray_keys(self):
        with pytest.raises(OptimizerError):
            Preferences.from_maps(OBJS, weights={Objective.CORES: 1.0})
        with pytest.raises(OptimizerError):
            Preferences.from_maps(OBJS, bounds={Objective.CORES: 1.0})

    def test_bounded_objectives(self):
        prefs = Preferences.from_maps(
            OBJS, bounds={Objective.TOTAL_TIME: 100.0}
        )
        assert prefs.has_bounds
        assert prefs.bounded_objectives == (Objective.TOTAL_TIME,)

    def test_weighted_and_respects(self):
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 2.0), bounds=(10.0, INFINITY)
        )
        assert prefs.weighted((3.0, 4.0)) == 11.0
        assert prefs.respects((10.0, 1e9))
        assert not prefs.respects((10.1, 0.0))

    def test_without_bounds(self):
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 2.0), bounds=(10.0, 20.0)
        )
        assert not prefs.without_bounds().has_bounds
        assert prefs.without_bounds().weights == prefs.weights


class TestRelativeCost:
    def test_weighted_ratio(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 1.0))
        assert relative_cost((2, 2), (1, 1), prefs) == pytest.approx(2.0)

    def test_bound_violation_is_infinite(self):
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 1.0), bounds=(1.5, INFINITY)
        )
        assert relative_cost((2, 0), (1, 1), prefs) == math.inf

    def test_no_feasible_plan_falls_back_to_weighted(self):
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 1.0), bounds=(0.5, INFINITY)
        )
        # The reference optimum itself violates the bounds: plain ratio.
        assert relative_cost((2, 2), (1, 1), prefs) == pytest.approx(2.0)

    def test_zero_optimum(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 1.0))
        assert relative_cost((0.0, 0.0), (0.0, 0.0), prefs) == 1.0
        assert relative_cost((1.0, 0.0), (0.0, 0.0), prefs) == math.inf


class TestSelectBest:
    def _entries(self):
        return [((1.0, 10.0), "a"), ((5.0, 5.0), "b"), ((10.0, 1.0), "c")]

    def test_weighted_only(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 0.1))
        cost, plan = select_best(self._entries(), prefs)
        assert plan == "a"

    def test_bounds_filter(self):
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 0.1), bounds=(INFINITY, 6.0)
        )
        cost, plan = select_best(self._entries(), prefs)
        assert plan == "b"

    def test_infeasible_bounds_fall_back(self):
        # Definition 2: if no plan respects B, minimize weighted cost.
        prefs = Preferences(
            objectives=OBJS, weights=(1.0, 0.1), bounds=(0.5, 0.5)
        )
        cost, plan = select_best(self._entries(), prefs)
        assert plan == "a"

    def test_empty_entries(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 1.0))
        assert select_best([], prefs) is None

    def test_tie_breaks_deterministically(self):
        prefs = Preferences(objectives=OBJS, weights=(1.0, 1.0))
        entries = [((2.0, 2.0), "first"), ((2.0, 2.0), "second")]
        cost, plan = select_best(entries, prefs)
        assert plan == "first"
