"""Algorithm registry: registration, lookup, capability validation."""

import pytest

from repro import Objective, Preferences, available_algorithms
from repro.core.registry import (
    AlgorithmSpec,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.exceptions import OptimizerError

WEIGHTED_2D = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0},
)
BOUNDED_2D = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0},
    bounds={Objective.TUPLE_LOSS: 0.0},
)


class TestLookup:
    def test_builtins_registered_in_order(self):
        names = available_algorithms()
        assert names == ("exa", "rta", "ira", "selinger", "wsum", "idp")

    def test_get_algorithm_returns_spec(self):
        spec = get_algorithm("rta")
        assert isinstance(spec, AlgorithmSpec)
        assert spec.name == "rta"

    def test_unknown_algorithm_lists_available(self):
        with pytest.raises(OptimizerError, match="unknown algorithm"):
            get_algorithm("magic")
        with pytest.raises(OptimizerError, match="rta"):
            get_algorithm("magic")

    def test_specs_cover_available_names(self):
        assert tuple(s.name for s in algorithm_specs()) == (
            available_algorithms()
        )


class TestCapabilities:
    def test_declared_capabilities(self):
        assert not get_algorithm("exa").uses_alpha
        assert get_algorithm("exa").supports_bounds
        assert get_algorithm("rta").uses_alpha
        assert not get_algorithm("rta").supports_bounds
        assert get_algorithm("ira").supports_bounds
        assert get_algorithm("selinger").single_objective_only
        assert not get_algorithm("wsum").uses_alpha
        assert get_algorithm("idp").uses_alpha

    def test_selinger_rejects_multiple_objectives(self):
        with pytest.raises(OptimizerError, match="exactly one"):
            get_algorithm("selinger").validate(WEIGHTED_2D)

    def test_selinger_accepts_single_objective(self):
        single = Preferences(
            objectives=(Objective.TOTAL_TIME,), weights=(1.0,)
        )
        get_algorithm("selinger").validate(single)  # must not raise

    def test_bounds_stripped_for_weighted_algorithms(self):
        prepared = get_algorithm("rta").prepare_preferences(BOUNDED_2D)
        assert not prepared.has_bounds
        assert prepared.objectives == BOUNDED_2D.objectives
        assert prepared.weights == BOUNDED_2D.weights

    def test_bounds_kept_for_bounded_algorithms(self):
        prepared = get_algorithm("ira").prepare_preferences(BOUNDED_2D)
        assert prepared is BOUNDED_2D


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(OptimizerError, match="already registered"):
            register_algorithm("rta")(lambda *a, **k: None)

    def test_conflicting_bounds_declaration_rejected(self):
        with pytest.raises(OptimizerError, match="support and reject"):
            register_algorithm(
                "impossible", supports_bounds=True, rejects_bounds=True
            )

    def test_custom_registration_roundtrip(self):
        @register_algorithm("custom_test_algo", description="test stub")
        def stub(block, cost_model, preferences, *, alpha, config,
                 deadline, strict):
            raise NotImplementedError

        try:
            assert "custom_test_algo" in available_algorithms()
            assert get_algorithm("custom_test_algo").runner is stub
        finally:
            unregister_algorithm("custom_test_algo")
        assert "custom_test_algo" not in available_algorithms()

    def test_bounds_rejection_capability(self):
        register_algorithm("strict_bounds_algo", rejects_bounds=True)(
            lambda *a, **k: None
        )
        try:
            spec = get_algorithm("strict_bounds_algo")
            spec.validate(WEIGHTED_2D)  # unbounded passes
            with pytest.raises(OptimizerError, match="does not accept"):
                spec.validate(BOUNDED_2D)
        finally:
            unregister_algorithm("strict_bounds_algo")


class TestRemovedTuple:
    def test_algorithms_tuple_import_fails_with_clear_message(self):
        with pytest.raises(ImportError, match="available_algorithms"):
            from repro.core.optimizer import ALGORITHMS  # noqa: F401

    def test_core_package_reexport_also_removed(self):
        import repro.core

        with pytest.raises(ImportError, match="available_algorithms"):
            repro.core.ALGORITHMS
