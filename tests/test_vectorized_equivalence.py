"""The scalar/vectorized equivalence contract (see repro.core.dp).

The batched enumeration path must be **bit-for-bit** identical to the
scalar per-candidate loop: same frontier cost tuples in the same order,
same chosen plan, same counters. Hypothesis generates random join
graphs (chain and star topologies, random statistics and selectivities)
and the contract is checked for EXA, RTA and strict mode
(``exact_suffix > 0``); further tests cover the block primitives on
:class:`~repro.core.pruning.PlanSet` directly, the timeout fallback
tripping mid-block, and the ablation variants that must *not* take the
block path.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    Column,
    DataType,
    FilterPredicate,
    Index,
    JoinPredicate,
    Objective,
    OptimizerConfig,
    Preferences,
    Query,
    Table,
    TableRef,
    build_schema,
)
from repro.core.exa import exact_moqo
from repro.core.ira import ira
from repro.core.pruning import AggressivePlanSet, PlanSet, SingleBestPlanSet
from repro.core.rta import rta
from repro.core.selinger import selinger
from repro.cost.model import CostModel
from repro.query.tpch_queries import tpch_query

#: Compact operator space so each Hypothesis example stays fast while
#: still exercising every join method, sampling, and DOP > 1.
SMALL_CONFIG = OptimizerConfig(
    dop_values=(1, 2),
    sampling_rates=(0.05,),
)

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


def scalar_config(config: OptimizerConfig) -> OptimizerConfig:
    return dataclasses.replace(config, vectorized_enumeration=False)


@st.composite
def join_graph_instances(draw):
    """A random 4-table schema + query with chain or star topology."""
    table_count = 4
    rows = [draw(st.integers(1, 50_000)) for _ in range(table_count)]
    ndv_share = [draw(st.floats(0.01, 1.0)) for _ in range(table_count)]
    filter_sel = draw(st.floats(0.01, 1.0))
    topology = draw(st.sampled_from(["chain", "star"]))
    explicit_sel = draw(st.one_of(st.none(), st.floats(1e-6, 1.0)))
    weights = tuple(draw(st.floats(0.0, 1.0)) for _ in OBJECTIVES)

    tables = []
    for position, (row_count, share) in enumerate(zip(rows, ndv_share)):
        ndv = max(1, int(row_count * share))
        tables.append(
            Table(
                f"t{position}",
                (
                    Column("key", DataType.INTEGER, n_distinct=ndv),
                    Column(
                        "payload", DataType.VARCHAR,
                        n_distinct=max(1, ndv // 2),
                    ),
                ),
                row_count=row_count,
            )
        )
    schema = build_schema(
        "random_vec",
        tables,
        [Index("t1_key_idx", "t1", ("key",), max(1, rows[1]))],
    )
    if topology == "chain":
        joins = tuple(
            JoinPredicate(f"t{i}", "key", f"t{i + 1}", "key",
                          selectivity=explicit_sel if i == 0 else None)
            for i in range(table_count - 1)
        )
    else:
        joins = tuple(
            JoinPredicate("t0", "key", f"t{i}", "key",
                          selectivity=explicit_sel if i == 1 else None)
            for i in range(1, table_count)
        )
    query = Query(
        "rand_vec_q",
        tuple(TableRef(f"t{i}", f"t{i}") for i in range(table_count)),
        filters=(FilterPredicate("t0", "payload", filter_sel),),
        joins=joins,
    )
    return schema, query, weights


def assert_bitwise_equal(vectorized, scalar):
    """Frontier (order included), plan and counters must match exactly."""
    assert [c for c, _ in vectorized.frontier] == [
        c for c, _ in scalar.frontier
    ]
    assert vectorized.plan_cost == scalar.plan_cost
    assert vectorized.plans_considered == scalar.plans_considered
    assert vectorized.pareto_last_complete == scalar.pareto_last_complete
    assert vectorized.memory_kb == scalar.memory_kb
    assert scalar.candidates_vectorized == 0


@given(join_graph_instances())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_exa_bitwise_equivalence_on_random_join_graphs(instance):
    schema, query, weights = instance
    model = CostModel(schema)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    vectorized = exact_moqo(query, model, prefs, SMALL_CONFIG)
    scalar = exact_moqo(query, model, prefs, scalar_config(SMALL_CONFIG))
    assert_bitwise_equal(vectorized, scalar)


@given(join_graph_instances(), st.floats(1.0, 4.0))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_rta_bitwise_equivalence_on_random_join_graphs(instance, alpha):
    schema, query, weights = instance
    model = CostModel(schema)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    vectorized = rta(query, model, prefs, alpha, SMALL_CONFIG)
    scalar = rta(query, model, prefs, alpha, scalar_config(SMALL_CONFIG))
    assert_bitwise_equal(vectorized, scalar)


@given(join_graph_instances())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_strict_mode_bitwise_equivalence(instance):
    """Strict mode appends an exactly-compared rows dimension
    (``exact_suffix > 0``), exercising the mixed scaled/exact
    thresholds of the block coverage check."""
    schema, query, weights = instance
    model = CostModel(schema)
    prefs = Preferences(objectives=OBJECTIVES, weights=weights)
    vectorized = rta(query, model, prefs, 1.5, SMALL_CONFIG, strict=True)
    scalar = rta(
        query, model, prefs, 1.5, scalar_config(SMALL_CONFIG), strict=True
    )
    assert_bitwise_equal(vectorized, scalar)


def test_tpch_equivalence_all_algorithms():
    """Deterministic spot check on a real TPC-H query, all entry points."""
    from repro.catalog.tpch import tpch_schema

    schema = tpch_schema()
    model = CostModel(schema)
    query = tpch_query(5).main_block
    prefs = Preferences(
        objectives=OBJECTIVES, weights=(1.0, 1e-6, 1e4)
    )
    bounded = Preferences(
        objectives=OBJECTIVES,
        weights=(1.0, 1e-6, 1e4),
        bounds=(float("inf"), float("inf"), 0.2),
    )
    vec, sca = SMALL_CONFIG, scalar_config(SMALL_CONFIG)
    pairs = [
        (exact_moqo(query, model, prefs, vec),
         exact_moqo(query, model, prefs, sca)),
        (rta(query, model, prefs, 2.0, vec),
         rta(query, model, prefs, 2.0, sca)),
        (ira(query, model, bounded, 2.0, vec),
         ira(query, model, bounded, 2.0, sca)),
        (selinger(query, model, Objective.TOTAL_TIME, vec),
         selinger(query, model, Objective.TOTAL_TIME, sca)),
    ]
    for vectorized, scalar in pairs:
        assert_bitwise_equal(vectorized, scalar)
    assert pairs[0][0].candidates_vectorized > 0


# ----------------------------------------------------------------------
# Block primitives
# ----------------------------------------------------------------------
def test_covers_many_matches_scalar_covers():
    plan_set = PlanSet(alpha=1.5, exact_suffix=1)
    rng = np.random.default_rng(7)
    for cost in rng.uniform(0.1, 10.0, size=(40, 3)):
        plan_set.insert(tuple(cost.tolist()), None)
    candidates = rng.uniform(0.05, 12.0, size=(200, 3))
    keep = plan_set.covers_many(candidates)
    for row, kept in zip(candidates, keep):
        assert kept == (not plan_set.covers(tuple(row.tolist())))


def test_block_accept_replay_matches_sequential_inserts():
    """block_accept + ordered force_insert == sequential insert loop."""
    rng = np.random.default_rng(11)
    candidates = rng.uniform(0.1, 10.0, size=(300, 3))
    # Duplicated rows exercise the intra-block sweep.
    candidates[150:] = candidates[:150] * rng.uniform(
        0.9, 1.1, size=(150, 3)
    )

    sequential = PlanSet(alpha=1.2)
    for position, row in enumerate(candidates):
        sequential.insert(tuple(row.tolist()), position)

    batched = PlanSet(alpha=1.2)
    keep = batched.block_accept(candidates)
    for position in np.nonzero(keep)[0]:
        batched.force_insert(
            tuple(candidates[position].tolist()), int(position)
        )
    assert batched.costs == sequential.costs
    assert [plan for _, plan in batched.entries] == [
        plan for _, plan in sequential.entries
    ]


def test_single_best_block_accept_is_prefix_minimum():
    weights = (1.0, 2.0)
    plan_set = SingleBestPlanSet(weights)
    plan_set.insert((4.0, 1.0), "seed")  # weighted 6.0
    candidates = np.array([
        [10.0, 1.0],   # 12 -> reject
        [3.0, 1.0],    # 5  -> accept
        [3.0, 1.0],    # 5  -> reject (not strictly better)
        [1.0, 1.0],    # 3  -> accept
    ])
    keep = plan_set.block_accept(candidates)
    assert keep.tolist() == [False, True, False, True]


def test_aggressive_plan_set_opts_out_of_block_path():
    """The aggressive ablation variant discards approximately dominated
    entries, which breaks the block determinism contract — it must run
    scalar, reporting zero vectorized candidates."""
    assert AggressivePlanSet.vectorizable is False
    assert PlanSet.vectorizable is True

    from repro.catalog.tpch import tpch_schema

    model = CostModel(tpch_schema())
    query = tpch_query(3).main_block
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 1e4))
    result = rta(
        query, model, prefs, 2.0, SMALL_CONFIG,
        plan_set_factory=lambda: AggressivePlanSet(alpha=1.1),
    )
    assert result.candidates_vectorized == 0
    assert result.plans_considered > 0


# ----------------------------------------------------------------------
# Timeout fallback mid-block
# ----------------------------------------------------------------------
@pytest.mark.parametrize("vectorized", [True, False])
def test_timeout_fallback_trips_mid_block(vectorized):
    """A deadline that passes during enumeration must degrade the rest
    of the run to the single-plan fallback on both paths — the batch
    path checks between blocks, so a mid-block trip abandons the
    remaining specs exactly like the scalar loop's mid-iteration
    return."""
    from repro.catalog.tpch import tpch_schema

    config = dataclasses.replace(
        SMALL_CONFIG,
        vectorized_enumeration=vectorized,
        timeout_check_interval=1,
    )
    model = CostModel(tpch_schema())
    query = tpch_query(5).main_block
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 1e4))
    deadline = time.perf_counter() + 0.02  # expires inside the DP
    result = exact_moqo(query, model, prefs, config, deadline=deadline)
    assert result.timed_out
    assert result.deadline_hit
    # The fallback still produces a complete (single) plan.
    assert result.plan is not None
    assert result.plan_cost is not None


def test_counters_report_batch_hit_rate():
    from repro.catalog.tpch import tpch_schema
    from repro.core.instrumentation import RequestMetrics

    model = CostModel(tpch_schema())
    query = tpch_query(5).main_block
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 1e4))
    result = rta(query, model, prefs, 2.0, SMALL_CONFIG)
    assert 0 < result.candidates_vectorized <= result.plans_considered
    record = RequestMetrics(
        fingerprint="f", query_name="q", algorithm="rta", tags=(),
        cache_hit=False, elapsed_ms=1.0, timed_out=False,
        plans_considered=result.plans_considered,
        candidates_vectorized=result.candidates_vectorized,
    )
    assert record.vectorized_fraction == pytest.approx(
        result.candidates_vectorized / result.plans_considered
    )


def test_selectivity_cache_hits_across_ira_iterations():
    from repro.catalog.tpch import tpch_schema

    model = CostModel(tpch_schema())
    query = tpch_query(5).main_block
    bounded = Preferences(
        objectives=OBJECTIVES,
        weights=(1.0, 1e-6, 1e4),
        bounds=(float("inf"), float("inf"), 0.2),
    )
    model.selectivities.clear()
    result = ira(query, model, bounded, 1.2, SMALL_CONFIG)
    cache = model.selectivities
    if result.iterations > 1:
        # Every re-enumerated split after iteration 1 is a cache hit.
        assert cache.hits >= cache.misses
    assert cache.misses > 0
