"""Unit tests for cardinality and selectivity estimation."""

import pytest

from repro import FilterPredicate, JoinPredicate, Query, TableRef
from repro.cost import cardinality


@pytest.fixture
def query():
    return Query(
        "q",
        (TableRef("u", "users"), TableRef("o", "orders")),
        joins=(JoinPredicate("u", "user_id", "o", "user_id"),),
    )


class TestFilterSelectivity:
    def test_empty_is_one(self):
        assert cardinality.filter_selectivity(()) == 1.0

    def test_independence_product(self):
        filters = (
            FilterPredicate("a", "x", 0.5),
            FilterPredicate("a", "y", 0.2),
        )
        assert cardinality.filter_selectivity(filters) == pytest.approx(0.1)


class TestJoinSelectivity:
    def test_one_over_max_ndv(self, small_schema, query):
        predicate = query.joins[0]
        sel = cardinality.join_predicate_selectivity(
            small_schema, query, predicate
        )
        # users.user_id ndv = 200, orders.user_id ndv = 200.
        assert sel == pytest.approx(1.0 / 200)

    def test_explicit_selectivity_wins(self, small_schema, query):
        predicate = JoinPredicate("u", "user_id", "o", "user_id",
                                  selectivity=0.25)
        assert (
            cardinality.join_predicate_selectivity(
                small_schema, query, predicate
            )
            == 0.25
        )

    def test_combined_product(self, small_schema, query):
        predicates = (query.joins[0], query.joins[0])
        combined = cardinality.join_selectivity(
            small_schema, query, predicates
        )
        assert combined == pytest.approx((1.0 / 200) ** 2)

    def test_empty_predicates_cartesian(self, small_schema, query):
        assert cardinality.join_selectivity(small_schema, query, ()) == 1.0


class TestOutputRows:
    def test_scan_rows_scale_with_rate_and_filters(self):
        filters = (FilterPredicate("a", "x", 0.5),)
        assert cardinality.scan_output_rows(1000, 1.0, filters) == 500
        assert cardinality.scan_output_rows(1000, 0.01, filters) == 5

    def test_join_rows(self):
        assert cardinality.join_output_rows(100, 200, 0.01) == 200

    def test_key_fk_join_preserves_fk_side(self, small_schema, query):
        # users (200 keys) x orders (1000 rows, fk) at 1/200 -> ~1000.
        sel = cardinality.join_selectivity(
            small_schema, query, query.joins
        )
        assert cardinality.join_output_rows(200, 1000, sel) == pytest.approx(
            1000
        )
