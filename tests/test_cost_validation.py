"""Cost-model validation against executed work (closing the loop).

The optimizer never executes plans; these tests check that its
estimates *predict* execution: across alternative plans for the same
query, plans the cost model ranks cheaper (in accumulated work terms)
must not perform dramatically more actual work, and sampling's
estimated savings must materialize in executed row counts.
"""

import pytest

from repro import Objective, Preferences
from repro.cost.model import CostModel
from repro.engine import DataGenerator, Executor
from repro.engine.executor import WorkCounters
from repro.query.join_graph import JoinGraph
from repro.query.synthetic import (
    GraphShape,
    synthetic_query,
    synthetic_schema,
)
from repro.workloads import (
    build_plan,
    enumerate_structures,
    kendall_tau,
    validate_query,
)

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

_CPU = Objective.CPU_LOAD.index
_L = Objective.TUPLE_LOSS.index


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(2)
    plans = enumerate_all_plans(query, model, TINY_CONFIG)
    generator = DataGenerator(schema, seed=11)
    executor = Executor(generator, query, seed=11)
    return query, plans, executor


class TestWorkCounters:
    def test_counters_populated(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        rows = executor.execute(lossless)
        work = executor.last_work
        assert work.rows_scanned >= 1200  # both tables read fully
        assert work.rows_emitted == len(rows)
        assert work.total >= work.rows_scanned

    def test_counters_reset_between_runs(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        executor.execute(lossless)
        first = executor.last_work.total
        executor.execute(lossless)
        assert executor.last_work.total == first

    def test_work_counters_slots(self):
        counters = WorkCounters()
        assert counters.total == 0


class TestSamplingSavingsMaterialize:
    def test_sampled_plan_scans_less(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        heavily_sampled = max(plans, key=lambda p: p.loss)
        assert heavily_sampled.loss > 0.9

        executor.execute(lossless)
        full_work = executor.last_work.total
        executor.execute(heavily_sampled)
        sampled_work = executor.last_work.total
        # The engine reads all base rows even when sampling (Bernoulli
        # filter), but joins and emits far fewer.
        assert sampled_work < full_work


class TestCpuEstimatePredictsWork:
    def test_rank_correlation_over_lossless_plans(self, setup):
        """Estimated CPU ranks executed work with positive correlation.

        Restricted to lossless plans (sampling adds variance) and to a
        coarse check: the cheapest-estimated third of plans must not
        average more executed work than the most expensive third.
        """
        query, plans, executor = setup
        lossless = [p for p in plans if p.loss == 0.0]
        measured = []
        seen_costs = set()
        for plan in lossless:
            key = (round(plan.cost[_CPU], 6), plan.describe())
            if key in seen_costs:
                continue
            seen_costs.add(key)
            executor.execute(plan)
            measured.append((plan.cost[_CPU], executor.last_work.total))
        measured.sort()
        third = max(1, len(measured) // 3)
        cheap = [work for _, work in measured[:third]]
        expensive = [work for _, work in measured[-third:]]
        assert sum(cheap) / len(cheap) <= sum(expensive) / len(expensive) * 1.5


# Seeded random join graphs for the harness property tests: shapes x
# sizes (2..6 joins) x seeds, with tiny tables so executing several
# join orders per query stays cheap.
SHAPE_CASES = [
    (shape, num_tables, seed)
    for shape in (GraphShape.CHAIN, GraphShape.STAR, GraphShape.CYCLE)
    for num_tables in (3, 5, 7)
    for seed in (0, 1)
]


def _case_id(case):
    shape, num_tables, seed = case
    return f"{shape.value}-n{num_tables}-s{seed}"


@pytest.fixture(scope="module")
def shape_reports():
    """One validation report per random (shape, size, seed) instance."""
    reports = []
    for shape, num_tables, seed in SHAPE_CASES:
        schema = synthetic_schema(
            num_tables, base_rows=60, growth=1.3, seed=seed
        )
        query = synthetic_query(shape, num_tables, seed=seed, num_filters=2)
        reports.append(
            validate_query(
                schema, query, max_plans=6, sample_seed=seed
            )
        )
    return dict(zip(SHAPE_CASES, reports))


class TestValidationHarnessProperties:
    """Property tests of the predicted-vs-actual harness over seeded
    random join graphs (chain/star/cycle, 2-6 joins)."""

    @pytest.mark.parametrize(
        "case", SHAPE_CASES, ids=[_case_id(c) for c in SHAPE_CASES]
    )
    def test_join_order_invariants(self, shape_reports, case):
        report = shape_reports[case]
        assert 2 <= len(report.measurements) <= 6
        assert report.structures_total >= len(report.measurements)
        # Inner equality joins: every join order must produce the same
        # result set, so emitted counts agree exactly across plans.
        emitted = {m.counters.rows_emitted for m in report.measurements}
        assert len(emitted) == 1
        for m in report.measurements:
            assert m.predicted > 0.0
            assert m.executed >= m.counters.rows_scanned > 0

    @pytest.mark.parametrize(
        "case", SHAPE_CASES, ids=[_case_id(c) for c in SHAPE_CASES]
    )
    def test_predicted_best_never_catastrophic(self, shape_reports, case):
        """The estimate-chosen order must not do dramatically more work
        than the best measured order (here: at most 2x)."""
        report = shape_reports[case]
        assert 0.0 <= report.top1_regret <= 1.0
        assert -1.0 <= report.kendall_tau <= 1.0

    def test_rank_agreement_positive_in_aggregate(self, shape_reports):
        """Single instances are noisy (near-tied plans on tiny data) but
        estimates must rank executed work positively across the suite."""
        taus = [r.kendall_tau for r in shape_reports.values()]
        assert sum(taus) / len(taus) > 0.3

    def test_structures_respect_connectivity(self):
        query = synthetic_query(GraphShape.CHAIN, 5, seed=0)
        graph = JoinGraph(query)
        structures = enumerate_structures(graph)

        def masks(structure):
            if isinstance(structure, int):
                return [structure]
            combined = []
            for side in structure:
                combined.extend(masks(side))
            left, right = structure
            combined.append(_mask(left) | _mask(right))
            return combined

        def _mask(structure):
            if isinstance(structure, int):
                return structure
            return _mask(structure[0]) | _mask(structure[1])

        for structure in structures:
            for mask in masks(structure):
                assert graph.is_connected(mask)

    def test_sampling_savings_materialize_in_counters(self):
        """A sampled scan must cut executed work, as its estimate says."""
        schema = synthetic_schema(4, base_rows=60, growth=1.3, seed=3)
        query = synthetic_query(GraphShape.CHAIN, 4, seed=3)
        graph = JoinGraph(query)
        structure = enumerate_structures(graph)[0]
        model = CostModel(schema)
        generator = DataGenerator(schema, seed=0)
        executor = Executor(generator, query, seed=0)

        executor.execute(build_plan(model, query, graph, structure))
        full_work = executor.last_work.total
        sampled_plan = build_plan(
            model, query, graph, structure, sampling={"t3": 0.05}
        )
        executor.execute(sampled_plan)
        assert executor.last_work.total < full_work

    def test_kendall_tau_basics(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0
        assert kendall_tau([1, 2, 3], [30, 20, 10]) == -1.0
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0
        with pytest.raises(Exception):
            kendall_tau([1, 2], [1])
