"""Cost-model validation against executed work (closing the loop).

The optimizer never executes plans; these tests check that its
estimates *predict* execution: across alternative plans for the same
query, plans the cost model ranks cheaper (in accumulated work terms)
must not perform dramatically more actual work, and sampling's
estimated savings must materialize in executed row counts.
"""

import pytest

from repro import Objective, Preferences
from repro.cost.model import CostModel
from repro.engine import DataGenerator, Executor
from repro.engine.executor import WorkCounters

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans

_CPU = Objective.CPU_LOAD.index
_L = Objective.TUPLE_LOSS.index


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(2)
    plans = enumerate_all_plans(query, model, TINY_CONFIG)
    generator = DataGenerator(schema, seed=11)
    executor = Executor(generator, query, seed=11)
    return query, plans, executor


class TestWorkCounters:
    def test_counters_populated(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        rows = executor.execute(lossless)
        work = executor.last_work
        assert work.rows_scanned >= 1200  # both tables read fully
        assert work.rows_emitted == len(rows)
        assert work.total >= work.rows_scanned

    def test_counters_reset_between_runs(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        executor.execute(lossless)
        first = executor.last_work.total
        executor.execute(lossless)
        assert executor.last_work.total == first

    def test_work_counters_slots(self):
        counters = WorkCounters()
        assert counters.total == 0


class TestSamplingSavingsMaterialize:
    def test_sampled_plan_scans_less(self, setup):
        query, plans, executor = setup
        lossless = next(p for p in plans if p.loss == 0.0)
        heavily_sampled = max(plans, key=lambda p: p.loss)
        assert heavily_sampled.loss > 0.9

        executor.execute(lossless)
        full_work = executor.last_work.total
        executor.execute(heavily_sampled)
        sampled_work = executor.last_work.total
        # The engine reads all base rows even when sampling (Bernoulli
        # filter), but joins and emits far fewer.
        assert sampled_work < full_work


class TestCpuEstimatePredictsWork:
    def test_rank_correlation_over_lossless_plans(self, setup):
        """Estimated CPU ranks executed work with positive correlation.

        Restricted to lossless plans (sampling adds variance) and to a
        coarse check: the cheapest-estimated third of plans must not
        average more executed work than the most expensive third.
        """
        query, plans, executor = setup
        lossless = [p for p in plans if p.loss == 0.0]
        measured = []
        seen_costs = set()
        for plan in lossless:
            key = (round(plan.cost[_CPU], 6), plan.describe())
            if key in seen_costs:
                continue
            seen_costs.add(key)
            executor.execute(plan)
            measured.append((plan.cost[_CPU], executor.last_work.total))
        measured.sort()
        third = max(1, len(measured) // 3)
        cheap = [work for _, work in measured[:third]]
        expensive = [work for _, work in measured[-third:]]
        assert sum(cheap) / len(cheap) <= sum(expensive) / len(expensive) * 1.5
