"""Wire protocol: envelopes, codes, request parsing, building blocks.

Coroutine tests drive asyncio with ``asyncio.run`` inside sync test
functions — pytest-asyncio is not installed (see README).
"""

import asyncio
import json

import pytest

from repro import Objective, OptimizationRequest, Preferences, tpch_query
from repro.serving.admission import AdmissionController
from repro.serving.coalescer import RequestCoalescer
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    CODE_BAD_REQUEST,
    CODE_DEADLINE_EXPIRED,
    CODE_INTERNAL,
    CODE_OK,
    CODE_SHED,
    ProtocolError,
    ServerResponse,
    deadline_expired_response,
    parse_optimize_body,
    shed_response,
)
from repro.core.instrumentation import LatencyHistogram, ServiceMetrics

PREFS = Preferences.from_maps(
    (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
    weights={Objective.TOTAL_TIME: 1.0},
)


def wire_payload(**overrides):
    payload = {
        "query": {"kind": "tpch", "number": 3},
        "preferences": {
            "objectives": ["total_time", "tuple_loss"],
            "weights": {"total_time": 1.0},
        },
        "algorithm": "rta",
        "alpha": 2.0,
    }
    payload.update(overrides)
    return payload


class TestServerResponse:
    def test_ok_envelope_round_trip(self):
        envelope = ServerResponse(
            code=CODE_OK,
            result={"algorithm": "rta"},
            coalesced=True,
            fingerprint="abc",
            latency_ms=1.25,
        )
        rebuilt = ServerResponse.from_json(envelope.to_json())
        assert rebuilt == envelope
        assert rebuilt.ok
        assert rebuilt.http_status == 200

    def test_error_envelope_round_trip(self):
        envelope = ServerResponse(code=CODE_SHED, error="overloaded")
        rebuilt = ServerResponse.from_json(envelope.to_json())
        assert not rebuilt.ok
        assert rebuilt.error == "overloaded"
        assert rebuilt.result is None

    def test_http_status_mapping(self):
        assert ServerResponse(code=CODE_OK).http_status == 200
        assert ServerResponse(code=CODE_BAD_REQUEST).http_status == 400
        assert ServerResponse(code=CODE_SHED).http_status == 429
        assert (
            ServerResponse(code=CODE_DEADLINE_EXPIRED).http_status == 503
        )
        assert ServerResponse(code=CODE_INTERNAL).http_status == 500
        # Unknown codes degrade to 500 instead of crashing the writer.
        assert ServerResponse(code="martian").http_status == 500

    def test_none_fields_omitted_from_wire_form(self):
        payload = ServerResponse(code=CODE_OK, result={}).to_dict()
        assert "error" not in payload
        assert "coalesced" not in payload
        assert payload["status"] == "ok"

    def test_helper_envelopes(self):
        assert shed_response("fp").code == CODE_SHED
        assert shed_response("fp").http_status == 429
        assert deadline_expired_response().code == CODE_DEADLINE_EXPIRED
        assert ServerResponse.from_json(b'{"code": "ok"}').ok

    def test_malformed_envelope_rejected(self):
        with pytest.raises(ProtocolError):
            ServerResponse.from_json(b"not json")
        with pytest.raises(ProtocolError):
            ServerResponse.from_json(b'["array"]')


class TestParseOptimizeBody:
    def test_valid_body(self):
        request = parse_optimize_body(
            json.dumps(wire_payload()).encode()
        )
        assert isinstance(request, OptimizationRequest)
        assert request.query_name == "tpch_q3"
        assert request.algorithm == "rta"

    def test_matches_native_request_fingerprint(self):
        native = OptimizationRequest(
            query=tpch_query(3), preferences=PREFS,
            algorithm="rta", alpha=2.0,
        )
        parsed = parse_optimize_body(json.dumps(wire_payload()).encode())
        assert parsed.fingerprint() == native.fingerprint()

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError):
            parse_optimize_body(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            parse_optimize_body(b"[1, 2]")

    def test_unknown_algorithm_rejected(self):
        body = json.dumps(wire_payload(algorithm="quantum")).encode()
        with pytest.raises(ProtocolError):
            parse_optimize_body(body)

    def test_bad_alpha_rejected(self):
        body = json.dumps(wire_payload(alpha=0.5)).encode()
        with pytest.raises(ProtocolError):
            parse_optimize_body(body)

    def test_missing_query_rejected(self):
        payload = wire_payload()
        del payload["query"]
        with pytest.raises(ProtocolError):
            parse_optimize_body(json.dumps(payload).encode())


class TestRequestCoalescer:
    def test_leader_then_followers(self):
        async def scenario():
            coalescer = RequestCoalescer()
            assert coalescer.lookup("fp") is None
            future = coalescer.register("fp")
            waiters = [
                asyncio.ensure_future(
                    asyncio.shield(coalescer.lookup("fp"))
                )
                for _ in range(3)
            ]
            assert coalescer.in_flight == 1
            coalescer.resolve("fp", "result")
            values = await asyncio.gather(*waiters)
            assert values == ["result"] * 3
            assert await future == "result"
            assert coalescer.in_flight == 0
            assert coalescer.leaders == 1
            assert coalescer.followers == 3

        asyncio.run(scenario())

    def test_double_register_rejected(self):
        async def scenario():
            coalescer = RequestCoalescer()
            coalescer.register("fp")
            with pytest.raises(RuntimeError):
                coalescer.register("fp")
            coalescer.resolve("fp", None)

        asyncio.run(scenario())

    def test_failure_propagates_to_all_waiters(self):
        async def scenario():
            coalescer = RequestCoalescer()
            coalescer.register("fp")
            waiter = asyncio.ensure_future(
                asyncio.shield(coalescer.lookup("fp"))
            )
            coalescer.fail("fp", RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await waiter
            assert coalescer.in_flight == 0

        asyncio.run(scenario())

    def test_fail_with_stale_expected_future_is_a_noop(self):
        """The leader done-callback race: between a leader resolving
        and its done-callback running, a new leader for the same
        fingerprint may register. The callback's ``expected=`` guard
        must keep it from failing the successor's future."""

        async def scenario():
            coalescer = RequestCoalescer()
            old = coalescer.register("fp")
            coalescer.resolve("fp", "first")
            successor = coalescer.register("fp")
            # The old leader's safety net fires late: guarded, no-op.
            coalescer.fail(
                "fp", RuntimeError("leader died"), expected=old
            )
            assert coalescer.in_flight == 1
            assert not successor.done()
            coalescer.resolve("fp", "second")
            assert await successor == "second"
            # Unguarded (or correctly-matched) failures still work.
            matched = coalescer.register("fp")
            coalescer.fail(
                "fp", RuntimeError("boom"), expected=matched
            )
            with pytest.raises(RuntimeError, match="boom"):
                await matched

        asyncio.run(scenario())

    def test_cancelled_follower_does_not_cancel_shared_work(self):
        """The cancellation-safety contract: a dropped client kills its
        own await, never the in-flight optimization."""

        async def scenario():
            coalescer = RequestCoalescer()
            future = coalescer.register("fp")
            doomed = asyncio.ensure_future(
                asyncio.shield(coalescer.lookup("fp"))
            )
            survivor = asyncio.ensure_future(
                asyncio.shield(coalescer.lookup("fp"))
            )
            await asyncio.sleep(0)  # let both attach
            doomed.cancel()
            await asyncio.sleep(0)
            assert not future.cancelled()  # shared work survives
            coalescer.resolve("fp", "result")
            assert await survivor == "result"
            with pytest.raises(asyncio.CancelledError):
                await doomed

        asyncio.run(scenario())

    def test_leader_cancellation_cancels_waiters(self):
        async def scenario():
            coalescer = RequestCoalescer()
            coalescer.register("fp")
            waiter = asyncio.ensure_future(
                asyncio.shield(coalescer.lookup("fp"))
            )
            await asyncio.sleep(0)
            coalescer.fail("fp", asyncio.CancelledError())
            with pytest.raises(asyncio.CancelledError):
                await waiter

        asyncio.run(scenario())


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)

    def test_sheds_beyond_capacity(self):
        async def scenario():
            admission = AdmissionController(
                max_in_flight=2, max_queue_depth=1
            )
            # Outstanding capacity is 2 running + 1 waiting = 3.
            assert admission.try_admit()
            assert admission.try_admit()
            assert admission.try_admit()
            assert not admission.try_admit()
            assert admission.shed == 1
            assert admission.admitted == 3

        asyncio.run(scenario())

    def test_zero_queue_depth_means_run_or_shed(self):
        async def scenario():
            admission = AdmissionController(
                max_in_flight=1, max_queue_depth=0
            )
            assert admission.try_admit()
            assert not admission.try_admit()

        asyncio.run(scenario())

    def test_slot_cycle_restores_capacity(self):
        async def scenario():
            admission = AdmissionController(
                max_in_flight=1, max_queue_depth=0
            )
            assert admission.try_admit()
            async with admission.slot():
                assert admission.running == 1
                assert admission.queue_depth == 0
                assert not admission.try_admit()
            assert admission.running == 0
            assert admission.try_admit()
            async with admission.slot():
                pass

        asyncio.run(scenario())

    def test_queue_depth_counts_waiters_only(self):
        async def scenario():
            admission = AdmissionController(
                max_in_flight=1, max_queue_depth=4
            )
            for _ in range(3):
                assert admission.try_admit()
            entered = asyncio.Event()
            release = asyncio.Event()

            async def occupant():
                async with admission.slot():
                    entered.set()
                    await release.wait()

            task = asyncio.ensure_future(occupant())
            await entered.wait()
            # One running, two still queued.
            assert admission.running == 1
            assert admission.queue_depth == 2
            assert admission.peak_queue_depth >= 2
            release.set()
            await task

        asyncio.run(scenario())

    def test_snapshot_serializes(self):
        admission = AdmissionController()
        json.dumps(admission.snapshot())


class TestLatencyHistogram:
    def test_percentiles(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(0.50) == pytest.approx(50.0, abs=1)
        assert histogram.percentile(0.99) == pytest.approx(99.0, abs=1)
        assert histogram.percentile(1.0) == 100.0
        assert histogram.mean == pytest.approx(50.5)

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0.0
        json.dumps(snapshot)

    def test_bounded_memory_keeps_observing(self):
        histogram = LatencyHistogram(max_samples=64)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._samples) <= 64
        assert histogram.snapshot()["max_ms"] == 999.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LatencyHistogram(max_samples=0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)


class TestServingMetrics:
    def test_forwards_into_service_metrics(self):
        service_metrics = ServiceMetrics()
        metrics = ServingMetrics(service_metrics)
        metrics.record_coalesce_hit()
        metrics.record_coalesce_hit()
        metrics.record_coalesce_leader()
        metrics.record_shed()
        metrics.record_shed(deadline=True)
        assert service_metrics.coalesce_hits == 2
        assert service_metrics.sheds == 2
        assert metrics.coalesce_hit_rate == pytest.approx(2 / 3)
        snapshot = metrics.snapshot()
        assert snapshot["deadline_sheds"] == 1
        assert snapshot["coalesce_hit_rate"] == pytest.approx(2 / 3)
        json.dumps(snapshot)

    def test_response_latency_lands_in_histogram(self):
        metrics = ServingMetrics()
        metrics.record_response("ok", 12.5)
        metrics.record_response("shed", 0.1)
        assert metrics.responses_by_code == {"ok": 1, "shed": 1}
        assert metrics.latency.count == 2

    def test_service_metrics_snapshot_includes_serving_counters(self):
        service_metrics = ServiceMetrics()
        service_metrics.record_coalesce_hit()
        service_metrics.record_shed()
        snapshot = service_metrics.snapshot()
        assert snapshot["coalesce_hits"] == 1
        assert snapshot["sheds"] == 1
        json.dumps(snapshot)
