"""Left-deep vs bushy plan-space enumeration."""

import dataclasses

import pytest

from repro import Objective, Preferences, tpch_query
from repro.config import OptimizerConfig, PlanShape
from repro.core.exa import exact_moqo
from repro.cost.model import CostModel
from repro.plans.plan import JoinPlan, ScanPlan, is_left_deep

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema

LEFT_DEEP_CONFIG = dataclasses.replace(
    TINY_CONFIG, plan_shape=PlanShape.LEFT_DEEP
)

OBJECTIVES = (
    Objective.TOTAL_TIME,
    Objective.BUFFER_FOOTPRINT,
    Objective.TUPLE_LOSS,
)


@pytest.fixture(scope="module")
def model():
    return CostModel(make_small_schema())


def test_left_deep_frontier_plans_are_left_deep(model):
    query = make_chain_query(3)
    prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
    result = exact_moqo(query, model, prefs, LEFT_DEEP_CONFIG)
    for _, plan in result.frontier:
        assert is_left_deep(plan)


def test_bushy_space_contains_left_deep_space(model):
    """Every left-deep frontier vector is covered by the bushy frontier."""
    from repro.cost.vector import dominates

    query = make_chain_query(3)
    prefs = Preferences(objectives=OBJECTIVES, weights=(1, 1, 1))
    bushy = exact_moqo(query, model, prefs, TINY_CONFIG)
    deep = exact_moqo(query, model, prefs, LEFT_DEEP_CONFIG)
    assert bushy.plans_considered >= deep.plans_considered
    for vector in deep.frontier_costs:
        assert any(dominates(b, vector) for b in bushy.frontier_costs)
    # The bushy weighted optimum is at least as good.
    assert bushy.weighted_cost <= deep.weighted_cost * (1 + 1e-12)


def test_left_deep_on_tpch_q5(tpch):
    """Left-deep enumeration handles a cyclic 6-table join graph."""
    from repro import FAST_CONFIG, MultiObjectiveOptimizer

    config = dataclasses.replace(
        FAST_CONFIG, plan_shape=PlanShape.LEFT_DEEP, timeout_seconds=30.0
    )
    optimizer = MultiObjectiveOptimizer(tpch, config=config)
    prefs = Preferences(objectives=OBJECTIVES, weights=(1.0, 1e-6, 10.0))
    result = optimizer.optimize(tpch_query(5), prefs, algorithm="rta",
                                alpha=1.5)
    assert result.plan is not None
    assert not result.timed_out
    assert is_left_deep(result.plan)
    assert result.plan.aliases == frozenset(
        tpch_query(5).main_block.aliases
    )


def test_plan_shape_default_is_bushy():
    assert OptimizerConfig().plan_shape is PlanShape.BUSHY


def test_bushy_can_produce_bushy_trees(model):
    """On a 4-way chain the bushy space contains non-left-deep plans."""
    # Extend the small schema query to 3 tables and check the raw
    # enumeration (brute force) contains a bushy tree.
    from tests.helpers import enumerate_all_plans

    query = make_chain_query(3)
    plans = enumerate_all_plans(query, model, TINY_CONFIG)
    shapes = {is_left_deep(p) for p in plans if isinstance(p, JoinPlan)}
    # With only 3 tables every tree is trivially left-deep or
    # right-sided; at least confirm both operand orders appear.
    right_is_join = any(
        isinstance(p, JoinPlan) and isinstance(p.right, JoinPlan)
        for p in plans
    )
    assert right_is_join or shapes == {True}
