"""Plan/result serialization tests."""

import json

import pytest

from repro import Objective, Preferences, tpch_query
from repro.exceptions import ReproError
from repro.plans.serialize import (
    plan_from_dict,
    plan_to_dict,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


@pytest.fixture(scope="module")
def result(tpch_optimizer):
    prefs = Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
         Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={Objective.TUPLE_LOSS: 0.0},
    )
    return tpch_optimizer.optimize(tpch_query(3), prefs, algorithm="ira",
                                   alpha=1.5)


class TestPlanToDict:
    def test_tree_structure(self, result):
        tree = plan_to_dict(result.plan)
        assert tree["node"] == "join"
        assert {"left", "right", "operator", "cost"} <= set(tree)

    def test_scan_leaves_carry_tables(self, result):
        tree = plan_to_dict(result.plan)

        def leaves(node):
            if node["node"] == "scan":
                yield node
            else:
                yield from leaves(node["left"])
                yield from leaves(node["right"])

        tables = {leaf["table"] for leaf in leaves(tree)}
        assert tables == {"customer", "orders", "lineitem"}

    def test_cost_has_all_nine_objectives(self, result):
        tree = plan_to_dict(result.plan)
        assert len(tree["cost"]) == 9
        assert tree["cost"]["tuple_loss"] == 0.0

    def test_rejects_foreign_objects(self):
        with pytest.raises(ReproError):
            plan_to_dict(object())


class TestResultToDict:
    def test_fields(self, result):
        data = result_to_dict(result)
        assert data["algorithm"] == "ira"
        assert data["objectives"] == [
            "total_time", "buffer_footprint", "tuple_loss",
        ]
        assert data["bounds"] == [None, None, 0.0]
        assert data["respects_bounds"] is True
        assert data["metrics"]["plans_considered"] > 0
        assert data["frontier_size"] == len(data["frontier"])

    def test_json_round_trip(self, result):
        text = result_to_json(result)
        parsed = json.loads(text)
        assert parsed["query"] == "tpch_q3"
        assert parsed["plan"]["node"] == "join"

    def test_infinite_values_mapped_to_null(self, result):
        data = result_to_dict(result)
        # Unbounded objectives serialize as null, keeping strict JSON.
        assert data["bounds"][0] is None
        json.dumps(data)  # must not raise


class TestRoundTrip:
    def test_plan_round_trips_through_json(self, result):
        tree = json.loads(json.dumps(plan_to_dict(result.plan)))
        rebuilt = plan_from_dict(tree)
        assert rebuilt.cost == result.plan.cost
        assert rebuilt.rows == result.plan.rows
        assert rebuilt.width == result.plan.width
        assert rebuilt.describe() == result.plan.describe()
        assert rebuilt.operator_labels() == result.plan.operator_labels()
        # The rebuilt tree serializes back to the same dictionary.
        assert plan_to_dict(rebuilt) == tree

    def test_result_round_trips_through_json(self, result):
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.query_name == result.query_name
        assert rebuilt.preferences == result.preferences
        assert rebuilt.plan_cost == result.plan_cost
        assert rebuilt.weighted_cost == pytest.approx(result.weighted_cost)
        assert rebuilt.respects_bounds == result.respects_bounds
        assert rebuilt.frontier_costs == result.frontier_costs
        assert rebuilt.timed_out == result.timed_out
        assert rebuilt.deadline_hit == result.deadline_hit
        assert rebuilt.iterations == result.iterations
        assert rebuilt.plan.describe() == result.plan.describe()

    def test_frontier_plans_documented_as_costs_only(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert all(plan is None for _, plan in rebuilt.frontier)

    def test_planless_result_round_trips(self, result):
        import dataclasses

        empty = dataclasses.replace(
            result, plan=None, plan_cost=None, frontier=()
        )
        rebuilt = result_from_dict(result_to_dict(empty))
        assert rebuilt.plan is None
        assert rebuilt.plan_cost is None
        assert rebuilt.frontier == ()

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ReproError):
            plan_from_dict({"node": "scan"})
        with pytest.raises(ReproError):
            plan_from_dict({"node": "teleport", "cost": {}})
        with pytest.raises(ReproError):
            result_from_dict({"algorithm": "rta"})
