"""Plan/result/request serialization tests."""

import dataclasses
import json

import pytest

from repro import (
    FAST_CONFIG,
    Objective,
    OptimizationRequest,
    Preferences,
    tpch_query,
)
from repro.exceptions import ReproError
from repro.plans.serialize import (
    plan_from_dict,
    plan_to_dict,
    preferences_from_dict,
    preferences_to_dict,
    query_from_dict,
    query_to_dict,
    request_from_dict,
    request_from_json,
    request_to_dict,
    request_to_json,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


@pytest.fixture(scope="module")
def result(tpch_optimizer):
    prefs = Preferences.from_maps(
        (Objective.TOTAL_TIME, Objective.BUFFER_FOOTPRINT,
         Objective.TUPLE_LOSS),
        weights={Objective.TOTAL_TIME: 1.0},
        bounds={Objective.TUPLE_LOSS: 0.0},
    )
    return tpch_optimizer.optimize(tpch_query(3), prefs, algorithm="ira",
                                   alpha=1.5)


class TestPlanToDict:
    def test_tree_structure(self, result):
        tree = plan_to_dict(result.plan)
        assert tree["node"] == "join"
        assert {"left", "right", "operator", "cost"} <= set(tree)

    def test_scan_leaves_carry_tables(self, result):
        tree = plan_to_dict(result.plan)

        def leaves(node):
            if node["node"] == "scan":
                yield node
            else:
                yield from leaves(node["left"])
                yield from leaves(node["right"])

        tables = {leaf["table"] for leaf in leaves(tree)}
        assert tables == {"customer", "orders", "lineitem"}

    def test_cost_has_all_nine_objectives(self, result):
        tree = plan_to_dict(result.plan)
        assert len(tree["cost"]) == 9
        assert tree["cost"]["tuple_loss"] == 0.0

    def test_rejects_foreign_objects(self):
        with pytest.raises(ReproError):
            plan_to_dict(object())


class TestResultToDict:
    def test_fields(self, result):
        data = result_to_dict(result)
        assert data["algorithm"] == "ira"
        assert data["objectives"] == [
            "total_time", "buffer_footprint", "tuple_loss",
        ]
        assert data["bounds"] == [None, None, 0.0]
        assert data["respects_bounds"] is True
        assert data["metrics"]["plans_considered"] > 0
        assert data["frontier_size"] == len(data["frontier"])

    def test_json_round_trip(self, result):
        text = result_to_json(result)
        parsed = json.loads(text)
        assert parsed["query"] == "tpch_q3"
        assert parsed["plan"]["node"] == "join"

    def test_infinite_values_mapped_to_null(self, result):
        data = result_to_dict(result)
        # Unbounded objectives serialize as null, keeping strict JSON.
        assert data["bounds"][0] is None
        json.dumps(data)  # must not raise


class TestRoundTrip:
    def test_plan_round_trips_through_json(self, result):
        tree = json.loads(json.dumps(plan_to_dict(result.plan)))
        rebuilt = plan_from_dict(tree)
        assert rebuilt.cost == result.plan.cost
        assert rebuilt.rows == result.plan.rows
        assert rebuilt.width == result.plan.width
        assert rebuilt.describe() == result.plan.describe()
        assert rebuilt.operator_labels() == result.plan.operator_labels()
        # The rebuilt tree serializes back to the same dictionary.
        assert plan_to_dict(rebuilt) == tree

    def test_result_round_trips_through_json(self, result):
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.query_name == result.query_name
        assert rebuilt.preferences == result.preferences
        assert rebuilt.plan_cost == result.plan_cost
        assert rebuilt.weighted_cost == pytest.approx(result.weighted_cost)
        assert rebuilt.respects_bounds == result.respects_bounds
        assert rebuilt.frontier_costs == result.frontier_costs
        assert rebuilt.timed_out == result.timed_out
        assert rebuilt.deadline_hit == result.deadline_hit
        assert rebuilt.iterations == result.iterations
        assert rebuilt.plan.describe() == result.plan.describe()

    def test_frontier_plans_documented_as_costs_only(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert all(plan is None for _, plan in rebuilt.frontier)

    def test_planless_result_round_trips(self, result):
        import dataclasses

        empty = dataclasses.replace(
            result, plan=None, plan_cost=None, frontier=()
        )
        rebuilt = result_from_dict(result_to_dict(empty))
        assert rebuilt.plan is None
        assert rebuilt.plan_cost is None
        assert rebuilt.frontier == ()

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ReproError):
            plan_from_dict({"node": "scan"})
        with pytest.raises(ReproError):
            plan_from_dict({"node": "teleport", "cost": {}})
        with pytest.raises(ReproError):
            result_from_dict({"algorithm": "rta"})


class TestNewerResultFields:
    """Round-trips for fields added after the original wire format:
    ``deadline_hit`` and ``candidates_vectorized``."""

    def test_deadline_hit_round_trips(self, result):
        flagged = dataclasses.replace(result, deadline_hit=True)
        payload = result_to_dict(flagged)
        assert payload["metrics"]["deadline_hit"] is True
        rebuilt = result_from_dict(payload)
        assert rebuilt.deadline_hit is True

    def test_candidates_vectorized_round_trips(self, result):
        vectorized = dataclasses.replace(
            result, candidates_vectorized=1234
        )
        payload = result_to_dict(vectorized)
        assert payload["metrics"]["candidates_vectorized"] == 1234
        rebuilt = result_from_dict(payload)
        assert rebuilt.candidates_vectorized == 1234

    def test_old_payloads_without_newer_fields_still_load(self, result):
        """Back-compat: payloads serialized before these fields existed
        deserialize with safe defaults."""
        payload = result_to_dict(result)
        del payload["metrics"]["deadline_hit"]
        del payload["metrics"]["candidates_vectorized"]
        rebuilt = result_from_dict(payload)
        assert rebuilt.deadline_hit is False
        assert rebuilt.candidates_vectorized == 0

    def test_phase_ms_round_trips(self, result):
        timed = dataclasses.replace(
            result,
            phase_ms={"enumerate": 12.5, "kernel": 3.25, "prune": 1.0},
        )
        payload = result_to_dict(timed)
        assert payload["metrics"]["phase_ms"] == {
            "enumerate": 12.5, "kernel": 3.25, "prune": 1.0,
        }
        rebuilt = result_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.phase_ms == timed.phase_ms

    def test_old_payloads_without_phase_ms_still_load(self, result):
        payload = result_to_dict(result)
        del payload["metrics"]["phase_ms"]
        rebuilt = result_from_dict(payload)
        assert rebuilt.phase_ms == {}
        # And an explicit null is treated like absence.
        payload["metrics"]["phase_ms"] = None
        assert result_from_dict(payload).phase_ms == {}

    def test_service_metrics_snapshot_json_serializable(self, tpch):
        """The /metrics route serializes the full ServiceMetrics
        snapshot — including per-worker counts — as JSON."""
        from repro.core.instrumentation import (
            RequestMetrics,
            ServiceMetrics,
        )

        metrics = ServiceMetrics()
        metrics.record(RequestMetrics(
            fingerprint="fp", query_name="q", algorithm="rta",
            tags=(), cache_hit=False, elapsed_ms=1.0,
            timed_out=False, worker="worker-1", deadline_hit=True,
        ))
        metrics.record_coalesce_hit()
        metrics.record_shed()
        snapshot = json.loads(json.dumps(metrics.snapshot()))
        assert snapshot["by_worker"] == {"worker-1": 1}
        assert snapshot["deadline_hits"] == 1
        assert snapshot["coalesce_hits"] == 1
        assert snapshot["sheds"] == 1


class TestQueryWireFormat:
    def test_single_block_structural_round_trip(self):
        from tests.conftest import make_chain_query

        query = make_chain_query(3)
        rebuilt = query_from_dict(
            json.loads(json.dumps(query_to_dict(query)))
        )
        assert rebuilt.name == query.name
        assert rebuilt.table_refs == query.table_refs
        assert rebuilt.filters == query.filters
        assert rebuilt.joins == query.joins

    def test_tpch_shorthand(self):
        rebuilt = query_from_dict({"kind": "tpch", "number": 3})
        assert rebuilt.name == tpch_query(3).name
        assert rebuilt.blocks == tpch_query(3).blocks

    def test_multi_block_structural_round_trip(self):
        query = tpch_query(18)  # has a subquery block
        rebuilt = query_from_dict(
            json.loads(json.dumps(query_to_dict(query)))
        )
        assert type(rebuilt) is type(query)
        assert rebuilt.name == query.name
        assert rebuilt.blocks == query.blocks

    def test_malformed_query_rejected(self):
        with pytest.raises(ReproError):
            query_from_dict({"kind": "teleport"})
        with pytest.raises(ReproError):
            query_from_dict({"kind": "block", "name": "q"})
        with pytest.raises(ReproError):
            query_from_dict({"kind": "tpch", "number": 99})


class TestPreferencesWireFormat:
    def test_aligned_list_round_trip(self):
        preferences = Preferences.from_maps(
            (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
            weights={Objective.TOTAL_TIME: 2.0},
            bounds={Objective.TUPLE_LOSS: 0.0},
        )
        rebuilt = preferences_from_dict(
            json.loads(json.dumps(preferences_to_dict(preferences)))
        )
        assert rebuilt == preferences

    def test_name_keyed_mapping_form(self):
        rebuilt = preferences_from_dict({
            "objectives": ["total_time", "tuple_loss"],
            "weights": {"total_time": 2.0},
            "bounds": {"tuple_loss": 0.0},
        })
        assert rebuilt.weights == (2.0, 0.0)
        assert rebuilt.bounds == (float("inf"), 0.0)

    def test_malformed_preferences_rejected(self):
        with pytest.raises(ReproError):
            preferences_from_dict({"objectives": ["made_up_objective"]})
        with pytest.raises(ReproError):
            preferences_from_dict({})


class TestRequestWireFormat:
    def make_request(self, **overrides):
        fields = dict(
            query=tpch_query(3),
            preferences=Preferences.from_maps(
                (Objective.TOTAL_TIME, Objective.TUPLE_LOSS),
                weights={Objective.TOTAL_TIME: 1.0},
            ),
            algorithm="rta",
            alpha=2.0,
        )
        fields.update(overrides)
        return OptimizationRequest(**fields)

    def test_json_round_trip_preserves_fingerprint(self):
        request = self.make_request(
            strict=True, timeout_seconds=5.0, tags=("tenant-a",)
        )
        rebuilt = request_from_json(request_to_json(request))
        assert rebuilt.fingerprint() == request.fingerprint()
        assert rebuilt.algorithm == request.algorithm
        assert rebuilt.alpha == request.alpha
        assert rebuilt.strict is True
        assert rebuilt.timeout_seconds == 5.0
        assert rebuilt.tags == ("tenant-a",)

    def test_defaults_applied(self):
        rebuilt = request_from_dict({
            "query": {"kind": "tpch", "number": 3},
            "preferences": {
                "objectives": ["total_time", "tuple_loss"],
                "weights": {"total_time": 1.0},
            },
        })
        assert rebuilt.algorithm == "rta"
        assert rebuilt.strict is False
        assert rebuilt.timeout_seconds is None

    def test_config_carrying_request_rejected(self):
        request = self.make_request(config=FAST_CONFIG)
        with pytest.raises(ReproError, match="server's config"):
            request_to_dict(request)

    def test_invalid_request_fields_rejected(self):
        base = json.loads(request_to_json(self.make_request()))
        for patch in (
            {"algorithm": "quantum"},
            {"alpha": 0.5},
            {"query": None},
            {"preferences": None},
        ):
            with pytest.raises(ReproError):
                request_from_dict({**base, **patch})
        with pytest.raises(ReproError):
            request_from_json("{not json")
        with pytest.raises(ReproError):
            request_from_dict([1, 2, 3])
