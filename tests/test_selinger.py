"""Selinger baseline: single-objective optimality and tiny footprints."""

import pytest

from repro import Objective, Preferences
from repro.core.exa import exact_moqo
from repro.core.selinger import minimum_cost, selinger
from repro.cost.model import CostModel
from repro.cost.objectives import ALL_OBJECTIVES
from repro.cost.vector import project

from tests.conftest import TINY_CONFIG, make_chain_query, make_small_schema
from tests.helpers import enumerate_all_plans


#: Selinger strips sampling from its plan space (see its docstring), so
#: the brute-force reference must enumerate the same space.
NO_SAMPLING = TINY_CONFIG.without_sampling()


@pytest.fixture(scope="module")
def setup():
    schema = make_small_schema()
    model = CostModel(schema)
    query = make_chain_query(3)
    all_plans = enumerate_all_plans(query, model, NO_SAMPLING)
    return model, query, all_plans


@pytest.mark.parametrize(
    "objective",
    [o for o in ALL_OBJECTIVES if o is not Objective.STARTUP_TIME],
)
def test_selinger_matches_brute_force_minimum(setup, objective):
    model, query, all_plans = setup
    result = selinger(query, model, objective, TINY_CONFIG)
    brute = min(p.cost[objective.index] for p in all_plans)
    assert result.plan_cost[0] == pytest.approx(brute, rel=1e-9)


def test_selinger_startup_uses_pairwise_pruning(setup):
    model, query, all_plans = setup
    result = selinger(query, model, Objective.STARTUP_TIME, TINY_CONFIG)
    brute = min(p.cost[Objective.STARTUP_TIME.index] for p in all_plans)
    assert result.plan_cost[0] == pytest.approx(brute, rel=1e-9)
    # Pruned over (startup, total).
    assert result.preferences.objectives == (
        Objective.STARTUP_TIME,
        Objective.TOTAL_TIME,
    )


def test_selinger_agrees_with_single_objective_exa(setup):
    model, query, _ = setup
    objective = Objective.TOTAL_TIME
    prefs = Preferences(objectives=(objective,), weights=(1.0,))
    exact = exact_moqo(query, model, prefs, NO_SAMPLING)
    baseline = selinger(query, model, objective, NO_SAMPLING)
    assert baseline.plan_cost[0] == pytest.approx(
        exact.plan_cost[0], rel=1e-9
    )


def test_selinger_considers_fewer_plans_than_exa(setup):
    model, query, _ = setup
    prefs = Preferences(
        objectives=(
            Objective.TOTAL_TIME,
            Objective.BUFFER_FOOTPRINT,
            Objective.TUPLE_LOSS,
        ),
        weights=(1, 1, 1),
    )
    exact = exact_moqo(query, model, prefs, TINY_CONFIG)
    baseline = selinger(query, model, Objective.TOTAL_TIME, TINY_CONFIG)
    assert baseline.plans_considered <= exact.plans_considered
    assert baseline.pareto_last_complete <= 2


def test_minimum_cost_helper(setup):
    model, query, all_plans = setup
    value = minimum_cost(query, model, Objective.IO_LOAD, TINY_CONFIG)
    brute = min(p.cost[Objective.IO_LOAD.index] for p in all_plans)
    assert value == pytest.approx(brute, rel=1e-9)


def test_minimum_cost_zero_for_lossless(setup):
    model, query, _ = setup
    # Tuple loss minimum is 0 (no sampling).
    assert minimum_cost(query, model, Objective.TUPLE_LOSS,
                        TINY_CONFIG) == 0.0
