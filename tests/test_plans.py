"""Unit tests for operator specs, plan trees and the plan space."""

import pytest

from repro import FilterPredicate, Query, TableRef
from repro.config import DEFAULT_CONFIG, FAST_CONFIG, OptimizerConfig
from repro.cost.model import CostModel
from repro.exceptions import OptimizerError
from repro.plans.operators import (
    DEFAULT_SAMPLING_RATES,
    JoinMethod,
    JoinSpec,
    ScanMethod,
    ScanSpec,
)
from repro.plans.plan import count_joins, is_left_deep, plan_depth
from repro.plans.plan_space import PlanSpace

from tests.conftest import make_chain_query


class TestScanSpec:
    def test_sample_requires_rate(self):
        with pytest.raises(OptimizerError):
            ScanSpec(method=ScanMethod.SAMPLE, sampling_rate=1.0)

    def test_seq_rejects_rate(self):
        with pytest.raises(OptimizerError):
            ScanSpec(method=ScanMethod.SEQ, sampling_rate=0.5)

    def test_index_requires_name(self):
        with pytest.raises(OptimizerError):
            ScanSpec(method=ScanMethod.INDEX)

    def test_seq_rejects_index(self):
        with pytest.raises(OptimizerError):
            ScanSpec(method=ScanMethod.SEQ, index_name="i")

    def test_labels(self):
        assert ScanSpec(method=ScanMethod.SEQ).label == "SeqScan"
        assert "2%" in ScanSpec(
            method=ScanMethod.SAMPLE, sampling_rate=0.02
        ).label


class TestJoinSpec:
    def test_dop_bounds(self):
        with pytest.raises(OptimizerError):
            JoinSpec(JoinMethod.HASH, dop=0)
        with pytest.raises(OptimizerError):
            JoinSpec(JoinMethod.HASH, dop=5)

    def test_label_shows_dop(self):
        assert JoinSpec(JoinMethod.HASH, dop=2).label == "HashJoin[dop=2]"
        assert JoinSpec(JoinMethod.HASH, dop=1).label == "HashJoin"


class TestConfig:
    def test_default_join_configs(self):
        assert DEFAULT_CONFIG.num_join_configs == 16

    def test_rejects_duplicate_dops(self):
        with pytest.raises(OptimizerError):
            OptimizerConfig(dop_values=(1, 1))

    def test_rejects_empty_joins(self):
        with pytest.raises(OptimizerError):
            OptimizerConfig(join_methods=())

    def test_rejects_bad_timeout(self):
        with pytest.raises(OptimizerError):
            OptimizerConfig(timeout_seconds=0)

    def test_with_timeout_copies(self):
        updated = FAST_CONFIG.with_timeout(9.0)
        assert updated.timeout_seconds == 9.0
        assert updated.dop_values == FAST_CONFIG.dop_values
        assert FAST_CONFIG.timeout_seconds is None


class TestPlanTrees:
    @pytest.fixture
    def plans(self, small_schema):
        model = CostModel(small_schema)
        query = make_chain_query(3)
        users = model.scan_plan(query, "users",
                                ScanSpec(method=ScanMethod.SEQ))
        orders = model.scan_plan(query, "orders",
                                 ScanSpec(method=ScanMethod.SEQ))
        items = model.scan_plan(query, "items",
                                ScanSpec(method=ScanMethod.SEQ))
        inner = model.join_plan(
            query, JoinSpec(JoinMethod.HASH), users, orders,
            query.joins_between(frozenset({"users"}), frozenset({"orders"})),
        )
        root = model.join_plan(
            query, JoinSpec(JoinMethod.MERGE), inner, items,
            query.joins_between(
                frozenset({"users", "orders"}), frozenset({"items"})
            ),
        )
        return query, users, inner, root

    def test_aliases_propagate(self, plans):
        _, users, inner, root = plans
        assert users.aliases == frozenset({"users"})
        assert inner.aliases == frozenset({"users", "orders"})
        assert root.aliases == frozenset({"users", "orders", "items"})

    def test_walk_preorder(self, plans):
        _, _, _, root = plans
        nodes = list(root.walk())
        assert nodes[0] is root
        assert len(nodes) == 5

    def test_depth_and_counts(self, plans):
        _, users, inner, root = plans
        assert plan_depth(users) == 1
        assert plan_depth(root) == 3
        assert count_joins(root) == 2
        assert is_left_deep(root)

    def test_describe_contains_operators(self, plans):
        _, _, _, root = plans
        text = root.describe()
        assert "SortMergeJoin" in text
        assert "HashJoin" in text
        assert "SeqScan" in text

    def test_operator_labels(self, plans):
        _, _, _, root = plans
        labels = root.operator_labels()
        assert labels[0] == "SortMergeJoin"
        assert labels.count("SeqScan") == 3


class TestPlanSpace:
    def test_access_path_count(self, small_schema):
        space = PlanSpace(CostModel(small_schema), DEFAULT_CONFIG)
        query = make_chain_query(3, with_filters=False)
        paths = space.access_paths(query, "items")
        # seq + 5 sampling rates, no index (no filter on leading column).
        assert len(paths) == 1 + len(DEFAULT_SAMPLING_RATES)

    def test_index_path_needs_leading_filter(self, small_schema):
        space = PlanSpace(CostModel(small_schema), DEFAULT_CONFIG)
        query = Query(
            "q",
            (TableRef("orders", "orders"),),
            filters=(FilterPredicate("orders", "order_id", 0.01),),
        )
        paths = space.access_paths(query, "orders")
        labels = [p.spec.label for p in paths]
        assert any("IndexScan(orders_pk)" in label for label in labels)

    def test_sampling_disabled(self, small_schema):
        config = OptimizerConfig(sampling_rates=())
        space = PlanSpace(CostModel(small_schema), config)
        query = make_chain_query(2, with_filters=False)
        assert len(space.access_paths(query, "users")) == 1

    def test_generic_specs_cross_product(self, small_schema):
        space = PlanSpace(CostModel(small_schema), DEFAULT_CONFIG)
        # 3 generic methods x 4 DOPs.
        assert len(space.generic_join_specs) == 12
        assert len(space.index_nl_specs) == 4

    def test_probe_inners_found(self, small_schema):
        space = PlanSpace(CostModel(small_schema), DEFAULT_CONFIG)
        query = make_chain_query(2)
        predicates = query.joins
        probes = space.index_probe_inners(query, "orders", predicates)
        assert len(probes) == 1
        assert probes[0].spec.index_name == "orders_user_idx"
        # users.user_id also has an index (users_pk).
        probes = space.index_probe_inners(query, "users", predicates)
        assert len(probes) == 1

    def test_probe_inners_empty_without_index(self, small_schema):
        from repro import JoinPredicate

        space = PlanSpace(CostModel(small_schema), DEFAULT_CONFIG)
        predicate = JoinPredicate("u", "country", "o", "status")
        query = Query(
            "q",
            (TableRef("u", "users"), TableRef("o", "orders")),
            joins=(predicate,),
        )
        assert space.index_probe_inners(query, "o", (predicate,)) == []
